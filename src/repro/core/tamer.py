"""The DataTamer facade: the public API of the reproduction.

One object wires the whole architecture of the paper's Figure 1 together.
A typical session (the paper's Section V demo) looks like::

    from repro import DataTamer, TamerConfig
    from repro.ingest import DictSource
    from repro.text import DomainParser, broadway_gazetteer

    tamer = DataTamer(TamerConfig.default())
    tamer.register_text_parser(DomainParser(broadway_gazetteer()))

    # 1. structured sources bootstrap the global schema
    for source in ftables_sources:
        tamer.ingest_structured_source(source)

    # 2. web text goes through the domain parser into WEBINSTANCE/WEBENTITIES
    tamer.ingest_text_documents(web_documents)

    # 3. query the fused result
    engine = tamer.build_query_engine()
    matilda = engine.lookup_show("Matilda")
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..cleaning.rules import RuleEngine
from ..cleaning.transforms import TransformEngine
from ..config import TamerConfig
from ..entity.consolidation import ConsolidatedEntity, EntityConsolidator, MergePolicy
from ..entity.dedup import DedupModel, LabeledPair
from ..entity.record import records_from_dicts
from ..errors import TamerError
from ..exec.executor import ShardedExecutor
from ..expert.routing import ExpertRouter, schema_match_oracle
from ..ingest.connectors import DictSource, Source
from ..ingest.flatten import Flattener
from ..ingest.loader import BatchLoader, IngestReport
from ..obs import TelemetryHub
from ..query.engine import QueryEngine
from ..query.fusion import FusionResult, fuse_entity_views
from ..query.topk import MentionCount, top_k_discussed
from ..schema.global_schema import GlobalSchema
from ..schema.integrator import SchemaIntegrator
from ..schema.mapping import SourceMappingReport
from ..storage.document_store import Collection, CollectionStats, DocumentStore
from ..storage.relational import RelationalStore
from ..stream.engine import DeltaApplyReport, StreamingTamer
from ..text.parser import DomainParser, ParsedDocument
from .catalog import SourceCatalog

#: Collection names mirroring the paper's ``dt.instance`` / ``dt.entity``.
INSTANCE_COLLECTION = "instance"
ENTITY_COLLECTION = "entity"
CURATED_COLLECTION = "curated"


@dataclass
class StructuredIngestReport:
    """Outcome of ingesting one structured source end-to-end."""

    source_id: str
    ingest: IngestReport
    mapping: SourceMappingReport
    curated_records: int

    @property
    def mapped_attributes(self) -> Dict[str, str]:
        """source attribute → global attribute for this source."""
        return self.mapping.translation()


@dataclass
class TextIngestReport:
    """Outcome of ingesting a batch of raw text documents."""

    documents: int
    fragments: int
    entities: int
    mapping: Optional[SourceMappingReport] = None


class DataTamer:
    """End-to-end text + structured data fusion system (paper Figure 1)."""

    def __init__(
        self,
        config: Optional[TamerConfig] = None,
        expert_router: Optional[ExpertRouter] = None,
        true_schema_mapping: Optional[Dict[str, str]] = None,
        parallelism: Optional[int] = None,
        batch_size: Optional[int] = None,
    ):
        self.config = (config or TamerConfig.default()).validate()
        if parallelism is not None or batch_size is not None:
            self.config = self.config.with_parallelism(
                (
                    parallelism
                    if parallelism is not None
                    else self.config.execution.parallelism
                ),
                batch_size=batch_size,
            )
        self._hub = TelemetryHub.from_config(self.config.obs)
        self._executor = ShardedExecutor(self.config.execution, hub=self._hub)
        self._retired_executors: List[ShardedExecutor] = []
        self.store = DocumentStore("dt", self.config.storage)
        self.relational = RelationalStore()
        self.catalog = SourceCatalog()
        self.global_schema = GlobalSchema()
        self.rule_engine = RuleEngine()
        self.transform_engine = TransformEngine()
        self._loader = BatchLoader(flattener=Flattener())
        self._parser: Optional[DomainParser] = None
        self._dedup_model: Optional[DedupModel] = None
        self._expert_router = expert_router
        self._stream: Optional[StreamingTamer] = None

        expert_callable = None
        if expert_router is not None and self.config.schema.use_expert_escalation:
            expert_callable = schema_match_oracle(
                expert_router, true_mapping=true_schema_mapping
            )
        self._schema_expert = expert_callable
        self.integrator = SchemaIntegrator(
            global_schema=self.global_schema,
            config=self.config.schema,
            expert=expert_callable,
        )

        # The three standing collections of the paper's deployment.
        self.store.create_collection(INSTANCE_COLLECTION).create_text_index("text_feed")
        entity_collection = self.store.create_collection(ENTITY_COLLECTION)
        for field_name in ("entity.name", "entity.type", "source_id"):
            entity_collection.create_index(field_name)
        self.store.create_collection(CURATED_COLLECTION).create_index("_source")

    # -- component access ---------------------------------------------------

    @property
    def instance_collection(self) -> Collection:
        """The WEBINSTANCE-equivalent collection (text fragments)."""
        return self.store.collection(INSTANCE_COLLECTION)

    @property
    def entity_collection(self) -> Collection:
        """The WEBENTITIES-equivalent collection (typed entity mentions)."""
        return self.store.collection(ENTITY_COLLECTION)

    @property
    def curated_collection(self) -> Collection:
        """Curated records expressed in global-schema attribute names."""
        return self.store.collection(CURATED_COLLECTION)

    @property
    def parser(self) -> Optional[DomainParser]:
        """The registered domain-specific text parser (may be ``None``)."""
        return self._parser

    @property
    def dedup_model(self) -> Optional[DedupModel]:
        """The trained deduplication model (``None`` until trained)."""
        return self._dedup_model

    def register_text_parser(self, parser: DomainParser) -> None:
        """Register the user-defined domain parser (Figure 1's pluggable box)."""
        self._parser = parser

    # -- execution knobs -----------------------------------------------------

    @property
    def executor(self) -> ShardedExecutor:
        """The sharded executor threaded through consolidation and query."""
        return self._executor

    @property
    def hub(self) -> TelemetryHub:
        """The telemetry hub every layer of this tamer records into."""
        return self._hub

    @property
    def parallelism(self) -> int:
        """Configured worker count (1 = sequential)."""
        return self._executor.parallelism

    @property
    def batch_size(self) -> int:
        """Configured pair-scoring batch size."""
        return self._executor.batch_size

    def set_parallelism(
        self, workers: int, batch_size: Optional[int] = None
    ) -> None:
        """Reconfigure the execution engine (e.g. to A/B parallel vs serial).

        A live stream's operators are *offered* the new executor through
        the :meth:`~repro.stream.operators.DeltaOperator.sync_executor`
        hook; operators whose fan-out state lives in warm pool workers (the
        entity curator) decline and keep the executor they were born with —
        that executor is retired rather than closed, and :meth:`close`
        shuts it down with everything else.
        """
        self.config = self.config.with_parallelism(workers, batch_size=batch_size)
        old = self._executor
        self._executor = ShardedExecutor(self.config.execution, hub=self._hub)
        if self._stream is not None and not self._stream.closed:
            for operator in self._stream.operators:
                operator.sync_executor(self._executor)
            self._retired_executors.append(old)
        else:
            # the old executor may own persistent pool workers — stop them
            old.close()

    def close(self) -> None:
        """Release held resources: the stream tail, pool workers, telemetry."""
        self.stop_stream()
        for executor in self._retired_executors:
            executor.close()
        self._retired_executors.clear()
        self._executor.close()
        self._hub.close()

    # -- structured ingestion ------------------------------------------------

    def ingest_structured_source(
        self, source: Source, allow_new_attributes: bool = True
    ) -> StructuredIngestReport:
        """Ingest one structured source: clean, integrate schema, curate.

        Records are cleaned by the rule engine, the source's local schema is
        matched against (and may extend) the global schema, and the records —
        rewritten into global attribute names — are stored in the curated
        collection with provenance.
        """
        cleaned_records = [
            self.rule_engine.clean_record(record) for record in source.records()
        ]
        mapping = self.integrator.integrate_source(
            source.source_id, cleaned_records, allow_new_attributes=allow_new_attributes
        )
        translation = mapping.translation()
        curated = 0
        for record in cleaned_records:
            translated = {
                translation[name]: value
                for name, value in record.items()
                if name in translation and value not in (None, "")
            }
            if not translated:
                continue
            translated = self.transform_engine.transform_record(translated)
            translated["_source"] = source.source_id
            self.curated_collection.insert(translated)
            curated += 1
        ingest_report = IngestReport(
            source_id=source.source_id,
            collection=CURATED_COLLECTION,
            records_read=len(cleaned_records),
            records_loaded=curated,
            attributes_seen=list(translation),
        )
        self.catalog.register(
            source.source_id,
            kind=source.metadata.kind,
            description=source.metadata.description,
            collection=CURATED_COLLECTION,
            records_loaded=curated,
            attributes=list(translation.values()),
        )
        return StructuredIngestReport(
            source_id=source.source_id,
            ingest=ingest_report,
            mapping=mapping,
            curated_records=curated,
        )

    def ingest_structured_records(
        self,
        source_id: str,
        records: Sequence[Dict[str, Any]],
        description: str = "",
    ) -> StructuredIngestReport:
        """Convenience wrapper: ingest in-memory records as a structured source."""
        source = DictSource(source_id, list(records), description=description)
        return self.ingest_structured_source(source)

    # -- text ingestion --------------------------------------------------------

    def ingest_text_documents(
        self,
        documents: Iterable[Tuple[str, str]],
        source_id: str = "webtext",
        integrate_schema: bool = True,
    ) -> TextIngestReport:
        """Ingest raw text documents through the domain parser.

        ``documents`` is an iterable of ``(doc_id, text)``.  Fragments land
        in the instance collection, flattened entity mentions in the entity
        collection, and — when ``integrate_schema`` is set — a per-entity
        summary record (name/type keyed) is also pushed through schema
        integration into the curated collection so text-derived entities can
        be fused with structured data.
        """
        if self._parser is None:
            raise TamerError("no text parser registered; call register_text_parser")
        flattener = Flattener()
        n_documents = 0
        n_fragments = 0
        n_entities = 0
        text_records: List[Dict[str, Any]] = []
        for doc_id, text in documents:
            parsed: ParsedDocument = self._parser.parse(text, source_id=doc_id)
            n_documents += 1
            for fragment_doc in parsed.fragment_documents():
                fragment_doc["_source"] = source_id
                self.instance_collection.insert(fragment_doc)
                n_fragments += 1
            for entity_doc in parsed.entity_documents():
                flat = flattener.flatten(entity_doc)
                flat["_source"] = source_id
                self.entity_collection.insert(flat)
                n_entities += 1
            text_records.extend(
                self._text_entity_records(parsed)
            )
        mapping = None
        if integrate_schema and text_records:
            mapping = self.integrator.integrate_source(source_id, text_records)
            translation = mapping.translation()
            for record in text_records:
                translated = {
                    translation[name]: value
                    for name, value in record.items()
                    if name in translation and value not in (None, "")
                }
                if not translated:
                    continue
                translated["_source"] = source_id
                self.curated_collection.insert(translated)
        self.catalog.register(
            source_id,
            kind="unstructured",
            description="domain-parsed web text",
            collection=INSTANCE_COLLECTION,
            records_loaded=n_fragments,
            attributes=["show_name", "text_feed"],
        )
        return TextIngestReport(
            documents=n_documents,
            fragments=n_fragments,
            entities=n_entities,
            mapping=mapping,
        )

    @staticmethod
    def _text_entity_records(parsed: ParsedDocument) -> List[Dict[str, Any]]:
        """Build sparse text-derived records for shows/movies found in text.

        The demo scenario only fuses show-type entities, so only Movie
        mentions produce curated records; each carries the show name and the
        fragment it was found in — exactly the two attributes Table V shows.
        """
        records: List[Dict[str, Any]] = []
        fragments_by_entity: Dict[str, str] = {}
        for fragment in parsed.fragments:
            fragments_by_entity.setdefault(fragment.entity_canonical, fragment.text)
        for mention in parsed.mentions:
            if mention.entity_type != "Movie":
                continue
            records.append(
                {
                    "show_name": mention.canonical,
                    "text_feed": fragments_by_entity.get(mention.canonical, ""),
                }
            )
        return records

    # -- attribute resolution ----------------------------------------------------

    def resolve_attribute(self, name: str) -> str:
        """Resolve a requested attribute name to the global schema's name.

        Checks, in order: an exact global attribute, a recorded alias, the
        canonical snake_case form, and finally the most name-similar global
        attribute above 0.7 similarity.  Falls back to the canonical form of
        the request when nothing matches (the caller may be querying an
        attribute that does not exist yet).
        """
        from ..schema.matchers import canonical_attribute_name, name_similarity

        if name in self.global_schema:
            return name
        aliased = self.global_schema.lookup_alias(name)
        if aliased is not None:
            return aliased
        canonical = canonical_attribute_name(name)
        if canonical in self.global_schema:
            return canonical
        best_name, best_score = canonical, 0.0
        for attribute_name in self.global_schema.attribute_names():
            score = name_similarity(name, attribute_name)
            if score > best_score:
                best_name, best_score = attribute_name, score
        if best_score >= 0.7:
            return best_name
        return canonical

    # -- consolidation ---------------------------------------------------------

    def train_dedup_model(
        self, labeled_pairs: Sequence[LabeledPair], seed: Optional[int] = None
    ) -> DedupModel:
        """Train (and keep) the deduplication classifier."""
        model = DedupModel(
            config=self.config.entity,
            seed=self.config.seed if seed is None else seed,
        )
        model.fit(labeled_pairs)
        self._dedup_model = model
        return model

    def set_dedup_model(self, model: DedupModel) -> None:
        """Install an externally trained dedup model."""
        self._dedup_model = model

    def consolidate_curated(
        self,
        key_attribute: str = "show_name",
        merge_policy: MergePolicy = MergePolicy.MAJORITY,
    ) -> List[ConsolidatedEntity]:
        """Consolidate the curated collection into composite entities.

        Requires a trained dedup model.  Records lacking the key attribute
        pass through as singletons.
        """
        if self._dedup_model is None:
            raise TamerError("no dedup model; call train_dedup_model first")
        resolved_key = self.resolve_attribute(key_attribute)
        rows = [
            {k: v for k, v in doc.items() if k not in ("_id",)}
            for doc in self.curated_collection.scan()
        ]
        records = records_from_dicts(rows, source_id="curated")
        consolidator = EntityConsolidator(
            model=self._dedup_model,
            config=self.config.entity,
            key_attribute=resolved_key,
            merge_policy=merge_policy,
            executor=self._executor,
        )
        return consolidator.consolidate(records)

    # -- streaming curation ----------------------------------------------------

    @property
    def stream(self) -> Optional[StreamingTamer]:
        """The active streaming curation engine (``None`` until started)."""
        return self._stream

    def start_stream(
        self,
        key_attribute: str = "show_name",
        merge_policy: MergePolicy = MergePolicy.MAJORITY,
        schema_integration: Optional[bool] = None,
    ) -> StreamingTamer:
        """Start incremental curation of the curated collection.

        Bootstraps a :class:`~repro.stream.engine.StreamingTamer` from the
        collection's current contents and tails every subsequent write
        through the change-data-capture hook.  Requires a trained dedup
        model.  Restarting replaces (and detaches) any previous stream.

        ``schema_integration`` overrides ``StreamConfig.schema_integration``
        for this stream: when on, the stream's operator chain also keeps a
        bottom-up global schema of the streamed sources fresh (the schema
        view lives on ``stream.integrator`` — it curates the *streamed*
        collection and never mutates the ingest-time
        :attr:`DataTamer.global_schema`).

        Note the streaming view keys records by their stable document
        ``_id`` (so a record's identity survives writes), where the batch
        :meth:`consolidate_curated` assigns positional ids per run.
        """
        if self._dedup_model is None:
            raise TamerError("no dedup model; call train_dedup_model first")
        if self._stream is not None:
            self._stream.close()
        stream_config = self.config.stream
        if schema_integration is not None:
            from dataclasses import replace

            stream_config = replace(
                stream_config, schema_integration=schema_integration
            )
        self._stream = StreamingTamer(
            self.curated_collection,
            self._dedup_model,
            entity_config=self.config.entity,
            stream_config=stream_config,
            executor=self._executor,
            key_attribute=self.resolve_attribute(key_attribute),
            merge_policy=merge_policy,
            schema_config=self.config.schema,
            schema_expert=self._schema_expert,
        )
        return self._stream

    def stop_stream(self) -> None:
        """Detach the streaming engine from the curated collection."""
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def _require_stream(self) -> StreamingTamer:
        if self._stream is None or self._stream.closed:
            raise TamerError("no active stream; call start_stream first")
        return self._stream

    def apply_delta(self) -> DeltaApplyReport:
        """Drain pending curated-collection changes into the streaming state."""
        return self._require_stream().apply_delta()

    def refresh(self) -> List[ConsolidatedEntity]:
        """Apply pending deltas and return the streaming curated entities."""
        return self._require_stream().refresh()

    # -- query / fusion --------------------------------------------------------

    def build_query_engine(
        self,
        key_attribute: str = "show_name",
        merge_policy: MergePolicy = MergePolicy.MAJORITY,
    ) -> QueryEngine:
        """Consolidate the curated collection and return a query engine over it."""
        entities = self.consolidate_curated(
            key_attribute=key_attribute, merge_policy=merge_policy
        )
        return QueryEngine(entities, executor=self._executor)

    def create_server(
        self,
        key_attribute: str = "show_name",
        merge_policy: MergePolicy = MergePolicy.MAJORITY,
        serve_config=None,
    ):
        """Build a :class:`~repro.serve.server.QueryServer` over this system.

        With an active stream, the server shares the stream's cached query
        engine: every ``stream.query_engine()`` (or the driver's
        ``tamer.refresh()`` + ``query_engine()``) publish atomically swaps
        the snapshot concurrent requests read, and the server's result
        cache invalidates and re-primes in the background.  Without a
        stream, the curated collection is batch-consolidated once and
        served as a static view.

        The server is returned unstarted — run it with
        :func:`repro.serve.server.serve_in_background` (or ``await
        server.start()`` inside an event loop).  Request evaluation hands
        off to this tamer's executor-managed worker threads, so closing
        the tamer also releases the serving workers.
        """
        from ..serve.server import QueryServer
        from ..sql import SqlMetadata

        name_attribute = self.resolve_attribute(key_attribute)
        stream = self._stream if self._stream and not self._stream.closed else None
        if stream is not None:
            engine = stream.query_engine()
        else:
            entities = self.consolidate_curated(
                key_attribute=key_attribute, merge_policy=merge_policy
            )
            engine = QueryEngine(entities)
        prefer = [
            entry.source_id for entry in self.catalog.entries(kind="structured")
        ]
        return QueryServer(
            engine,
            config=serve_config or self.config.serve,
            stream=stream,
            curated_documents=self.curated_collection.scan,
            instance_collection=self.instance_collection,
            name_attribute=name_attribute,
            prefer_sources=prefer,
            executor=self._executor,
            hub=self._hub,
            # re-captured on the writer thread at every publish so the sql
            # op's catalog/schema/instance tables track this tamer's state
            sql_metadata=lambda: SqlMetadata.from_tamer(self),
        )

    def top_discussed_shows(self, k: int = 10) -> List[MentionCount]:
        """The Table IV query: most discussed shows in the text collection."""
        return top_k_discussed(self.instance_collection, k=k, entity_types=("Movie",))

    def fuse_show(
        self, show_name: str, prefer_structured: bool = True
    ) -> FusionResult:
        """Assemble the fused record for one show across curated records.

        This is the Table VI operation: every curated record (text-derived or
        structured-derived) for the show contributes its attributes; on
        conflicts structured sources win by default (they are cleaner).
        """
        from ..text.normalize import TextNormalizer

        normalizer = TextNormalizer()
        name_attribute = self.resolve_attribute("show_name")
        target = normalizer.normalize(show_name)
        views: List[Tuple[str, Dict[str, Any]]] = []
        for doc in self.curated_collection.scan():
            name = normalizer.normalize(str(doc.get(name_attribute, "")))
            if name != target:
                continue
            source = str(doc.get("_source", "unknown"))
            values = {
                k: v for k, v in doc.items() if k not in ("_id", "_source")
            }
            views.append((source, values))
        prefer: List[str] = []
        if prefer_structured:
            prefer = [
                entry.source_id
                for entry in self.catalog.entries(kind="structured")
            ]
        return fuse_entity_views(show_name, views, prefer_sources=prefer)

    # -- statistics --------------------------------------------------------------

    def collection_stats(self) -> Dict[str, CollectionStats]:
        """Statistics for every collection (Tables I and II)."""
        return self.store.stats()

    def summary(self) -> Dict[str, Any]:
        """A one-call overview of system state (sources, schema, collections)."""
        return {
            "sources": [entry.as_dict() for entry in self.catalog.entries()],
            "global_schema": self.global_schema.summary(),
            "collections": {
                name: stats.as_dict()
                for name, stats in self.collection_stats().items()
            },
        }
