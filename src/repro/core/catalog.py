"""The source catalog: what has been ingested, when, and with what outcome."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import UnknownSource
from ..ingest.connectors import SOURCE_KINDS


@dataclass
class CatalogEntry:
    """Provenance record for one ingested source."""

    source_id: str
    kind: str
    description: str = ""
    collection: str = ""
    records_loaded: int = 0
    attributes: List[str] = field(default_factory=list)
    sequence: int = 0

    def as_dict(self) -> dict:
        """Dictionary form for reports."""
        return {
            "source_id": self.source_id,
            "kind": self.kind,
            "description": self.description,
            "collection": self.collection,
            "records_loaded": self.records_loaded,
            "attributes": list(self.attributes),
            "sequence": self.sequence,
        }


class SourceCatalog:
    """Registry of every source the system has ingested."""

    def __init__(self) -> None:
        self._entries: Dict[str, CatalogEntry] = {}
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, source_id: str) -> bool:
        return source_id in self._entries

    def register(
        self,
        source_id: str,
        kind: str,
        description: str = "",
        collection: str = "",
        records_loaded: int = 0,
        attributes: Optional[List[str]] = None,
    ) -> CatalogEntry:
        """Register (or update) a source and return its catalog entry."""
        if kind not in SOURCE_KINDS:
            raise ValueError(f"unknown source kind: {kind!r}")
        existing = self._entries.get(source_id)
        if existing is not None:
            existing.records_loaded += records_loaded
            if attributes:
                for name in attributes:
                    if name not in existing.attributes:
                        existing.attributes.append(name)
            return existing
        entry = CatalogEntry(
            source_id=source_id,
            kind=kind,
            description=description,
            collection=collection,
            records_loaded=records_loaded,
            attributes=list(attributes or []),
            sequence=next(self._counter),
        )
        self._entries[source_id] = entry
        return entry

    def entry(self, source_id: str) -> CatalogEntry:
        """Return the catalog entry for ``source_id``."""
        entry = self._entries.get(source_id)
        if entry is None:
            raise UnknownSource(source_id)
        return entry

    def entries(self, kind: Optional[str] = None) -> List[CatalogEntry]:
        """All entries (optionally of one kind) in ingestion order."""
        ordered = sorted(self._entries.values(), key=lambda e: e.sequence)
        if kind is None:
            return ordered
        return [e for e in ordered if e.kind == kind]

    def source_ids(self) -> List[str]:
        """All source ids in ingestion order."""
        return [e.source_id for e in self.entries()]

    def total_records(self) -> int:
        """Total records loaded across all sources."""
        return sum(e.records_loaded for e in self._entries.values())
