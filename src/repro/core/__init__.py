"""The core of the reproduction: the Data Tamer facade and curation pipeline.

:class:`DataTamer` is the public entry point a downstream user works with.
It owns the storage substrates, the source catalog, the schema integrator,
the cleaning/transformation engines and (optionally) an expert router and a
trained dedup model, and exposes the end-to-end operations of the paper's
Figure 1 architecture: ingest structured sources, ingest text through the
domain parser, integrate schemas, consolidate entities and query/fuse.
"""

from .catalog import CatalogEntry, SourceCatalog
from .pipeline import (
    CurationPipeline,
    ParallelStage,
    PipelineStage,
    StageResult,
    StreamingStage,
)
from .report import CurationReport
from .tamer import DataTamer, TextIngestReport, StructuredIngestReport

__all__ = [
    "CatalogEntry",
    "SourceCatalog",
    "CurationReport",
    "CurationPipeline",
    "ParallelStage",
    "PipelineStage",
    "StageResult",
    "StreamingStage",
    "DataTamer",
    "TextIngestReport",
    "StructuredIngestReport",
]
