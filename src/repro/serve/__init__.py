"""The concurrent query-serving tier.

The paper's demo is interactive — Tables IV-VI are queries — and this
package is what lets many clients ask them at once while the streaming
operator chain keeps curating underneath:

* :class:`~repro.serve.server.QueryServer` — a long-lived asyncio server
  speaking newline-delimited JSON, evaluating every request against one
  immutable :class:`~repro.serve.views.ServeView` captured per request
  (snapshot-isolated reads that never block the writer);
* :class:`~repro.serve.cache.ResultCache` — results keyed by (normalized
  request, snapshot token), with background refresh of the hottest entries
  after each publish;
* :class:`~repro.serve.client.QueryClient` — a small synchronous client
  for tests, benchmarks, and driver scripts;
* :mod:`repro.serve.protocol` — the wire format and request
  canonicalisation.

Start one through the facade::

    tamer.start_stream()
    server, handle = tamer.create_server(), None
    from repro.serve import serve_in_background
    with serve_in_background(server) as handle:
        with QueryClient("127.0.0.1", handle.port) as client:
            client.lookup_show("Matilda")
"""

from .cache import ResultCache
from .client import OpEnvelope, QueryClient
from .ops import DEFAULT_REGISTRY, EvalContext, evaluate_request
from .protocol import (
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOL_VERSIONS,
    QueryRequest,
    parse_request,
    request_cache_key,
)
from .registry import OpRegistry, OpSpec
from .server import QueryServer, ServerHandle, serve_in_background
from .session import ClientSession, SessionRegistry
from .views import FusionIndex, ServeView

__all__ = [
    "DEFAULT_REGISTRY",
    "PROTOCOL_VERSION",
    "SUPPORTED_PROTOCOL_VERSIONS",
    "ClientSession",
    "EvalContext",
    "FusionIndex",
    "OpEnvelope",
    "OpRegistry",
    "OpSpec",
    "QueryClient",
    "QueryRequest",
    "QueryServer",
    "ResultCache",
    "ServeView",
    "ServerHandle",
    "SessionRegistry",
    "evaluate_request",
    "parse_request",
    "request_cache_key",
    "serve_in_background",
]
