"""Per-client session state for the serving tier.

Every connection gets a :class:`ClientSession` that counts its traffic and
enforces the tier's session guarantee: **monotonic reads**.  Snapshot
publishes only ever move forward, so the snapshot version stamped on a
client's responses must never decrease over the life of its connection — a
regression would mean the server handed the client a view older than one it
already saw (exactly the torn-state class of bug the snapshot swap exists
to prevent).  :meth:`ClientSession.observe` asserts this on every response.

The :class:`SessionRegistry` tracks live sessions for the ``status``
operation and aggregates counters across closed ones.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import ServeError


@dataclass
class ClientSession:
    """One connected client's serving state."""

    session_id: str
    peer: str = ""
    requests: int = 0
    cache_hits: int = 0
    errors: int = 0
    #: Highest snapshot version stamped on any response sent to this client.
    last_version: int = -1
    last_watermark: Optional[int] = None

    def observe(
        self, version: int, watermark: Optional[int], cached: bool
    ) -> None:
        """Record one served response and enforce monotonic reads."""
        if version < self.last_version:
            raise ServeError(
                f"session {self.session_id}: snapshot version regressed "
                f"{self.last_version} -> {version} (non-monotonic read)"
            )
        self.requests += 1
        if cached:
            self.cache_hits += 1
        self.last_version = version
        self.last_watermark = watermark

    def observe_error(self) -> None:
        """Record one error response."""
        self.errors += 1

    def as_dict(self) -> Dict[str, object]:
        """The session's row in the ``status`` payload."""
        return {
            "session_id": self.session_id,
            "peer": self.peer,
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "errors": self.errors,
            "last_version": self.last_version,
            "last_watermark": self.last_watermark,
        }


@dataclass
class SessionRegistry:
    """Live sessions plus lifetime totals (thread-safe)."""

    _sessions: Dict[str, ClientSession] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)
    _opened: int = 0
    _total_requests: int = 0
    _total_errors: int = 0

    def open(self, peer: str = "") -> ClientSession:
        """Register a new connection."""
        with self._lock:
            self._opened += 1
            session = ClientSession(session_id=f"c{self._opened}", peer=peer)
            self._sessions[session.session_id] = session
            return session

    def close(self, session: ClientSession) -> None:
        """Retire a connection, folding its counters into the totals."""
        with self._lock:
            self._sessions.pop(session.session_id, None)
            self._total_requests += session.requests
            self._total_errors += session.errors

    @property
    def active(self) -> int:
        """How many sessions are currently connected."""
        with self._lock:
            return len(self._sessions)

    def stats(self) -> Dict[str, object]:
        """The registry's section of the ``status`` payload."""
        with self._lock:
            live = [s.as_dict() for s in self._sessions.values()]
            return {
                "active": len(live),
                "opened": self._opened,
                "total_requests": self._total_requests
                + sum(s["requests"] for s in live),
                "total_errors": self._total_errors
                + sum(s["errors"] for s in live),
                "sessions": live,
            }
