"""The immutable unit the server publishes: a :class:`ServeView`.

The entity snapshot alone cannot answer every operation: ``fuse`` needs the
*per-source* views of a show's curated records (consolidation already
merged them away) and ``top_k`` needs the text-collection mention counts.
Bundling all three into one frozen :class:`ServeView` — swapped by a single
pointer assignment exactly like the snapshot itself — keeps every operation
coherent with every other: a response stamped with snapshot version ``v``
was computed entirely from state captured at ``v``, whichever operation it
ran.

The fusion corpus is captured on the thread that drove the refresh (the
single writer), so it is consistent with the entity snapshot published in
the same callback; capture cost is one scan of the curated collection per
publish.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..query.fusion import FusionResult, fuse_entity_views
from ..query.snapshot import EntitySnapshot
from ..query.topk import MentionCount, MentionCounter
from ..sql import SqlContext, SqlMetadata
from ..text.normalize import TextNormalizer

_normalizer = TextNormalizer()

#: One per-source view of one show: ``(source_id, attribute values)``.
SourceView = Tuple[str, Dict[str, Any]]


@dataclass(frozen=True)
class FusionIndex:
    """Curated per-source views keyed by normalised show name.

    The serving-tier equivalent of
    :meth:`~repro.core.tamer.DataTamer.fuse_show`'s collection scan,
    captured once per publish instead of once per request — and therefore
    immune to concurrent writers mid-scan.
    """

    views: Dict[str, Tuple[SourceView, ...]]
    prefer_sources: Tuple[str, ...] = ()

    @classmethod
    def capture(
        cls,
        documents,
        name_attribute: str,
        prefer_sources: Sequence[str] = (),
    ) -> "FusionIndex":
        """Build the index from an iterable of curated documents."""
        views: Dict[str, List[SourceView]] = {}
        for doc in documents:
            name = _normalizer.normalize(str(doc.get(name_attribute, "")))
            if not name:
                continue
            source = str(doc.get("_source", "unknown"))
            values = {
                k: v for k, v in doc.items() if k not in ("_id", "_source")
            }
            views.setdefault(name, []).append((source, values))
        return cls(
            views={name: tuple(entries) for name, entries in views.items()},
            prefer_sources=tuple(prefer_sources),
        )

    def fuse(self, show_name: str) -> FusionResult:
        """The fused record for one show (empty when the show is unknown)."""
        entries = self.views.get(_normalizer.normalize(show_name), ())
        return fuse_entity_views(
            show_name, list(entries), prefer_sources=list(self.prefer_sources)
        )


@dataclass(frozen=True)
class ServeView:
    """Everything one request evaluates against, swapped atomically."""

    snapshot: EntitySnapshot
    fusion: FusionIndex
    mentions: MentionCounter
    #: Bumped whenever the mention counts are re-captured (text ingest);
    #: folded into :attr:`token` so cached ``top_k`` results computed
    #: against older counts go stale even though the entity snapshot —
    #: and therefore its version/watermark — did not move.
    mentions_epoch: int = 0
    #: Catalog/schema/instance metadata for the ``sql`` operation, captured
    #: on the writer thread at publish time (like the fusion corpus) so SQL
    #: answers are consistent with the snapshot they are stamped with.
    #: ``None`` serves the entity-derived virtual tables only.
    sql_metadata: Optional[SqlMetadata] = None

    @property
    def token(self) -> Tuple:
        """The cache/invalidation token of this view.

        ``(version, mentions_epoch, watermark)`` — the first two are
        monotonic ints, which the cache's refresh guard relies on.
        """
        base = self.snapshot.cache_token
        return (base[0], self.mentions_epoch) + tuple(base[1:])

    @property
    def version(self) -> int:
        """Snapshot version (increments on every publish)."""
        return self.snapshot.version

    @property
    def watermark(self) -> Optional[int]:
        """Entity-operator changelog watermark of the snapshot."""
        return self.snapshot.watermark

    @property
    def schema_watermark(self) -> Optional[int]:
        """Schema-operator watermark of the snapshot."""
        return self.snapshot.schema_watermark

    def top_k(
        self, k: int, entity_types: Optional[Sequence[str]]
    ) -> List[MentionCount]:
        """The Table IV ranking over the captured mention counts."""
        return self.mentions.top(k, entity_types=entity_types)

    def sql_context(self) -> SqlContext:
        """The lazily-built SQL context pinned to this view.

        Memoised on first use so the per-view virtual tables and pushdown
        indexes are built once and shared by every SQL request against this
        publish.  A concurrent first call may build twice — both results
        are equivalent (pure functions of the frozen view), so last-write-
        wins is safe.
        """
        context = getattr(self, "_sql_context", None)
        if context is None:
            context = SqlContext(self.snapshot, metadata=self.sql_metadata)
            object.__setattr__(self, "_sql_context", context)
        return context
