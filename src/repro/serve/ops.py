"""The built-in operations of the serving tier, as one registry table.

Each operation's three facets — parameter validation, cache-key
canonicalisation, snapshot-pinned evaluation — used to live in separate
``if op ==`` chains across :mod:`repro.serve.protocol` and
:mod:`repro.serve.server`.  Here they are fused into one
:class:`~repro.serve.registry.OpSpec` per operation, registered in
:data:`DEFAULT_REGISTRY`.  Adding an operation is now a single
``OpSpec(...)`` entry; validation, caching and dispatch all follow from it.

:func:`evaluate_request` is the registry-driven successor of the old
server-module evaluator and remains the sequential oracle of the
concurrency suite: pure, thread-safe, a function of ``(view, request)``
only.

Cache-key canonicalisation mirrors evaluation semantics exactly: a search
matches on the *set* of its phrase tokens, so the key is the sorted unique
token list; equality lookups and show lookups compare normalised *and*
answer with payloads that never echo the query, so their keys carry the
normalised value.  ``fuse`` echoes the requested spelling back
(``entity_key``), so its key stays raw.  ``sql`` keys on the canonical
rendering of the parsed statement, so two spellings of the same query
(case, whitespace, ``<>`` vs ``!=``) share one cache entry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..errors import ProtocolError, SqlError
from ..query.engine import QueryEngine
from ..sql import parse_sql, run_sql
from ..text.normalize import TextNormalizer
from ..text.tokenizer import tokenize
from .registry import OpRegistry, OpSpec

_normalizer = TextNormalizer()


@dataclass(frozen=True)
class EvalContext:
    """Server-side knobs an evaluator may consult (never view state)."""

    name_attribute: str = "show_name"
    hub: Optional[Any] = None


# -- shared validators -----------------------------------------------------


def _require(params: Dict[str, Any], name: str, types, op: str):
    value = params.get(name)
    if not isinstance(value, types):
        if isinstance(types, tuple):
            wanted = "/".join(t.__name__ for t in types)
        else:
            wanted = types.__name__
        raise ProtocolError(f"{op!r} requires {name!r} as {wanted}")
    return value


def _optional_str_list(params: Dict[str, Any], name: str, op: str):
    value = params.get(name)
    if value is None:
        return None
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise ProtocolError(f"{op!r} {name!r} must be a list of strings")
    return value


def _validate_find_equal(params: Dict[str, Any]) -> None:
    _require(params, "attribute", str, "find_equal")
    if params.get("value") is None:
        raise ProtocolError("'find_equal' requires 'value'")


def _validate_search(params: Dict[str, Any]) -> None:
    _require(params, "phrase", str, "search")
    _optional_str_list(params, "attributes", "search")


def _validate_lookup_show(params: Dict[str, Any]) -> None:
    _require(params, "show_name", str, "lookup_show")
    attribute = params.get("name_attribute")
    if attribute is not None and not isinstance(attribute, str):
        raise ProtocolError("'lookup_show' 'name_attribute' must be a string")


def _validate_top_k(params: Dict[str, Any]) -> None:
    k = params.get("k", 10)
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        raise ProtocolError("'top_k' 'k' must be a positive integer")
    _optional_str_list(params, "entity_types", "top_k")


def _validate_fuse(params: Dict[str, Any]) -> None:
    _require(params, "show_name", str, "fuse")


def _validate_metrics(params: Dict[str, Any]) -> None:
    fmt = params.get("format", "json")
    if fmt not in ("json", "prometheus"):
        raise ProtocolError("'metrics' 'format' must be 'json' or 'prometheus'")
    traces = params.get("traces", False)
    if not isinstance(traces, bool):
        raise ProtocolError("'metrics' 'traces' must be a boolean")


def _validate_sql(params: Dict[str, Any]) -> None:
    query = _require(params, "query", str, "sql")
    try:
        parse_sql(query)
    except SqlError as exc:
        raise ProtocolError(f"'sql' query is invalid: {exc}") from exc


# -- cache-key canonicalisers ----------------------------------------------


def _key_find_equal(request, name_attribute: str):
    params = request.params
    return (params["attribute"], _normalizer.normalize(str(params["value"])))


def _key_search(request, name_attribute: str):
    params = request.params
    attributes = params.get("attributes")
    return (
        sorted(set(tokenize(params["phrase"]))),
        sorted(set(attributes)) if attributes is not None else None,
    )


def _key_lookup_show(request, name_attribute: str):
    params = request.params
    return (
        params.get("name_attribute", name_attribute),
        _normalizer.normalize(params["show_name"]),
    )


def _key_top_k(request, name_attribute: str):
    # the evaluation default is the Table IV Movie filter — fold it in
    # so explicit and defaulted requests share an entry
    params = request.params
    entity_types = params.get("entity_types", ["Movie"])
    return (params.get("k", 10), sorted(set(entity_types)))


def _key_fuse(request, name_attribute: str):
    # the fused payload echoes the requested spelling as entity_key, so
    # the key must be spelling-sensitive — normalising here would serve
    # one request's entity_key to a differently-spelled equivalent
    return request.params["show_name"]


def _key_sql(request, name_attribute: str):
    # validation already proved the query parses; the canonical rendering
    # strips case/whitespace/operator-spelling differences
    return parse_sql(request.params["query"]).render()


# -- evaluators ------------------------------------------------------------


def entity_payload(entity) -> Dict[str, Any]:
    """Serialise one consolidated entity for the wire."""
    return {
        "entity_id": entity.entity_id,
        "member_record_ids": [str(rid) for rid in entity.member_record_ids],
        "source_ids": list(entity.source_ids),
        "attributes": dict(entity.attributes),
        "provenance": {
            name: [str(rid) for rid in rids]
            for name, rids in entity.provenance.items()
        },
        "size": entity.size,
    }


def _entities_result(result) -> Dict[str, Any]:
    return {
        "count": len(result),
        "entities": [entity_payload(entity) for entity in result],
    }


def _eval_find_equal(view, request, ctx: EvalContext) -> Dict[str, Any]:
    engine = QueryEngine.from_snapshot(view.snapshot)
    params = request.params
    return _entities_result(
        engine.find_equal(params["attribute"], params["value"])
    )


def _eval_search(view, request, ctx: EvalContext) -> Dict[str, Any]:
    engine = QueryEngine.from_snapshot(view.snapshot)
    params = request.params
    return _entities_result(
        engine.search(params["phrase"], attributes=params.get("attributes"))
    )


def _eval_lookup_show(view, request, ctx: EvalContext) -> Dict[str, Any]:
    engine = QueryEngine.from_snapshot(view.snapshot)
    params = request.params
    return _entities_result(
        engine.lookup_show(
            params["show_name"],
            name_attribute=params.get("name_attribute", ctx.name_attribute),
        )
    )


def _eval_top_k(view, request, ctx: EvalContext) -> Dict[str, Any]:
    params = request.params
    ranking = view.top_k(
        params.get("k", 10),
        entity_types=params.get("entity_types", ("Movie",)),
    )
    return {
        "ranking": [
            {
                "entity": row.entity,
                "entity_type": row.entity_type,
                "mentions": row.mentions,
            }
            for row in ranking
        ]
    }


def _eval_fuse(view, request, ctx: EvalContext) -> Dict[str, Any]:
    fused = view.fusion.fuse(request.params["show_name"])
    return {
        "entity_key": fused.entity_key,
        "attributes": dict(fused.attributes),
        "provenance": dict(fused.provenance),
        "contributing_sources": list(fused.contributing_sources),
        "attribute_count": fused.attribute_count(),
    }


def _eval_sql(view, request, ctx: EvalContext) -> Dict[str, Any]:
    result = run_sql(view.sql_context(), request.params["query"], hub=ctx.hub)
    return result.as_payload()


# -- the registry ----------------------------------------------------------

#: The built-in operation table.  ``ping``/``status``/``metrics`` are live
#: (no ``evaluate`` — the server answers them from loop state); everything
#: else is a pure function of the pinned view and caches by canonical key.
DEFAULT_REGISTRY = OpRegistry(
    (
        OpSpec(name="ping", summary="round-trip liveness check"),
        OpSpec(name="status", summary="server status and watermarks"),
        OpSpec(
            name="metrics",
            summary="telemetry snapshot of the server's hub",
            validate=_validate_metrics,
        ),
        OpSpec(
            name="find_equal",
            summary="equality lookup over the published snapshot",
            validate=_validate_find_equal,
            cache_key=_key_find_equal,
            evaluate=_eval_find_equal,
        ),
        OpSpec(
            name="search",
            summary="keyword search over the published snapshot",
            validate=_validate_search,
            cache_key=_key_search,
            evaluate=_eval_search,
        ),
        OpSpec(
            name="lookup_show",
            summary="the Tables V/VI show lookup",
            validate=_validate_lookup_show,
            cache_key=_key_lookup_show,
            evaluate=_eval_lookup_show,
        ),
        OpSpec(
            name="top_k",
            summary="the Table IV mention ranking",
            validate=_validate_top_k,
            cache_key=_key_top_k,
            evaluate=_eval_top_k,
        ),
        OpSpec(
            name="fuse",
            summary="the Table VI fused record for one show",
            validate=_validate_fuse,
            cache_key=_key_fuse,
            evaluate=_eval_fuse,
        ),
        OpSpec(
            name="sql",
            since=2,
            summary="SQL SELECT over the virtual curated-store catalog",
            validate=_validate_sql,
            cache_key=_key_sql,
            evaluate=_eval_sql,
        ),
    )
)


def request_cache_key(
    request, name_attribute: str = "show_name", registry: Optional[OpRegistry] = None
) -> Optional[str]:
    """The canonical cache key for a request (``None`` if not cacheable)."""
    reg = registry if registry is not None else DEFAULT_REGISTRY
    spec = reg.find(request.op)
    if spec is None or spec.cache_key is None:
        return None
    key = spec.cache_key(request, name_attribute)
    return json.dumps(
        [request.op, key], sort_keys=True, separators=(",", ":")
    )


def evaluate_request(
    view,
    request,
    name_attribute: str = "show_name",
    hub: Optional[Any] = None,
    registry: Optional[OpRegistry] = None,
) -> Dict[str, Any]:
    """Evaluate one request against one pinned view (pure, thread-safe).

    This is the whole query semantics of the serving tier in one place —
    the concurrency suite's sequential oracle calls it over recorded views
    to check live responses bit-for-bit.  Live operations
    (``ping``/``status``/``metrics``) are not evaluable here: they answer
    from server loop state, not from a view.
    """
    reg = registry if registry is not None else DEFAULT_REGISTRY
    spec = reg.get(request.op)
    if spec.evaluate is None:
        raise ProtocolError(f"operation not evaluable: {request.op!r}")
    ctx = EvalContext(name_attribute=name_attribute, hub=hub)
    return spec.evaluate(view, request, ctx)
