"""A small synchronous client for the query-serving protocol.

Blocking sockets on purpose: client threads in the tests and the
closed-loop benchmark model independent callers, and a benchmark client
must not share an event loop with the server it is measuring.  One
:class:`QueryClient` is one connection (one server-side session); it is not
thread-safe — give each client thread its own instance.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ServeError


class QueryClient:
    """One connection speaking newline-delimited JSON to a query server."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._address = (host, port)
        self._timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._next_id = 0

    def connect(self) -> "QueryClient":
        """Open the connection (idempotent)."""
        if self._sock is None:
            self._sock = socket.create_connection(
                self._address, timeout=self._timeout
            )
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._file = self._sock.makefile("rwb")
        return self

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "QueryClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- raw protocol ------------------------------------------------------

    def request(
        self, op: str, params: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """Send one request and return the raw response object."""
        if self._file is None:
            raise ServeError("client is not connected; call connect() first")
        self._next_id += 1
        body = {"id": self._next_id, "op": op, "params": params or {}}
        self._file.write(
            json.dumps(body, separators=(",", ":")).encode("utf-8") + b"\n"
        )
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServeError("server closed the connection")
        response = json.loads(line)
        if response.get("id") not in (None, self._next_id):
            raise ServeError(
                f"response id {response.get('id')!r} does not match "
                f"request id {self._next_id}"
            )
        return response

    def result(
        self, op: str, params: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """Send one request; return its result, raising on error replies."""
        response = self.request(op, params)
        if not response.get("ok"):
            error = response.get("error", {})
            raise ServeError(
                f"{error.get('type', 'ServeError')}: "
                f"{error.get('message', 'request failed')}"
            )
        return response["result"]

    # -- convenience operations --------------------------------------------

    def ping(self) -> Dict[str, Any]:
        """Round-trip liveness check."""
        return self.result("ping")

    def status(self) -> Dict[str, Any]:
        """Server status: watermarks, cache stats, live sessions."""
        return self.result("status")

    def metrics(
        self, format: Optional[str] = None, traces: bool = False
    ) -> Dict[str, Any]:
        """The server's telemetry snapshot (all layers of its hub).

        ``format="prometheus"`` returns ``{"format": ..., "text": ...}``
        with the text exposition; ``traces=True`` includes the recent
        finished-span records alongside the aggregate summary.
        """
        params: Dict[str, Any] = {}
        if format is not None:
            params["format"] = format
        if traces:
            params["traces"] = True
        return self.result("metrics", params)

    def find_equal(self, attribute: str, value: Any) -> Dict[str, Any]:
        """Equality lookup over the published snapshot."""
        return self.result(
            "find_equal", {"attribute": attribute, "value": value}
        )

    def search(
        self, phrase: str, attributes: Optional[Sequence[str]] = None
    ) -> Dict[str, Any]:
        """Keyword search over the published snapshot."""
        params: Dict[str, Any] = {"phrase": phrase}
        if attributes is not None:
            params["attributes"] = list(attributes)
        return self.result("search", params)

    def lookup_show(
        self, show_name: str, name_attribute: Optional[str] = None
    ) -> Dict[str, Any]:
        """The Tables V/VI lookup."""
        params: Dict[str, Any] = {"show_name": show_name}
        if name_attribute is not None:
            params["name_attribute"] = name_attribute
        return self.result("lookup_show", params)

    def top_k(
        self, k: int = 10, entity_types: Optional[Sequence[str]] = None
    ) -> List[Dict[str, Any]]:
        """The Table IV ranking."""
        params: Dict[str, Any] = {"k": k}
        if entity_types is not None:
            params["entity_types"] = list(entity_types)
        return self.result("top_k", params)["ranking"]

    def fuse(self, show_name: str) -> Dict[str, Any]:
        """The Table VI fused record for one show."""
        return self.result("fuse", {"show_name": show_name})
