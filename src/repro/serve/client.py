"""A small synchronous client for the query-serving protocol.

Blocking sockets on purpose: client threads in the tests and the
closed-loop benchmark model independent callers, and a benchmark client
must not share an event loop with the server it is measuring.  One
:class:`QueryClient` is one connection (one server-side session); it is not
thread-safe — give each client thread its own instance.

Resilience
----------

Transport failures (a restarted server, a reset connection, a torn read)
never leak raw ``ConnectionError``/``BrokenPipeError`` out of
:meth:`request` — they surface as :class:`~repro.errors.ServeError` with
the original exception chained.  With ``retries > 0`` the client instead
reconnects and re-sends under exponential backoff with jitter; every
protocol operation is a read against an immutable snapshot, so re-sending
is always safe.  Load-shed replies (``Overloaded``) honour the server's
``retry_after`` hint.  Note that a reconnect opens a *new* server-side
session, so the monotonic-read guarantee restarts with it.
"""

from __future__ import annotations

import json
import random
import socket
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ServeError
from .ops import DEFAULT_REGISTRY
from .registry import OpRegistry


@dataclass(frozen=True)
class OpEnvelope:
    """One operation's reply, with its snapshot stamps made explicit.

    The uniform result of :meth:`QueryClient.call` and every generated
    ``client.ops.<name>()`` method: the payload plus the coherence metadata
    (which snapshot answered, whether the cache or degraded-read path
    served it) that the bare convenience methods throw away.
    """

    op: str
    result: Any
    version: Optional[int] = None
    watermark: Optional[int] = None
    schema_watermark: Optional[int] = None
    cached: bool = False
    degraded: bool = False

    @classmethod
    def from_response(cls, op: str, response: Dict[str, Any]) -> "OpEnvelope":
        return cls(
            op=op,
            result=response.get("result"),
            version=response.get("version"),
            watermark=response.get("watermark"),
            schema_watermark=response.get("schema_watermark"),
            cached=bool(response.get("cached", False)),
            degraded=bool(response.get("degraded", False)),
        )


class _OpNamespace:
    """One generated method per registered operation.

    ``client.ops.search(phrase="walking dead")`` resolves ``search`` in the
    client's registry and issues the call — new operations registered
    server- and client-side need no hand-written convenience method.
    Every generated method returns an :class:`OpEnvelope`.
    """

    def __init__(self, client: "QueryClient", registry: OpRegistry):
        self._client = client
        self._registry = registry

    def __getattr__(self, name: str):
        spec = self._registry.find(name)
        if spec is None:
            raise AttributeError(f"no registered operation {name!r}")

        def method(**params: Any) -> OpEnvelope:
            return self._client.call(name, params)

        method.__name__ = spec.name
        method.__qualname__ = f"QueryClient.ops.{spec.name}"
        method.__doc__ = spec.summary or None
        return method

    def __dir__(self):
        return sorted(set(object.__dir__(self)) | set(self._registry.names()))


class QueryClient:
    """One connection speaking newline-delimited JSON to a query server."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        retries: int = 0,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        jitter_seed: Optional[int] = None,
        registry: Optional[OpRegistry] = None,
    ):
        """``retries`` is the number of *re-sends* after the first attempt.

        Backoff before retry ``n`` is ``backoff_base * 2**(n-1)`` capped at
        ``backoff_max``, scaled by a jitter factor in ``[0.5, 1.0)`` — a
        herd of clients shed at once must not re-arrive at once.  Pass
        ``jitter_seed`` to make the schedule reproducible in tests.
        """
        if retries < 0:
            raise ServeError("retries must be >= 0")
        self._address = (host, port)
        self._timeout = timeout
        self._retries = retries
        self._backoff_base = backoff_base
        self._backoff_max = backoff_max
        self._rng = random.Random(jitter_seed)
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._next_id = 0
        self._ever_connected = False
        self._reconnects = 0
        self._retries_used = 0
        self._registry = registry if registry is not None else DEFAULT_REGISTRY
        #: Generated per-op methods: ``client.ops.search(phrase=...)``.
        self.ops = _OpNamespace(self, self._registry)

    def connect(self) -> "QueryClient":
        """Open the connection (idempotent)."""
        if self._sock is None:
            sock = socket.create_connection(
                self._address, timeout=self._timeout
            )
            if sock.getsockname() == sock.getpeername():
                # TCP simultaneous open: reconnecting to a freed ephemeral
                # port on localhost can land on *ourselves* — an established
                # socket with no server behind it that echoes our writes.
                # Treat it as the refusal it morally is.
                sock.close()
                raise ConnectionRefusedError(
                    f"self-connection to {self._address}"
                )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
            self._file = sock.makefile("rwb")
            self._ever_connected = True
        return self

    def close(self) -> None:
        """Close the connection (idempotent, never raises on a dead peer).

        Closing the buffered file flushes it, and a flush against a
        server that already went away raises ``BrokenPipeError`` — a
        close must absorb that, not propagate it.
        """
        file, sock = self._file, self._sock
        self._file = None
        self._sock = None
        if file is not None:
            try:
                file.close()
            except OSError:
                pass
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    @property
    def reconnects(self) -> int:
        """Connections re-opened after a transport failure."""
        return self._reconnects

    @property
    def retries_used(self) -> int:
        """Re-sends performed (transport failures + load sheds)."""
        return self._retries_used

    def __enter__(self) -> "QueryClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- raw protocol ------------------------------------------------------

    def _backoff_delay(self, retry: int) -> float:
        delay = min(self._backoff_max, self._backoff_base * 2 ** (retry - 1))
        return delay * (0.5 + 0.5 * self._rng.random())

    def _exchange(self, payload: bytes) -> Dict[str, Any]:
        self._file.write(payload)
        self._file.flush()
        line = self._file.readline()
        if not line:
            # a clean EOF mid-conversation is a transport failure too (the
            # server restarted or drained us); classify with the rest
            raise ConnectionResetError("server closed the connection")
        return json.loads(line)

    def request(
        self,
        op: str,
        params: Optional[Dict[str, Any]] = None,
        version: int = 1,
    ) -> Dict[str, Any]:
        """Send one request and return the raw response object.

        Retries transport failures and load-shed replies up to the
        configured budget; out of budget, raises :class:`ServeError` with
        the underlying cause chained.

        ``version`` is the protocol version to negotiate.  Version 1 is
        the default and omits the field entirely, so the wire bytes of a
        v1 request are identical to what the pre-registry client sent.
        """
        if not self._ever_connected:
            raise ServeError("client is not connected; call connect() first")
        self._next_id += 1
        body: Dict[str, Any] = {
            "id": self._next_id,
            "op": op,
            "params": params or {},
        }
        if version != 1:
            body["version"] = version
        payload = (
            json.dumps(body, separators=(",", ":")).encode("utf-8") + b"\n"
        )
        attempts = self._retries + 1
        for attempt in range(1, attempts + 1):
            try:
                if self._sock is None:
                    self.connect()
                    self._reconnects += 1
                response = self._exchange(payload)
            except (OSError, EOFError) as exc:
                self.close()
                if attempt >= attempts:
                    raise ServeError(
                        f"request failed after {attempt} attempt(s): {exc}"
                    ) from exc
                self._retries_used += 1
                time.sleep(self._backoff_delay(attempt))
                continue
            error = (
                response.get("error") if not response.get("ok") else None
            )
            if (
                error is not None
                and error.get("type") == "Overloaded"
                and attempt < attempts
            ):
                # shed: the server is protecting its latency; come back
                # after its hint (or our backoff, whichever is longer)
                self._retries_used += 1
                time.sleep(
                    max(
                        float(error.get("retry_after", 0.0)),
                        self._backoff_delay(attempt),
                    )
                )
                continue
            if response.get("id") not in (None, self._next_id):
                raise ServeError(
                    f"response id {response.get('id')!r} does not match "
                    f"request id {self._next_id}"
                )
            return response
        raise ServeError(f"request failed after {attempts} attempt(s)")

    def result(
        self,
        op: str,
        params: Optional[Dict[str, Any]] = None,
        version: int = 1,
    ) -> Dict[str, Any]:
        """Send one request; return its result, raising on error replies."""
        response = self.request(op, params, version=version)
        if not response.get("ok"):
            error = response.get("error", {})
            raise ServeError(
                f"{error.get('type', 'ServeError')}: "
                f"{error.get('message', 'request failed')}"
            )
        return response["result"]

    def call(
        self,
        op: str,
        params: Optional[Dict[str, Any]] = None,
        version: Optional[int] = None,
    ) -> OpEnvelope:
        """Issue one registered operation; return its :class:`OpEnvelope`.

        The registry supplies two things the raw :meth:`request` cannot:
        the negotiated version defaults to the op's ``since`` (so calling
        ``sql`` negotiates v2 while v1 ops keep their v1 wire bytes), and
        the op's ``validate`` hook runs locally first, so malformed
        parameters fail fast without a round trip.
        """
        params = params or {}
        spec = self._registry.find(op)
        if spec is not None:
            if version is None:
                version = spec.since
            if spec.validate is not None:
                spec.validate(params)
        elif version is None:
            version = 1
        response = self.request(op, params, version=version)
        if not response.get("ok"):
            error = response.get("error", {})
            raise ServeError(
                f"{error.get('type', 'ServeError')}: "
                f"{error.get('message', 'request failed')}"
            )
        return OpEnvelope.from_response(op, response)

    # -- convenience operations (aliases over the generated ops) -----------

    def ping(self) -> Dict[str, Any]:
        """Round-trip liveness check."""
        return self.call("ping").result

    def status(self) -> Dict[str, Any]:
        """Server status: watermarks, cache stats, live sessions."""
        return self.call("status").result

    def metrics(
        self, format: Optional[str] = None, traces: bool = False
    ) -> Dict[str, Any]:
        """The server's telemetry snapshot (all layers of its hub).

        ``format="prometheus"`` returns ``{"format": ..., "text": ...}``
        with the text exposition; ``traces=True`` includes the recent
        finished-span records alongside the aggregate summary.
        """
        params: Dict[str, Any] = {}
        if format is not None:
            params["format"] = format
        if traces:
            params["traces"] = True
        return self.call("metrics", params).result

    def find_equal(self, attribute: str, value: Any) -> Dict[str, Any]:
        """Equality lookup over the published snapshot."""
        return self.call(
            "find_equal", {"attribute": attribute, "value": value}
        ).result

    def search(
        self, phrase: str, attributes: Optional[Sequence[str]] = None
    ) -> Dict[str, Any]:
        """Keyword search over the published snapshot."""
        params: Dict[str, Any] = {"phrase": phrase}
        if attributes is not None:
            params["attributes"] = list(attributes)
        return self.call("search", params).result

    def lookup_show(
        self, show_name: str, name_attribute: Optional[str] = None
    ) -> Dict[str, Any]:
        """The Tables V/VI lookup."""
        params: Dict[str, Any] = {"show_name": show_name}
        if name_attribute is not None:
            params["name_attribute"] = name_attribute
        return self.call("lookup_show", params).result

    def top_k(
        self, k: int = 10, entity_types: Optional[Sequence[str]] = None
    ) -> List[Dict[str, Any]]:
        """The Table IV ranking."""
        params: Dict[str, Any] = {"k": k}
        if entity_types is not None:
            params["entity_types"] = list(entity_types)
        return self.call("top_k", params).result["ranking"]

    def fuse(self, show_name: str) -> Dict[str, Any]:
        """The Table VI fused record for one show."""
        return self.call("fuse", {"show_name": show_name}).result

    def sql(self, query: str) -> Dict[str, Any]:
        """Run one SQL ``SELECT`` on the server (negotiates protocol v2).

        Returns the payload dict: ``columns``, ``rows``, ``stats``,
        ``explain`` (for ``EXPLAIN`` queries) and ``canonical`` (the
        canonical rendering the server keyed its cache under).
        """
        return self.call("sql", {"query": query}).result
