"""The JSON wire protocol of the query-serving tier.

One request per line, one response per line (newline-delimited JSON, UTF-8).
A request names an operation and its parameters::

    {"id": 7, "op": "search", "params": {"phrase": "walking dead"}}

and the response echoes the id, stamps the snapshot the answer was computed
against, and carries the operation's payload::

    {"id": 7, "ok": true, "cached": false, "version": 3, "watermark": 41,
     "schema_watermark": null, "result": {"count": 1, "entities": [...]}}

Errors (unknown op, bad params, a :class:`~repro.errors.QueryError` raised
during evaluation) come back as ``{"ok": false, "error": {...}}`` on the
same line slot — the connection stays usable.

Versioning
----------

The current protocol is **version 2**; a request opts in by carrying
``"version": 2``.  A request without a ``version`` field negotiates
version 1 and is answered bit-identically to the pre-registry protocol —
same validation, same cache keys, same response bytes.  Version-2-only
operations (``sql``) are rejected for version-1 requests at parse time.

Operation semantics — validation, cache-key canonicalisation, evaluation —
are not defined here: they live in the op registry
(:data:`repro.serve.ops.DEFAULT_REGISTRY`).  This module is only the wire
format: framing, version negotiation, response encoding.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Union

from ..errors import ProtocolError
from .ops import (
    DEFAULT_REGISTRY,
    entity_payload,
    request_cache_key as _registry_cache_key,
)
from .registry import OpRegistry, OpSpec  # noqa: F401  (compat re-export)

#: The newest protocol version this build speaks.
PROTOCOL_VERSION = 2

#: Every version this build still answers.  Version 1 is the pre-registry
#: protocol; its requests and responses are bit-identical to the old build.
SUPPORTED_PROTOCOL_VERSIONS = (1, 2)

#: Operations a request may name (any version; derived from the registry).
OPERATIONS = frozenset(DEFAULT_REGISTRY.names())

#: Operations whose responses are cacheable (deterministic functions of the
#: published view).  ``ping``/``status``/``metrics`` report live state.
CACHEABLE_OPERATIONS = DEFAULT_REGISTRY.cacheable_names()


@dataclass(frozen=True)
class QueryRequest:
    """One parsed, validated request."""

    op: str
    params: Dict[str, Any]
    request_id: Optional[Union[int, str]] = None
    #: The protocol version the request negotiated (absent field → 1).
    version: int = 1


def parse_request(
    line: Union[str, bytes], registry: Optional[OpRegistry] = None
) -> QueryRequest:
    """Parse one wire line into a :class:`QueryRequest`.

    Raises :class:`~repro.errors.ProtocolError` on malformed JSON, a
    non-object body, an unknown operation, an unsupported version, an
    operation newer than the negotiated version, or invalid params (each
    op's ``validate`` hook from the registry).
    """
    reg = registry if registry is not None else DEFAULT_REGISTRY
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"request is not valid UTF-8: {exc}") from exc
    try:
        body = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(body, dict):
        raise ProtocolError("request must be a JSON object")
    version = body.get("version", 1)
    if not isinstance(version, int) or isinstance(version, bool):
        raise ProtocolError("'version' must be an integer or absent")
    if version not in SUPPORTED_PROTOCOL_VERSIONS:
        raise ProtocolError(
            f"unsupported protocol version: {version} "
            f"(supported: {list(SUPPORTED_PROTOCOL_VERSIONS)})"
        )
    op = body.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request must carry a string 'op'")
    spec = reg.check_version(op, version)
    params = body.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("'params' must be a JSON object")
    request_id = body.get("id")
    if request_id is not None and not isinstance(request_id, (int, str)):
        raise ProtocolError("'id' must be a string, an integer, or absent")
    if spec.validate is not None:
        spec.validate(params)
    return QueryRequest(
        op=op, params=params, request_id=request_id, version=version
    )


def request_cache_key(
    request: QueryRequest,
    name_attribute: str = "show_name",
    registry: Optional["OpRegistry"] = None,
) -> Optional[str]:
    """The canonical cache key for a request (``None`` if not cacheable).

    Delegates to the registered op's ``cache_key`` hook — see
    :mod:`repro.serve.ops` for the per-operation canonicalisation rules.
    ``name_attribute`` is the server's default lookup attribute, folded in
    so requests that spell it out and requests that rely on the default
    share an entry.  ``registry`` overrides the op table (defaults to the
    built-in registry).
    """
    return _registry_cache_key(request, name_attribute, registry=registry)


def encode_response(
    request_id: Optional[Union[int, str]],
    result: Dict[str, Any],
    *,
    cached: bool = False,
    version: Optional[int] = None,
    watermark: Optional[int] = None,
    schema_watermark: Optional[int] = None,
    degraded: bool = False,
) -> str:
    """Encode one success response line (no trailing newline).

    ``degraded`` marks a response served from a stale cache entry while the
    published snapshot was older than the server's degraded-read threshold;
    the version/watermark stamps then describe the *entry's* snapshot, not
    the current one.  The key is only present when true, so the normal-path
    wire format is unchanged.
    """
    body = {
        "id": request_id,
        "ok": True,
        "cached": cached,
        "version": version,
        "watermark": watermark,
        "schema_watermark": schema_watermark,
        "result": result,
    }
    if degraded:
        body["degraded"] = True
    return json.dumps(body, sort_keys=True, separators=(",", ":"), default=str)


def encode_error(
    request_id: Optional[Union[int, str]],
    error: BaseException,
    retry_after: Optional[float] = None,
) -> str:
    """Encode one error response line (no trailing newline).

    ``retry_after`` (seconds) is attached to load-shed replies so clients
    with retry budget know how long to back off before re-sending.
    """
    payload: Dict[str, Any] = {
        "type": type(error).__name__,
        "message": str(error),
    }
    if retry_after is not None:
        payload["retry_after"] = retry_after
    body = {"id": request_id, "ok": False, "error": payload}
    return json.dumps(body, sort_keys=True, separators=(",", ":"), default=str)


__all__ = [
    "PROTOCOL_VERSION",
    "SUPPORTED_PROTOCOL_VERSIONS",
    "OPERATIONS",
    "CACHEABLE_OPERATIONS",
    "QueryRequest",
    "parse_request",
    "request_cache_key",
    "entity_payload",
    "encode_response",
    "encode_error",
    "OpRegistry",
    "OpSpec",
    "DEFAULT_REGISTRY",
]
