"""The JSON wire protocol of the query-serving tier.

One request per line, one response per line (newline-delimited JSON, UTF-8).
A request names an operation and its parameters::

    {"id": 7, "op": "search", "params": {"phrase": "walking dead"}}

and the response echoes the id, stamps the snapshot the answer was computed
against, and carries the operation's payload::

    {"id": 7, "ok": true, "cached": false, "version": 3, "watermark": 41,
     "schema_watermark": null, "result": {"count": 1, "entities": [...]}}

Errors (unknown op, bad params, a :class:`~repro.errors.QueryError` raised
during evaluation) come back as ``{"ok": false, "error": {...}}`` on the
same line slot — the connection stays usable.

:func:`request_cache_key` canonicalises a request into the string the
result cache keys it under: two requests that are guaranteed to produce the
same answer against the same snapshot (a search with re-ordered tokens, a
lookup differing only in case) share one cache entry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Union

from ..errors import ProtocolError
from ..text.normalize import TextNormalizer
from ..text.tokenizer import tokenize

PROTOCOL_VERSION = 1

#: Operations a request may name.  ``ping``, ``status`` and ``metrics``
#: are served on the event loop; the rest evaluate against the pinned
#: serve view in a worker thread.
OPERATIONS = frozenset(
    {
        "ping",
        "status",
        "metrics",
        "find_equal",
        "search",
        "lookup_show",
        "top_k",
        "fuse",
    }
)

#: Operations whose responses are cacheable (deterministic functions of the
#: published view).  ``ping``/``status``/``metrics`` report live state.
CACHEABLE_OPERATIONS = frozenset(
    {"find_equal", "search", "lookup_show", "top_k", "fuse"}
)

_normalizer = TextNormalizer()


@dataclass(frozen=True)
class QueryRequest:
    """One parsed, validated request."""

    op: str
    params: Dict[str, Any]
    request_id: Optional[Union[int, str]] = None


def parse_request(line: Union[str, bytes]) -> QueryRequest:
    """Parse one wire line into a :class:`QueryRequest`.

    Raises :class:`~repro.errors.ProtocolError` on malformed JSON, a
    non-object body, an unknown operation, or non-object params.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"request is not valid UTF-8: {exc}") from exc
    try:
        body = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(body, dict):
        raise ProtocolError("request must be a JSON object")
    op = body.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request must carry a string 'op'")
    if op not in OPERATIONS:
        raise ProtocolError(f"unknown operation: {op!r}")
    params = body.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("'params' must be a JSON object")
    request_id = body.get("id")
    if request_id is not None and not isinstance(request_id, (int, str)):
        raise ProtocolError("'id' must be a string, an integer, or absent")
    request = QueryRequest(op=op, params=params, request_id=request_id)
    _validate_params(request)
    return request


def _require(params: Dict[str, Any], name: str, types, op: str):
    value = params.get(name)
    if not isinstance(value, types):
        if isinstance(types, tuple):
            wanted = "/".join(t.__name__ for t in types)
        else:
            wanted = types.__name__
        raise ProtocolError(f"{op!r} requires {name!r} as {wanted}")
    return value


def _optional_str_list(params: Dict[str, Any], name: str, op: str):
    value = params.get(name)
    if value is None:
        return None
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise ProtocolError(f"{op!r} {name!r} must be a list of strings")
    return value


def _validate_params(request: QueryRequest) -> None:
    op, params = request.op, request.params
    if op == "find_equal":
        _require(params, "attribute", str, op)
        if params.get("value") is None:
            raise ProtocolError("'find_equal' requires 'value'")
    elif op == "search":
        _require(params, "phrase", str, op)
        _optional_str_list(params, "attributes", op)
    elif op == "lookup_show":
        _require(params, "show_name", str, op)
        attribute = params.get("name_attribute")
        if attribute is not None and not isinstance(attribute, str):
            raise ProtocolError("'lookup_show' 'name_attribute' must be a string")
    elif op == "top_k":
        k = params.get("k", 10)
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise ProtocolError("'top_k' 'k' must be a positive integer")
        _optional_str_list(params, "entity_types", op)
    elif op == "fuse":
        _require(params, "show_name", str, op)
    elif op == "metrics":
        fmt = params.get("format", "json")
        if fmt not in ("json", "prometheus"):
            raise ProtocolError(
                "'metrics' 'format' must be 'json' or 'prometheus'"
            )
        traces = params.get("traces", False)
        if not isinstance(traces, bool):
            raise ProtocolError("'metrics' 'traces' must be a boolean")


def request_cache_key(
    request: QueryRequest, name_attribute: str = "show_name"
) -> Optional[str]:
    """The canonical cache key for a request (``None`` if not cacheable).

    Normalisation mirrors evaluation semantics exactly: a search matches on
    the *set* of its phrase tokens, so the key is the sorted unique token
    list; equality lookups and show lookups compare normalised *and* answer
    with payloads that never echo the query, so their keys carry the
    normalised value.  ``fuse`` echoes the requested spelling back
    (``entity_key``), so its key stays raw.  ``name_attribute`` is the
    server's default lookup attribute, folded in so requests that spell it
    out and requests that rely on the default share an entry.
    """
    if request.op not in CACHEABLE_OPERATIONS:
        return None
    op, params = request.op, request.params
    if op == "find_equal":
        key: Any = (
            params["attribute"],
            _normalizer.normalize(str(params["value"])),
        )
    elif op == "search":
        attributes = params.get("attributes")
        key = (
            sorted(set(tokenize(params["phrase"]))),
            sorted(set(attributes)) if attributes is not None else None,
        )
    elif op == "lookup_show":
        key = (
            params.get("name_attribute", name_attribute),
            _normalizer.normalize(params["show_name"]),
        )
    elif op == "top_k":
        # the evaluation default is the Table IV Movie filter — fold it in
        # so explicit and defaulted requests share an entry
        entity_types = params.get("entity_types", ["Movie"])
        key = (params.get("k", 10), sorted(set(entity_types)))
    else:  # fuse
        # the fused payload echoes the requested spelling as entity_key, so
        # the key must be spelling-sensitive — normalising here would serve
        # one request's entity_key to a differently-spelled equivalent
        key = params["show_name"]
    return json.dumps([op, key], sort_keys=True, separators=(",", ":"))


def entity_payload(entity) -> Dict[str, Any]:
    """Serialise one consolidated entity for the wire."""
    return {
        "entity_id": entity.entity_id,
        "member_record_ids": [str(rid) for rid in entity.member_record_ids],
        "source_ids": list(entity.source_ids),
        "attributes": dict(entity.attributes),
        "provenance": {
            name: [str(rid) for rid in rids]
            for name, rids in entity.provenance.items()
        },
        "size": entity.size,
    }


def encode_response(
    request_id: Optional[Union[int, str]],
    result: Dict[str, Any],
    *,
    cached: bool = False,
    version: Optional[int] = None,
    watermark: Optional[int] = None,
    schema_watermark: Optional[int] = None,
    degraded: bool = False,
) -> str:
    """Encode one success response line (no trailing newline).

    ``degraded`` marks a response served from a stale cache entry while the
    published snapshot was older than the server's degraded-read threshold;
    the version/watermark stamps then describe the *entry's* snapshot, not
    the current one.  The key is only present when true, so the normal-path
    wire format is unchanged.
    """
    body = {
        "id": request_id,
        "ok": True,
        "cached": cached,
        "version": version,
        "watermark": watermark,
        "schema_watermark": schema_watermark,
        "result": result,
    }
    if degraded:
        body["degraded"] = True
    return json.dumps(body, sort_keys=True, separators=(",", ":"), default=str)


def encode_error(
    request_id: Optional[Union[int, str]],
    error: BaseException,
    retry_after: Optional[float] = None,
) -> str:
    """Encode one error response line (no trailing newline).

    ``retry_after`` (seconds) is attached to load-shed replies so clients
    with retry budget know how long to back off before re-sending.
    """
    payload: Dict[str, Any] = {
        "type": type(error).__name__,
        "message": str(error),
    }
    if retry_after is not None:
        payload["retry_after"] = retry_after
    body = {"id": request_id, "ok": False, "error": payload}
    return json.dumps(body, sort_keys=True, separators=(",", ":"), default=str)
