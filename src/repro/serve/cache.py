"""The watermark-keyed result cache of the serving tier.

Responses are deterministic functions of ``(normalized request, published
snapshot)``, so the cache keys each entry by the request's canonical string
(:func:`~repro.serve.protocol.request_cache_key`) and remembers the
snapshot token the stored payload was computed at.  A lookup only hits when
the stored token matches the current one — an entry computed against an
older snapshot is *stale* and is never served.

Staleness is resolved two ways: lazily (the next request under the new
token misses, recomputes, and overwrites the entry) and eagerly —
:meth:`ResultCache.invalidate` hands the server the hottest stale entries
so it can re-evaluate them in the background right after a publish, turning
the first post-update request for a popular query back into a hit.

Thread-safe: lookups come from server worker threads while background
refreshes and invalidation run elsewhere.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..obs import TelemetryHub, default_hub
from .protocol import QueryRequest


@dataclass
class CacheEntry:
    """One cached response and the snapshot token it was computed at."""

    key: str
    token: Tuple
    request: QueryRequest
    result: Dict[str, Any]
    watermark: Optional[int]
    schema_watermark: Optional[int]


class ResultCache:
    """LRU cache of evaluated responses, keyed by (request, snapshot)."""

    def __init__(
        self, max_entries: int = 1024, hub: Optional[TelemetryHub] = None
    ):
        self._max_entries = max_entries
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._stale_misses = 0
        self._refreshes = 0
        registry = (hub if hub is not None else default_hub()).registry
        self._m_hits = registry.counter(
            "serve_cache_hits_total", "Result-cache hits"
        )
        self._m_misses = registry.counter(
            "serve_cache_misses_total", "Result-cache misses (incl. stale)"
        )
        self._m_stale = registry.counter(
            "serve_cache_stale_misses_total",
            "Misses where an entry existed under an older snapshot token",
        )
        self._m_refreshes = registry.counter(
            "serve_cache_refreshes_total", "Background stale-entry refreshes"
        )

    @property
    def enabled(self) -> bool:
        """Whether the cache stores anything at all (``max_entries`` > 0)."""
        return self._max_entries > 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Optional[str], token: Tuple) -> Optional[CacheEntry]:
        """The fresh entry for ``key`` at ``token``, or ``None``.

        A stale entry (stored under an older token) counts as a miss and
        stays put — the caller's recompute will overwrite it, or a
        background refresh will.
        """
        if key is None or not self.enabled:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                self._m_misses.inc()
                return None
            if entry.token != token:
                self._misses += 1
                self._stale_misses += 1
                self._m_misses.inc()
                self._m_stale.inc()
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            self._m_hits.inc()
            return entry

    def peek(self, key: Optional[str]) -> Optional[CacheEntry]:
        """The entry under ``key`` regardless of snapshot token.

        The degraded-read accessor: when the published snapshot has gone
        stale past the server's threshold, a stale entry (stamped with the
        watermark it was computed at) is better than a slow or shed
        response.  No hit/miss counters move and the LRU order is not
        touched — degraded traffic must not distort cache heat.
        """
        if key is None or not self.enabled:
            return None
        with self._lock:
            return self._entries.get(key)

    def put(
        self,
        key: Optional[str],
        token: Tuple,
        request: QueryRequest,
        result: Dict[str, Any],
        watermark: Optional[int],
        schema_watermark: Optional[int],
        *,
        refresh: bool = False,
    ) -> None:
        """Store (or overwrite) the entry for ``key`` at ``token``.

        A background ``refresh`` never *displaces* colder entries: it only
        overwrites the stale entry it was scheduled for, so a burst of
        refreshes cannot evict queries that were hotter than the refreshed
        ones.  If the entry was evicted in the meantime, the refresh result
        is dropped.
        """
        if key is None or not self.enabled:
            return
        with self._lock:
            existing = self._entries.get(key)
            if refresh and existing is None:
                return
            if (
                refresh
                and existing is not None
                and existing.token[:2] > token[:2]
            ):
                # a slow refresh must not clobber a fresher entry: tokens
                # are (version, mentions_epoch, watermark) and the leading
                # pair is monotonic ints, so lexicographic compare is safe
                # (watermark may be None and never orders)
                return
            entry = CacheEntry(
                key=key,
                token=token,
                request=request,
                result=result,
                watermark=watermark,
                schema_watermark=schema_watermark,
            )
            # assignment to an existing key keeps its LRU position — a
            # background refresh is not a client touch
            self._entries[key] = entry
            if refresh:
                self._refreshes += 1
                self._m_refreshes.inc()
                return
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)

    def invalidate(self, token: Tuple, limit: int) -> List[CacheEntry]:
        """A new snapshot was published: return entries to refresh eagerly.

        Returns up to ``limit`` of the most-recently-used entries whose
        stored token no longer matches ``token`` (hottest first).  Entries
        are left in place — they keep serving nothing (stale lookups miss)
        until a refresh or a client recompute overwrites them.
        """
        if not self.enabled or limit <= 0:
            return []
        with self._lock:
            stale = [
                entry
                for entry in reversed(self._entries.values())
                if entry.token != token
            ]
            return stale[:limit]

    def stats(self) -> Dict[str, int]:
        """Counters for the ``status`` operation and the benchmark."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self._max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "stale_misses": self._stale_misses,
                "refreshes": self._refreshes,
            }
