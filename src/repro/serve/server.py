"""The long-lived asyncio query server.

:class:`QueryServer` exposes the query engine to many concurrent clients
over the newline-delimited JSON protocol of :mod:`repro.serve.protocol`.
The design splits responsibilities so readers and the streaming writer
never contend:

* **Snapshot-isolated reads.**  Every request captures the current
  :class:`~repro.serve.views.ServeView` pointer exactly once; evaluation
  runs entirely against that immutable value in a worker thread (the
  :meth:`~repro.exec.executor.ShardedExecutor.request_pool` hand-off), so
  the event loop stays free for protocol I/O and a concurrent publish can
  never tear a response.
* **Lock-free publishing.**  The streaming side keeps calling
  ``stream.query_engine()`` as it always did; the server subscribes to the
  stream's snapshot publishes, captures the fusion/mention state on the
  writer's thread (consistent by the single-writer rule), and installs the
  new view with one pointer swap.  Readers never block
  :meth:`~repro.stream.engine.StreamingTamer.refresh` and vice versa.
* **Cache with background refresh.**  Fresh results are served straight
  from the :class:`~repro.serve.cache.ResultCache`; a publish invalidates
  by token and the hottest stale entries are re-evaluated in the
  background, so popular queries stay hot across updates.

Use :func:`serve_in_background` to run the server on its own thread (tests,
benchmarks, the facade's ``DataTamer.create_server`` callers).
"""

from __future__ import annotations

import asyncio
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from ..config import ServeConfig
from ..errors import (
    DeadlineExceeded,
    InjectedFault,
    Overloaded,
    ProtocolError,
    ServeError,
    TamerError,
)
from ..fault import injector_for, resolve_plan
from ..obs import NOOP_SPAN, TelemetryHub, default_hub
from ..query.engine import QueryEngine
from ..query.snapshot import EntitySnapshot
from ..query.topk import MentionCounter
from .cache import ResultCache
from .ops import DEFAULT_REGISTRY, evaluate_request  # noqa: F401  (oracle re-export)
from .protocol import (
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOL_VERSIONS,
    QueryRequest,
    encode_error,
    encode_response,
    parse_request,
    request_cache_key,
)
from .registry import OpRegistry
from .session import ClientSession, SessionRegistry
from .views import FusionIndex, ServeView


class QueryServer:
    """Serve the query engine to concurrent clients over JSON lines."""

    def __init__(
        self,
        engine: QueryEngine,
        *,
        config: Optional[ServeConfig] = None,
        stream=None,
        curated_documents: Optional[Callable[[], Iterable[dict]]] = None,
        instance_documents: Optional[Callable[[], Iterable[dict]]] = None,
        instance_collection=None,
        name_attribute: str = "show_name",
        prefer_sources: Sequence[str] = (),
        executor=None,
        hub: Optional[TelemetryHub] = None,
        sql_metadata: Optional[Callable[[], Any]] = None,
        registry: Optional[OpRegistry] = None,
    ):
        """``engine`` owns the atomic snapshot pointer requests read.

        ``stream`` (optional) is subscribed to for invalidation; the
        caller remains responsible for driving its refreshes.
        ``curated_documents``/``instance_documents`` supply the fusion and
        top-k capture sources (callables returning document iterables —
        typically ``collection.scan``).  ``instance_collection`` (a
        :class:`~repro.storage.document_store.Collection`) additionally
        subscribes the server to the text collection's change hook, so
        ``top_k`` mention counts refresh automatically on text ingest —
        no manual :meth:`refresh_mentions` needed.  ``executor`` provides
        the request-worker hand-off; without one the server owns a private
        thread pool.  ``hub`` is the telemetry plane (defaults to the
        executor's, then the process-wide hub).  ``sql_metadata`` is a
        callable returning a :class:`~repro.sql.SqlMetadata` — invoked on
        the writer thread at every publish, like the fusion capture, so
        the ``sql`` operation's catalog tables stay consistent with the
        snapshot.  ``registry`` overrides the operation table (defaults to
        :data:`~repro.serve.ops.DEFAULT_REGISTRY`).
        """
        self._config = config or ServeConfig()
        self._config.validate()
        self._engine = engine
        self._stream = stream
        self._curated_documents = curated_documents
        self._instance_documents = instance_documents
        self._name_attribute = name_attribute
        self._prefer_sources = tuple(prefer_sources)
        self._sql_metadata = sql_metadata
        self._registry = registry if registry is not None else DEFAULT_REGISTRY
        self._live_handlers: Dict[
            str, Callable[[ServeView, QueryRequest], Dict[str, Any]]
        ] = {
            "ping": self._ping_payload,
            "status": self._status_for,
            "metrics": self._metrics_for,
        }
        if hub is None:
            hub = getattr(executor, "hub", None) or default_hub()
        self._hub = hub
        self._cache = ResultCache(self._config.cache_size, hub=hub)
        self._sessions = SessionRegistry()
        self._executor = executor
        self._own_pool: Optional[ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._drain: Optional[asyncio.Event] = None
        self._handler_tasks: set = set()
        self._faults = injector_for(resolve_plan(self._config.fault_plan))
        # loop-confined admission counter: requests currently occupying a
        # worker slot (background refreshes included — they hold slots too)
        self._worker_busy = 0
        self._last_publish = time.monotonic()
        self._sheds = 0
        self._deadline_misses = 0
        self._degraded_served = 0
        self._refresh_tasks: set = set()
        self._unsubscribe: Optional[Callable[[], None]] = None
        self._unsubscribe_instances: Optional[Callable[[], None]] = None
        self._publishes = 0
        self._started_at = time.monotonic()
        self._requests_by_op: Dict[str, int] = {}
        metrics_registry = hub.registry
        self._m_requests = metrics_registry.counter(
            "serve_requests_total",
            "Requests served, by operation and outcome",
            labels=("op", "outcome"),
        )
        self._m_latency = metrics_registry.histogram(
            "serve_request_seconds",
            "Request service time (parse through write+drain)",
            labels=("op",),
        )
        self._latency_by_op: Dict[str, Any] = {}
        self._requests_by_op_outcome: Dict[tuple, Any] = {}
        self._trace_every = max(1, getattr(hub, "trace_sample_every", 1))
        # primed so the very first request is always traced
        self._trace_tick = self._trace_every - 1
        self._m_active_sessions = metrics_registry.gauge(
            "serve_active_sessions", "Currently connected client sessions"
        )
        self._m_worker_inflight = metrics_registry.gauge(
            "serve_worker_inflight",
            "Requests handed off to the worker pool and not yet returned",
        )
        self._m_publishes = metrics_registry.counter(
            "serve_publishes_total", "View installs (publishes + refreshes)"
        )
        self._m_shed = metrics_registry.counter(
            "serve_shed_total",
            "Requests rejected by admission control (max_inflight)",
        )
        self._m_deadline = metrics_registry.counter(
            "serve_deadline_exceeded_total",
            "Requests abandoned past request_deadline",
        )
        self._m_degraded = metrics_registry.counter(
            "serve_degraded_total",
            "Stale cache entries served in degraded-read mode",
        )
        self._m_mentions_refreshed = metrics_registry.counter(
            "mentions_refreshed_total",
            "Mention-count refreshes folded into the published view",
        )
        self._mentions_lock = threading.Lock()
        self._pending_fragments: List[dict] = []
        self._mentions_flush_scheduled = False
        self._mentions_recount = False
        self._mentions_epoch = 0
        self._mentions = self._capture_mentions()
        self._view = self._capture_view(engine.snapshot)
        if stream is not None:
            self._unsubscribe = stream.subscribe_snapshots(self._on_publish)
        if instance_collection is not None:
            if self._instance_documents is None:
                self._instance_documents = instance_collection.scan
                self._mentions = self._capture_mentions()
                self._view = self._capture_view(engine.snapshot)
            self._unsubscribe_instances = (
                instance_collection.add_change_listener(
                    self._on_instance_change
                )
            )

    # -- view capture ------------------------------------------------------

    def _capture_mentions(self) -> MentionCounter:
        counter = MentionCounter()
        if self._instance_documents is not None:
            counter.add_fragments(self._instance_documents())
        return counter

    def _capture_view(self, snapshot: EntitySnapshot) -> ServeView:
        documents = (
            self._curated_documents() if self._curated_documents is not None else ()
        )
        fusion = FusionIndex.capture(
            documents, self._name_attribute, prefer_sources=self._prefer_sources
        )
        # like the fusion corpus, the SQL catalog metadata is captured on
        # the writer's thread so it is consistent with the snapshot
        sql_metadata = (
            self._sql_metadata() if self._sql_metadata is not None else None
        )
        return ServeView(
            snapshot=snapshot,
            fusion=fusion,
            mentions=self._mentions,
            mentions_epoch=self._mentions_epoch,
            sql_metadata=sql_metadata,
        )

    def refresh_mentions(self) -> None:
        """Re-capture the text-collection mention counts from scratch.

        Kept for callers without a live ``instance_collection`` hook —
        with one, ingest refreshes mentions automatically.
        """
        self._mentions = self._capture_mentions()
        self._mentions_epoch += 1
        self._m_mentions_refreshed.inc()
        self._install_view(
            replace(
                self._view,
                mentions=self._mentions,
                mentions_epoch=self._mentions_epoch,
            )
        )

    def _on_instance_change(
        self, op: str, doc_id: object, document: Optional[dict]
    ) -> None:
        """Text-collection CDC hook: runs on the writer's thread.

        Inserted fragments are buffered and folded into a copy of the
        current counter in one coalesced flush (copy-on-write: the counter
        referenced by the published view is never mutated).  Updates and
        deletes cannot be decremented out of a counter, so they flag a
        full recount instead.
        """
        with self._mentions_lock:
            if op == "insert" and document is not None:
                self._pending_fragments.append(document)
            else:
                self._mentions_recount = True
            if self._mentions_flush_scheduled:
                return
            self._mentions_flush_scheduled = True
        loop = self._loop
        if loop is not None and not loop.is_closed():
            # coalesce: a burst of inserts lands in one flush on the loop
            loop.call_soon_threadsafe(self._flush_mentions)
        else:
            self._flush_mentions()

    def _flush_mentions(self) -> None:
        with self._mentions_lock:
            pending = self._pending_fragments
            recount = self._mentions_recount
            self._pending_fragments = []
            self._mentions_recount = False
            self._mentions_flush_scheduled = False
        if not pending and not recount:
            return
        if recount:
            counter = self._capture_mentions()
        else:
            counter = self._mentions.copy()
            counter.add_fragments(pending)
        self._mentions = counter
        self._mentions_epoch += 1
        self._m_mentions_refreshed.inc()
        self._install_view(
            replace(
                self._view,
                mentions=counter,
                mentions_epoch=self._mentions_epoch,
            )
        )

    def _on_publish(self, snapshot: EntitySnapshot) -> None:
        """Stream publish hook: runs on the thread that drove the refresh."""
        self._install_view(self._capture_view(snapshot))

    def _install_view(self, view: ServeView) -> None:
        self._view = view
        self._publishes += 1
        self._last_publish = time.monotonic()
        self._m_publishes.inc()
        loop = self._loop
        if loop is not None and not loop.is_closed() and self._cache.enabled:
            loop.call_soon_threadsafe(self._schedule_cache_refresh, view)

    # -- background cache refresh -----------------------------------------

    def _schedule_cache_refresh(self, view: ServeView) -> None:
        """On the event loop: re-prime the hottest stale cache entries."""
        if view is not self._view:
            return  # superseded before the loop got to it
        stale = self._cache.invalidate(view.token, self._config.refresh_limit)
        for entry in stale:
            task = asyncio.ensure_future(self._refresh_entry(view, entry))
            self._refresh_tasks.add(task)
            task.add_done_callback(self._refresh_tasks.discard)

    async def _refresh_entry(self, view: ServeView, entry) -> None:
        try:
            result = await self._run_in_worker(
                evaluate_request,
                view,
                entry.request,
                self._name_attribute,
                self._hub,
                self._registry,
            )
        except TamerError:
            return  # the next client miss will surface the error
        self._cache.put(
            entry.key,
            view.token,
            entry.request,
            result,
            view.watermark,
            view.schema_watermark,
            refresh=True,
        )

    async def _run_in_worker(self, func, *args):
        loop = asyncio.get_running_loop()
        pool = self._worker_pool()
        self._m_worker_inflight.inc()
        self._worker_busy += 1

        def call():
            # release from the worker thread's completion, not the await:
            # a deadline cancellation abandons the await while the thread
            # keeps computing, and admission control must keep counting
            # that thread as busy until it actually finishes
            try:
                return func(*args)
            finally:
                try:
                    loop.call_soon_threadsafe(self._release_worker_slot)
                except RuntimeError:
                    pass  # loop already closed during shutdown

        return await loop.run_in_executor(pool, call)

    def _release_worker_slot(self) -> None:
        self._worker_busy -= 1
        self._m_worker_inflight.dec()

    def _evaluate_traced(self, view, request, parent_span):
        """Worker-thread entry: evaluate under a span tied to the request.

        Context vars do not follow ``run_in_executor``, so the request
        span is passed explicitly and re-established as parent here.
        """
        with self._hub.tracer.span(
            "serve.evaluate", parent=parent_span, tags={"op": request.op}
        ):
            self._faults.fire("serve.evaluate")
            return evaluate_request(
                view,
                request,
                self._name_attribute,
                hub=self._hub,
                registry=self._registry,
            )

    def _degraded_active(self) -> bool:
        """Whether the published snapshot is stale past the threshold.

        Degraded-read mode needs two signals together: events are pending
        behind the watermark (the world has moved on) *and* no publish has
        landed within ``degraded_after_seconds`` (the pipeline is wedged or
        drowning).  Age alone is not staleness — an idle stream with no
        writes is simply quiet.
        """
        threshold = self._config.degraded_after_seconds
        if threshold <= 0 or self._stream is None:
            return False
        if self._stream.pending_events <= 0:
            return False
        return (time.monotonic() - self._last_publish) >= threshold

    def _worker_pool(self):
        if self._executor is not None:
            return self._executor.request_pool(self._config.request_workers)
        if self._own_pool is None:
            self._own_pool = ThreadPoolExecutor(
                max_workers=self._config.request_workers,
                thread_name_prefix="serve-request",
            )
        return self._own_pool

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listen socket and begin accepting clients."""
        if self._server is not None:
            raise ServeError("server already started")
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self._drain = asyncio.Event()
        self._started_at = time.monotonic()
        self._server = await asyncio.start_server(
            self._handle_client,
            host=self._config.host,
            port=self._config.port,
            limit=self._config.max_request_bytes,
        )

    @property
    def port(self) -> int:
        """The bound port (resolves ephemeral port 0 after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise ServeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def started(self) -> bool:
        """Whether the listen socket is up."""
        return self._server is not None

    async def serve_until_shutdown(self) -> None:
        """Block until :meth:`request_shutdown` fires, then stop."""
        if self._shutdown is None:
            raise ServeError("server is not started")
        await self._shutdown.wait()
        await self.stop()

    def request_shutdown(self) -> None:
        """Ask a running server to stop (callable from any thread)."""
        loop, shutdown = self._loop, self._shutdown
        if loop is not None and shutdown is not None and not loop.is_closed():
            loop.call_soon_threadsafe(shutdown.set)

    async def stop(self) -> None:
        """Drain in-flight requests, then stop accepting and release workers.

        Graceful order: close the listen socket (no new connections), raise
        the drain flag (each connection finishes the request it is serving,
        then hangs up with a clean FIN), wait up to ``drain_timeout`` for
        handlers to unwind, and only then cancel stragglers and tear the
        rest down.  A concurrent well-behaved client sees complete
        responses followed by EOF — never a connection reset.
        """
        if self._server is not None:
            self._server.close()
        if self._drain is not None:
            self._drain.set()
        handlers = [task for task in self._handler_tasks if not task.done()]
        if handlers:
            _, pending = await asyncio.wait(
                handlers, timeout=self._config.drain_timeout
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        self._handler_tasks.clear()
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        if self._unsubscribe_instances is not None:
            self._unsubscribe_instances()
            self._unsubscribe_instances = None
        for task in list(self._refresh_tasks):
            task.cancel()
        self._refresh_tasks.clear()
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None
        if self._own_pool is not None:
            self._own_pool.shutdown(wait=True)
            self._own_pool = None

    # -- request handling --------------------------------------------------

    async def _handle_client(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
        peer = writer.get_extra_info("peername")
        session = self._sessions.open(peer=str(peer))
        self._m_active_sessions.set(self._sessions.active)
        drain = self._drain
        try:
            while True:
                # a drain raised between requests ends the connection with
                # a clean FIN; one raised *during* a read races below and
                # the request that wins the race is still answered in full
                if drain is not None and drain.is_set():
                    break
                read = asyncio.ensure_future(reader.readline())
                if drain is not None:
                    waiter = asyncio.ensure_future(drain.wait())
                    done, _ = await asyncio.wait(
                        {read, waiter}, return_when=asyncio.FIRST_COMPLETED
                    )
                    waiter.cancel()
                    if read not in done:
                        read.cancel()
                        try:
                            await read
                        except (asyncio.CancelledError, Exception):
                            pass
                        break
                try:
                    line = await read
                except (ValueError, asyncio.LimitOverrunError):
                    # over-long line: the stream is desynced, hang up
                    oversize = ProtocolError(
                        "request exceeds max_request_bytes"
                    )
                    session.observe_error()
                    writer.write(encode_error(None, oversize).encode() + b"\n")
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    # a fired fault stands in for the peer's network dying
                    # mid-request: abort sends RST, clients must reconnect
                    self._faults.fire("serve.socket_read")
                except InjectedFault:
                    writer.transport.abort()
                    break
                # timed at this level — parse through write+drain — so the
                # histogram tracks what a client actually experiences
                start = time.perf_counter()
                # serve.request is the highest-rate span site in the
                # stack: record one request in every trace_sample_every
                # (metrics below stay exact for all of them)
                self._trace_tick += 1
                if self._trace_tick >= self._trace_every:
                    self._trace_tick = 0
                    span = self._hub.tracer.span("serve.request")
                else:
                    span = NOOP_SPAN
                with span:
                    response, op, outcome = await self._respond(line, session)
                    span.tag(op=op, outcome=outcome)
                    writer.write(response.encode("utf-8") + b"\n")
                    await writer.drain()
                self._observe_request(op, outcome, time.perf_counter() - start)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            if task is not None:
                self._handler_tasks.discard(task)
            self._sessions.close(session)
            self._m_active_sessions.set(self._sessions.active)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            except asyncio.CancelledError:
                # loop teardown cancelled the hand-off while the close
                # completed; the transport is gone, nothing left to await
                pass

    def _observe_request(self, op: str, outcome: str, elapsed: float) -> None:
        # the event loop is the only writer of these dicts, so the label
        # children can be cached without a lock
        histogram = self._latency_by_op.get(op)
        if histogram is None:
            histogram = self._m_latency.labels(op=op)
            self._latency_by_op[op] = histogram
        histogram.observe(elapsed)
        counter = self._requests_by_op_outcome.get((op, outcome))
        if counter is None:
            counter = self._m_requests.labels(op=op, outcome=outcome)
            self._requests_by_op_outcome[(op, outcome)] = counter
        counter.inc()
        self._requests_by_op[op] = self._requests_by_op.get(op, 0) + 1

    async def _respond(self, line: bytes, session: ClientSession):
        """Evaluate one request line; returns ``(response, op, outcome)``.

        ``op``/``outcome`` feed the per-op latency histogram and request
        counter (outcome is ``ok``, ``cached``, ``degraded``, ``shed``,
        ``deadline`` or ``error``).
        """
        try:
            request = parse_request(line, self._registry)
        except ProtocolError as exc:
            session.observe_error()
            return encode_error(None, exc), "invalid", "error"
        # one atomic capture: everything below reads this view only
        view = self._view
        live = self._live_handlers.get(request.op)
        if live is not None:
            result: Dict[str, Any] = live(view, request)
        else:
            key = request_cache_key(
                request, self._name_attribute, registry=self._registry
            )
            entry = self._cache.get(key, view.token)
            if entry is not None:
                session.observe(view.version, view.watermark, cached=True)
                return (
                    encode_response(
                        request.request_id,
                        entry.result,
                        cached=True,
                        version=view.version,
                        watermark=view.watermark,
                        schema_watermark=view.schema_watermark,
                    ),
                    request.op,
                    "cached",
                )
            if self._degraded_active():
                # snapshot publishing has stalled past the degraded-read
                # threshold: an older cached answer beats queueing behind a
                # wedged pipeline.  Serve it only if it cannot violate this
                # connection's monotonic-read guarantee.
                stale = self._cache.peek(key)
                if stale is not None and stale.token[0] >= session.last_version:
                    self._degraded_served += 1
                    self._m_degraded.inc()
                    session.observe(
                        stale.token[0], stale.watermark, cached=True
                    )
                    return (
                        encode_response(
                            request.request_id,
                            stale.result,
                            cached=True,
                            version=stale.token[0],
                            watermark=stale.watermark,
                            schema_watermark=stale.schema_watermark,
                            degraded=True,
                        ),
                        request.op,
                        "degraded",
                    )
            if (
                self._config.max_inflight > 0
                and self._worker_busy >= self._config.max_inflight
            ):
                # admission control: shedding at the door keeps latency
                # bounded for admitted requests instead of letting every
                # client time out behind an unbounded worker queue
                self._sheds += 1
                self._m_shed.inc()
                session.observe_error()
                overload = Overloaded(
                    retry_after=self._config.retry_after_seconds
                )
                return (
                    encode_error(
                        request.request_id,
                        overload,
                        retry_after=overload.retry_after,
                    ),
                    request.op,
                    "shed",
                )
            try:
                evaluation = self._run_in_worker(
                    self._evaluate_traced,
                    view,
                    request,
                    self._hub.tracer.current(),
                )
                if self._config.request_deadline > 0:
                    result = await asyncio.wait_for(
                        evaluation, self._config.request_deadline
                    )
                else:
                    result = await evaluation
            except asyncio.TimeoutError:
                # the worker thread keeps computing (threads cannot be
                # preempted) but the client gets its answer-by-deadline
                # contract honoured; the slot frees when the thread finishes
                self._deadline_misses += 1
                self._m_deadline.inc()
                session.observe_error()
                missed = DeadlineExceeded(
                    "evaluation exceeded request_deadline="
                    f"{self._config.request_deadline}s"
                )
                return (
                    encode_error(request.request_id, missed),
                    request.op,
                    "deadline",
                )
            except TamerError as exc:
                session.observe_error()
                return encode_error(request.request_id, exc), request.op, "error"
            self._cache.put(
                key,
                view.token,
                request,
                result,
                view.watermark,
                view.schema_watermark,
            )
        session.observe(view.version, view.watermark, cached=False)
        return (
            encode_response(
                request.request_id,
                result,
                cached=False,
                version=view.version,
                watermark=view.watermark,
                schema_watermark=view.schema_watermark,
            ),
            request.op,
            "ok",
        )

    def _ping_payload(
        self, view: ServeView, request: QueryRequest
    ) -> Dict[str, Any]:
        # stamped with the *negotiated* version, not the newest one this
        # build speaks, so v1 responses stay bit-identical to the
        # pre-registry protocol
        return {"pong": True, "protocol": request.version}

    def _status_for(
        self, view: ServeView, request: QueryRequest
    ) -> Dict[str, Any]:
        return self._status_payload(view, version=request.version)

    def _metrics_for(
        self, view: ServeView, request: QueryRequest
    ) -> Dict[str, Any]:
        return self._metrics_payload(request.params)

    def _status_payload(
        self, view: ServeView, version: int = 1
    ) -> Dict[str, Any]:
        payload = {
            "protocol": version,
            "version": view.version,
            "watermark": view.watermark,
            "schema_watermark": view.schema_watermark,
            "snapshot": {"version": view.version, "watermark": view.watermark},
            "mentions_epoch": view.mentions_epoch,
            "entities": len(view.snapshot),
            "publishes": self._publishes,
            "uptime_seconds": time.monotonic() - self._started_at,
            "requests_by_op": dict(self._requests_by_op),
            "cache": self._cache.stats(),
            "sessions": self._sessions.stats(),
            "pending_refreshes": len(self._refresh_tasks),
            "degraded": self._degraded_active(),
            "resilience": {
                "shed": self._sheds,
                "deadline_misses": self._deadline_misses,
                "degraded_served": self._degraded_served,
                "inflight": self._worker_busy,
                "max_inflight": self._config.max_inflight,
            },
            "alerts": self._alert_payload(),
        }
        if version >= 2:
            # v2-only keys, appended so the v1 status body stays
            # byte-for-byte what the old build produced
            payload["supported_protocols"] = list(SUPPORTED_PROTOCOL_VERSIONS)
            payload["ops"] = self._registry.names(version)
        return payload

    def _alert_payload(self) -> List[Dict[str, Any]]:
        """Firing alert rules, if the hub carries an alert manager."""
        alerts = getattr(self._hub, "alerts", None)
        if alerts is None:
            return []
        return alerts.evaluate()

    def _metrics_payload(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """The ``metrics`` operation: one coherent snapshot of the hub.

        Every layer wired to this server's hub — serve, stream, exec/pool,
        pipeline — reports into the same registry, so the snapshot covers
        the whole stack in one request.
        """
        if params.get("format") == "prometheus":
            return {
                "format": "prometheus",
                "text": self._hub.render_prometheus(),
            }
        payload = self._hub.snapshot()
        payload["format"] = "json"
        if params.get("traces"):
            payload["spans"] = self._hub.tracer.export()
        return payload

    # -- introspection -----------------------------------------------------

    @property
    def view(self) -> ServeView:
        """The currently published serve view (immutable)."""
        return self._view

    @property
    def cache(self) -> ResultCache:
        """The result cache (stats, tests)."""
        return self._cache

    @property
    def sessions(self) -> SessionRegistry:
        """The live-session registry."""
        return self._sessions

    @property
    def config(self) -> ServeConfig:
        """The validated serving configuration."""
        return self._config


@dataclass
class ServerHandle:
    """A server running on its own thread, stoppable from the caller's."""

    server: QueryServer
    thread: threading.Thread
    _previous_sigterm: Any = field(default=None, repr=False)

    @property
    def port(self) -> int:
        """The server's bound port."""
        return self.server.port

    def stop(self, timeout: float = 10.0) -> None:
        """Shut the server down and join its thread."""
        if self._previous_sigterm is not None:
            signal.signal(signal.SIGTERM, self._previous_sigterm)
            self._previous_sigterm = None
        self.server.request_shutdown()
        self.thread.join(timeout=timeout)
        if self.thread.is_alive():
            raise ServeError("server thread did not shut down in time")

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_in_background(
    server: QueryServer, handle_sigterm: bool = False
) -> ServerHandle:
    """Start ``server`` on a dedicated thread with its own event loop.

    Returns once the listen socket is bound (so :attr:`ServerHandle.port`
    is immediately valid); start-up failures re-raise in the caller.

    ``handle_sigterm`` installs a SIGTERM handler (main thread only —
    a Python restriction) that triggers the same graceful drain as
    :meth:`QueryServer.stop`: in-flight requests complete before sockets
    close.  :meth:`ServerHandle.stop` restores the previous handler.
    """
    if handle_sigterm and threading.current_thread() is not threading.main_thread():
        raise ServeError("handle_sigterm requires the main thread")
    ready = threading.Event()
    failure: list = []

    async def main() -> None:
        try:
            await server.start()
        except BaseException as exc:  # surface bind errors to the caller
            failure.append(exc)
            ready.set()
            return
        ready.set()
        await server.serve_until_shutdown()

    thread = threading.Thread(
        target=lambda: asyncio.run(main()), name="query-server", daemon=True
    )
    thread.start()
    ready.wait()
    if failure:
        thread.join()
        raise failure[0]
    handle = ServerHandle(server=server, thread=thread)
    if handle_sigterm:
        previous = signal.signal(
            signal.SIGTERM, lambda signum, frame: server.request_shutdown()
        )
        handle._previous_sigterm = (
            previous if previous is not None else signal.SIG_DFL
        )
    return handle
