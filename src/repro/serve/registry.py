"""The versioned operation registry of the serving tier.

Before this existed, adding a serve operation meant editing two parallel
``if op ==`` chains (parameter validation in :mod:`repro.serve.protocol`,
dispatch in :mod:`repro.serve.server`) plus the cache-key canonicaliser —
three places that could silently drift.  An :class:`OpSpec` folds all three
facets of one operation into a single table entry:

* ``validate(params)`` — raise :class:`~repro.errors.ProtocolError` on bad
  parameters (runs at parse time, before any evaluation);
* ``cache_key(request, name_attribute)`` — the canonical identity the
  result cache keys responses under, or ``None`` when the op is live;
* ``evaluate(view, request, ctx)`` — the pure snapshot-pinned evaluator,
  or ``None`` for live ops (``ping``/``status``/``metrics``) the server
  answers from loop state.

``since`` is the protocol version that introduced the op: a request
negotiating version 1 cannot name a version-2 op, which is how the v2
``sql`` operation coexists with bit-identical v1 behaviour.

This module is deliberately generic — it knows nothing about the concrete
operations (those live in :mod:`repro.serve.ops`) and imports nothing from
the rest of the serve package, so protocol, server and client can all build
on it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import ProtocolError

#: Validate callback: ``(params) -> None``, raising ProtocolError.
Validator = Callable[[Dict[str, Any]], None]
#: Cache-key callback: ``(request, name_attribute) -> key object``.
CacheKeyFn = Callable[[Any, str], Any]
#: Evaluator callback: ``(view, request, ctx) -> result dict``.
Evaluator = Callable[[Any, Any, Any], Dict[str, Any]]


@dataclass(frozen=True)
class OpSpec:
    """Everything the serving tier knows about one operation."""

    name: str
    #: Protocol version that introduced this op.
    since: int = 1
    summary: str = ""
    validate: Optional[Validator] = None
    cache_key: Optional[CacheKeyFn] = None
    #: ``None`` marks a live op: answered on the event loop from server
    #: state, never cached, never handed to a worker thread.
    evaluate: Optional[Evaluator] = None

    @property
    def cacheable(self) -> bool:
        """Whether responses are deterministic functions of the view."""
        return self.cache_key is not None

    @property
    def live(self) -> bool:
        """Whether the server answers this op from loop state."""
        return self.evaluate is None


class OpRegistry:
    """An ordered, versioned table of :class:`OpSpec` entries."""

    def __init__(self, specs: Tuple[OpSpec, ...] = ()):
        self._specs: Dict[str, OpSpec] = {}
        for spec in specs:
            self.register(spec)

    def register(self, spec: OpSpec) -> OpSpec:
        """Add one operation; duplicate names are an error."""
        if spec.name in self._specs:
            raise ProtocolError(f"operation already registered: {spec.name!r}")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> OpSpec:
        """The spec for ``name``; raises :class:`ProtocolError` if unknown."""
        spec = self._specs.get(name)
        if spec is None:
            raise ProtocolError(f"unknown operation: {name!r}")
        return spec

    def find(self, name: str) -> Optional[OpSpec]:
        """The spec for ``name``, or ``None``."""
        return self._specs.get(name)

    def check_version(self, name: str, version: int) -> OpSpec:
        """The spec for ``name`` if the negotiated ``version`` may call it."""
        spec = self.get(name)
        if version < spec.since:
            raise ProtocolError(
                f"operation {name!r} requires protocol version >= {spec.since}"
            )
        return spec

    def names(self, version: Optional[int] = None) -> List[str]:
        """Registered op names (optionally only those ``version`` may call),
        in registration order."""
        return [
            spec.name
            for spec in self._specs.values()
            if version is None or spec.since <= version
        ]

    def specs(self) -> List[OpSpec]:
        """Every registered spec, in registration order."""
        return list(self._specs.values())

    def cacheable_names(self) -> frozenset:
        """Names of ops whose responses the result cache may hold."""
        return frozenset(s.name for s in self._specs.values() if s.cacheable)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)
