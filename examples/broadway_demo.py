"""The paper's Section V demo scenario, end to end.

Someone wants to see a popular award-winning show for the best price.  The
script reproduces every step of the published walkthrough:

1. generate the web-text corpus and the 20 Fusion-Tables-style structured
   sources (stand-ins for the Recorded Future crawl and Google Fusion Tables);
2. rank the top-10 most discussed shows from web text (Table IV);
3. query "Matilda" against the text alone (Table V — no theater, no price);
4. integrate the structured sources, fuse, and re-run the query (Table VI —
   theater, schedule, cheapest price, first performance, plus the fragment).

Run with::

    python examples/broadway_demo.py
"""

from repro import DataTamer, TamerConfig
from repro.ingest import DictSource
from repro.text import DomainParser
from repro.text.gazetteer import broadway_gazetteer
from repro.workloads import (
    DedupCorpusGenerator,
    FTablesGenerator,
    WebInstanceGenerator,
)


def build_system() -> DataTamer:
    """Construct the extended Data Tamer with the Broadway domain parser."""
    tamer = DataTamer(TamerConfig.default())
    tamer.register_text_parser(DomainParser(broadway_gazetteer()))
    return tamer


def main() -> None:
    tamer = build_system()

    # --- unstructured side: ~1500 web documents through the domain parser ---
    web = WebInstanceGenerator(seed=1)
    documents = web.generate(1500)
    text_report = tamer.ingest_text_documents(doc.as_pair() for doc in documents)
    print(f"[text]   {text_report.documents} documents -> "
          f"{text_report.fragments} fragments, {text_report.entities} entity mentions")

    # --- Table IV: the top-10 most discussed shows ---
    print("\nTable IV — top 10 most discussed movies/shows from web text")
    for rank, row in enumerate(tamer.top_discussed_shows(k=10), start=1):
        print(f"  {rank:>2}. {row.entity:<28} {row.mentions:>5} mentions")

    # --- Table V: Matilda from web text alone ---
    print("\nTable V — 'Matilda' from web text only")
    text_only = [
        doc for doc in tamer.curated_collection.find({"_source": "webtext"})
        if doc.get("show_name") == "Matilda"
    ]
    fragment = text_only[0]["text_feed"] if text_only else "(no fragment found)"
    print("  SHOW_NAME : Matilda")
    print(f"  TEXT_FEED : {fragment[:90]}...")
    print("  (no theater, schedule or price available yet)")

    # --- structured side: the 20 FTABLES sources bootstrap the global schema ---
    ftables = FTablesGenerator(seed=2, n_sources=20)
    tamer.ingest_structured_records("global_seed", ftables.seed_records())
    reports = []
    for source in ftables.generate():
        reports.append(
            tamer.ingest_structured_source(
                DictSource(source.source_id, source.records())
            )
        )
    auto_rates = [round(r.mapping.auto_accept_rate, 2) for r in reports]
    print(f"\n[schema] {len(reports)} structured sources integrated; "
          f"global schema has {len(tamer.global_schema)} attributes")
    print(f"[schema] per-source automatic match rate: {auto_rates}")

    # --- consolidation model (the paper's dedup/cleaning classifier) ---
    corpus = DedupCorpusGenerator(seed=3).generate(n_entities=150)
    model = tamer.train_dedup_model(corpus.pairs)
    crossval = model.cross_validate(corpus.pairs, n_folds=10)
    print(f"[dedup]  10-fold CV: precision={crossval.mean_precision:.2f} "
          f"recall={crossval.mean_recall:.2f} (paper: 0.89/0.90)")

    # --- Table VI: the enriched result after fusion ---
    fused = tamer.fuse_show("Matilda")
    print("\nTable VI — enriched 'Matilda' record after fusion")
    for label, attribute in (
        ("SHOW_NAME", "show_name"),
        ("THEATER", "theater"),
        ("ADDRESS", "address"),
        ("PERFORMANCE", "performance_schedule"),
        ("CHEAPEST_PRICE", "cheapest_price"),
        ("FIRST", "first_performance"),
        ("TEXT_FEED", "text_feed"),
    ):
        value = fused.attributes.get(attribute)
        source = fused.provenance.get(attribute, "-")
        print(f"  {label:<15}: {str(value)[:70]:<72} [{source}]")

    # --- streaming curation: a late-arriving source, mapped incrementally ---
    # The curated collection keeps growing after the demo's batch ingest;
    # the operator chain keeps BOTH views fresh per micro-batch: entity
    # consolidation and (with schema_integration on) a bottom-up schema of
    # the streamed sources — no batch re-run, outputs bit-identical to one.
    stream = tamer.start_stream(schema_integration=True)
    late_rows = [
        {"ShowName": "Matilda", "Theater": "Shubert",
         "cheapestPrice": "$32", "_source": "late_feed"},
        {"ShowName": "Pippin", "Theater": "Music Box",
         "cheapestPrice": "$45", "_source": "late_feed"},
        {"ShowName": "Wicked", "Theater": "Gershwin",
         "cheapestPrice": "$65", "_source": "late_feed"},
    ]
    for row in late_rows:
        tamer.curated_collection.insert(row)
    entities = tamer.refresh()                  # incremental consolidation
    integrator = stream.integrator              # incremental schema view
    mapping = integrator.translation_for("late_feed")
    stats = integrator.last_stats
    print("\n[stream] late_feed mapped incrementally "
          f"({len(entities)} curated entities stay fresh):")
    for source_attr, global_attr in mapping.items():
        print(f"  {source_attr:<18} -> {global_attr}")
    print(f"[stream] matcher pairs scored={stats.pairs_scored} "
          f"reused={stats.pairs_reused}; values profiled="
          f"{stats.values_profiled}")
    tamer.stop_stream()

    print("\nCollection statistics (Tables I/II shape):")
    for name, stats in tamer.collection_stats().items():
        row = stats.as_dict()
        print(
            f"  dt.{name:<10} count={row['count']:<7} "
            f"numExtents={row['numExtents']:<4} nindexes={row['nindexes']}"
        )


if __name__ == "__main__":
    main()
