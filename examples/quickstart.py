"""Quickstart: fuse a structured source with web text in ~40 lines.

Run with::

    python examples/quickstart.py

The script builds a DataTamer instance, loads one small structured source of
Broadway shows, pushes a handful of raw web-text snippets through the domain
parser, and queries the fused result for "Matilda" — the smallest possible
version of the paper's demo scenario.
"""

from repro import DataTamer, TamerConfig
from repro.text import DomainParser
from repro.text.gazetteer import broadway_gazetteer
from repro.workloads import DedupCorpusGenerator

STRUCTURED_SHOWS = [
    {"show_name": "Matilda", "theater": "Shubert",
     "performance_schedule": "Tues at 7pm, Wed-Sat at 8pm, matinees Wed/Sat 2pm",
     "cheapest_price": "$27", "first_performance": "3/4/2013"},
    {"show_name": "Wicked", "theater": "Gershwin",
     "performance_schedule": "Mon-Sat at 8pm", "cheapest_price": "$89",
     "first_performance": "10/8/2003"},
    {"show_name": "Once", "theater": "Jacobs",
     "performance_schedule": "Tues-Sun at 7:30pm", "cheapest_price": "$35",
     "first_performance": "2/28/2012"},
]

WEB_SNIPPETS = [
    ("blog-1", "Just saw Matilda at the Shubert Theatre - absolutely worth it."),
    ("news-1", "Matilda an award-winning import from London, grossed 960,998, "
               "or 93 percent of the maximum."),
    ("tweet-1", "rush tickets for Wicked were only $40 this morning"),
    ("news-2", "The Walking Dead continues to dominate online conversation."),
]


def main() -> None:
    # 1. Build the system and register the (user-defined) domain parser.
    tamer = DataTamer(TamerConfig.default())
    tamer.register_text_parser(DomainParser(broadway_gazetteer()))

    # 2. Structured data bootstraps the global schema bottom-up.
    report = tamer.ingest_structured_records("broadway_shows", STRUCTURED_SHOWS)
    print(f"structured source loaded: {report.curated_records} records, "
          f"{len(tamer.global_schema)} global attributes")

    # 3. Raw web text flows through the domain parser into the store.
    text_report = tamer.ingest_text_documents(WEB_SNIPPETS)
    print(f"web text parsed: {text_report.documents} documents, "
          f"{text_report.fragments} fragments, {text_report.entities} entity mentions")

    # 4. Train the dedup/cleaning classifier on a labeled synthetic corpus.
    corpus = DedupCorpusGenerator(seed=0).generate(n_entities=80)
    tamer.train_dedup_model(corpus.pairs)

    # 5. Query the fused result: text fragment + structured attributes.
    fused = tamer.fuse_show("Matilda")
    print("\nFused record for 'Matilda':")
    for attribute, value in sorted(fused.attributes.items()):
        print(f"  {attribute:<22} = {str(value)[:70]}  [{fused.provenance[attribute]}]")

    # 6. What did the web alone know?  (the Table V vs Table VI delta)
    text_only = [
        doc for doc in tamer.curated_collection.find({"_source": "webtext"})
        if doc.get("show_name") == "Matilda"
    ]
    print("\nAttributes known from web text only:",
          sorted({k for d in text_only for k in d if not k.startswith("_")}))
    print("Attributes added by fusion:",
          sorted(set(fused.attributes) - {
              k for d in text_only for k in d if not k.startswith("_")
          }))


if __name__ == "__main__":
    main()
