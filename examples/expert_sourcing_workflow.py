"""Expert sourcing: how much human guidance does schema integration need?

Data Tamer's expert-sourcing mechanism routes uncertain matching decisions to
human domain experts.  This example simulates that loop over the 20 FTABLES
sources and reports, stage by stage, how the need for human intervention
falls as the global schema matures (the paper's Figure 2 narrative), and how
expert accuracy affects the quality of the integrated schema.

Run with::

    python examples/expert_sourcing_workflow.py
"""

from repro import DataTamer, TamerConfig
from repro.config import SchemaConfig
from repro.expert.experts import SimulatedExpert
from repro.expert.routing import ExpertRouter
from repro.ingest import DictSource
from repro.text import DomainParser
from repro.text.gazetteer import broadway_gazetteer
from repro.workloads import FTablesGenerator


def integrate_with_experts(expert_accuracy: float, seed: int = 0):
    """Integrate all FTABLES sources with a simulated expert pool."""
    ftables = FTablesGenerator(seed=11, n_sources=20)
    router = ExpertRouter(
        [
            SimulatedExpert("schema-expert-1", accuracy=expert_accuracy, seed=seed),
            SimulatedExpert("schema-expert-2", accuracy=expert_accuracy, seed=seed + 1),
        ]
    )
    tamer = DataTamer(
        TamerConfig(
            schema=SchemaConfig(accept_threshold=0.75, new_attribute_threshold=0.35)
        ),
        expert_router=router,
        true_schema_mapping=ftables.true_mapping_all(),
    )
    tamer.register_text_parser(DomainParser(broadway_gazetteer()))

    series = []
    for source in ftables.generate():
        report = tamer.ingest_structured_source(
            DictSource(source.source_id, source.records())
        )
        series.append(
            (source.source_id, report.mapping.auto_accept_rate,
             report.mapping.escalation_rate, len(tamer.global_schema))
        )
    return tamer, router, series


def main() -> None:
    print("=== Integration with accurate experts (95%) ===")
    tamer, router, series = integrate_with_experts(expert_accuracy=0.95)
    print(f"{'#':>3} {'source':<32}{'auto':>6}{'expert':>8}{'|schema|':>9}")
    for index, (source_id, auto, escalated, size) in enumerate(series):
        print(f"{index:>3} {source_id:<32}{auto:>6.2f}{escalated:>8.2f}{size:>9}")
    print(f"\nexpert questions answered : {router.total_tasks_answered}")
    print(f"simulated expert cost     : {router.total_cost:.1f}")
    print(f"final global schema size  : {len(tamer.global_schema)}")
    print(f"task queue stats          : {router.queue.stats()}")

    print("\n=== Sensitivity to expert accuracy ===")
    print(f"{'accuracy':>9}{'questions':>11}{'schema size':>13}")
    for accuracy in (0.99, 0.9, 0.7, 0.5):
        tamer, router, _ = integrate_with_experts(expert_accuracy=accuracy)
        print(f"{accuracy:>9.2f}{router.total_tasks_answered:>11}"
              f"{len(tamer.global_schema):>13}")
    print("\nLess accurate experts both reject correct suggestions (spurious new "
          "attributes) and confirm wrong ones (incorrect merges), so the schema "
          "drifts away from the 15-attribute ground truth in both directions.")


if __name__ == "__main__":
    main()
