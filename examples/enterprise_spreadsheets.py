"""Integrating heterogeneous enterprise spreadsheets (CSV sources).

The original Data Tamer paper's second pilot was "the integration of 8000
spreadsheets from scientists at a large drug company": many small structured
sources, inconsistent column names, dirty values, duplicate entities across
sheets.  This example reproduces that use case at small scale with the CSV
connector: three lab spreadsheets with different naming conventions are
cleaned, schema-integrated, consolidated and queried.

Run with::

    python examples/enterprise_spreadsheets.py
"""

from repro import DataTamer, TamerConfig
from repro.cleaning.outliers import zscore_outliers
from repro.cleaning.profiler import ColumnProfiler
from repro.entity.dedup import LabeledPair
from repro.entity.record import Record
from repro.ingest import CsvSource

SHEET_A = """compound_name,assay_result,concentration_um,lab
Aspirin,0.82,10,Cambridge
Ibuprofen,0.67,10,Cambridge
Paracetamol,0.91,5,Cambridge
Naproxen,0.44,10,Cambridge
"""

SHEET_B = """Compound,Result,Conc (uM),Laboratory
aspirin ,0.80,10,Boston
IBUPROFEN,0.65,10,Boston
Celecoxib,0.38,20,Boston
Paracetamol,0.90,5,Boston
"""

SHEET_C = """DrugName,AssayScore,Dose_uM,Site
Aspirin,0.79,10,Basel
Diclofenac,0.55,10,Basel
Naproxen,0.41,10,Basel
Paracetamol,9.10,5,Basel
"""


def training_pairs():
    """A tiny hand-labeled training set for the pairwise dedup classifier."""
    def record(rid, name, score, dose):
        return Record.from_dict(rid, "sheets", {
            "compound_name": name, "assay_result": score, "concentration_um": dose,
        })

    positives = [
        (record("p1", "Aspirin", 0.82, 10), record("p2", "aspirin", 0.80, 10)),
        (record("p3", "Ibuprofen", 0.67, 10), record("p4", "IBUPROFEN", 0.65, 10)),
        (record("p5", "Paracetamol", 0.91, 5), record("p6", "paracetamol", 0.90, 5)),
        (record("p7", "Naproxen", 0.44, 10), record("p8", "naproxen sodium", 0.41, 10)),
    ]
    negatives = [
        (record("n1", "Aspirin", 0.82, 10), record("n2", "Celecoxib", 0.38, 20)),
        (record("n3", "Ibuprofen", 0.67, 10), record("n4", "Diclofenac", 0.55, 10)),
        (record("n5", "Paracetamol", 0.91, 5), record("n6", "Naproxen", 0.44, 10)),
        (record("n7", "Celecoxib", 0.38, 20), record("n8", "Diclofenac", 0.55, 10)),
    ]
    return (
        [LabeledPair(a, b, True) for a, b in positives]
        + [LabeledPair(a, b, False) for a, b in negatives]
    )


def main() -> None:
    tamer = DataTamer(TamerConfig.default())

    # 1. Ingest the three spreadsheets; the first seeds the global schema.
    sheets = [
        CsvSource("cambridge_assays", text=SHEET_A, description="Cambridge lab sheet"),
        CsvSource("boston_assays", text=SHEET_B, description="Boston lab sheet"),
        CsvSource("basel_assays", text=SHEET_C, description="Basel lab sheet"),
    ]
    for sheet in sheets:
        report = tamer.ingest_structured_source(sheet)
        print(f"[{sheet.source_id}] {report.curated_records} rows curated; "
              f"mappings: {report.mapped_attributes}")

    print(f"\nGlobal schema after integration: {tamer.global_schema.attribute_names()}")

    # 2. Profile the curated data and flag suspicious values (the 9.10 assay
    #    score in the Basel sheet is a data-entry error).
    rows = [
        {k: v for k, v in doc.items() if not k.startswith("_")}
        for doc in tamer.curated_collection.scan()
    ]
    profiles = ColumnProfiler().profile_records(rows)
    # the assay score may live under more than one global attribute if a
    # sheet's column name was too dissimilar to auto-map; pool them all
    score_attrs = [
        name for name in profiles
        if "result" in name.lower() or "score" in name.lower()
    ]
    scores = [row.get(attr) for row in rows for attr in score_attrs
              if row.get(attr) is not None]
    outliers = zscore_outliers(scores, column="assay_result", threshold=2.0)
    primary = tamer.resolve_attribute("assay_result")
    print(f"\nColumn profile for {primary}: "
          f"mean={profiles[primary].numeric_mean:.2f}, "
          f"max={profiles[primary].numeric_max:.2f}")
    print(f"Assay-score attributes in the global schema: {score_attrs}")
    print(f"Outlier detection flagged values: {outliers.outlier_values}")

    # 3. Consolidate duplicate compounds across sheets.
    tamer.train_dedup_model(training_pairs())
    entities = tamer.consolidate_curated(key_attribute="compound_name")
    merged = [e for e in entities if e.size > 1]
    print(f"\nConsolidation: {len(rows)} rows -> {len(entities)} entities "
          f"({len(merged)} merged across labs)")
    for entity in merged:
        name_attr = tamer.resolve_attribute("compound_name")
        print(f"  {entity.attributes.get(name_attr):<14} merged from "
              f"{len(entity.member_record_ids)} rows "
              f"(sources: {', '.join(entity.source_ids)})")


if __name__ == "__main__":
    main()
