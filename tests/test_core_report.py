"""Tests for repro.core.report."""

from repro.core.report import CurationReport
from repro.expert.experts import SimulatedExpert
from repro.expert.routing import ExpertRouter


class TestCurationReport:
    def test_from_tamer_counts(self, populated_tamer):
        report = CurationReport.from_tamer(populated_tamer)
        assert report.attribute_count() == len(populated_tamer.global_schema)
        assert report.total_documents() == sum(
            s.count for s in populated_tamer.collection_stats().values()
        )
        assert len(report.sources) == len(populated_tamer.catalog)
        assert report.expert is None

    def test_render_text_mentions_sources_and_collections(self, populated_tamer):
        text = CurationReport.from_tamer(populated_tamer).render_text()
        assert "curation report" in text
        assert "dt.instance" in text
        assert "global_seed" in text
        assert "Global schema" in text

    def test_as_dict_keys(self, populated_tamer):
        data = CurationReport.from_tamer(populated_tamer).as_dict()
        assert set(data) == {
            "sources", "global_schema", "collections",
            "schema_history_length", "expert",
        }

    def test_expert_section(self, tamer):
        router = ExpertRouter([SimulatedExpert("e1", accuracy=1.0, seed=0)])
        router.ask("schema_match", {"q": 1}, ground_truth=True)
        report = CurationReport.from_tamer(tamer, expert_router=router)
        assert report.expert is not None
        assert report.expert["experts"][0]["tasks_answered"] == 1
        assert "Expert sourcing" in report.render_text()

    def test_empty_tamer_report(self, tamer):
        report = CurationReport.from_tamer(tamer)
        assert report.attribute_count() == 0
        assert report.total_documents() == 0
        assert "Sources ingested: 0" in report.render_text()
