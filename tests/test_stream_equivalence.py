"""Streaming/batch equivalence: the incremental curation contract.

The incremental engine's whole value rests on one property: after any
sequence of insert/update/delete events, the streaming curated state is
*bit-for-bit* what a from-scratch batch consolidation over the same
collection produces.  These tests drive seeded random event sequences
through a :class:`StreamingTamer` and compare the incremental entities
against the batch oracle at several checkpoints — across blocking
strategies, merge policies, worker counts and the full-rebuild fallback.
"""

import random

import pytest

from repro import DataTamer, StreamConfig, TamerConfig
from repro.config import EntityConfig
from repro.entity.consolidation import MergePolicy
from repro.workloads import DedupCorpusGenerator

SEEDS = (0, 1, 2)

_WORDS = (
    "matilda", "chicago", "wicked", "pippin", "cinderella", "annie",
    "broadway", "theater", "musical", "tickets", "show", "evening",
    "matinee", "orchestra", "balcony", "premiere",
)
_CITIES = ("new york", "boston", "chicago", "london")


def _random_doc(rng: random.Random) -> dict:
    doc = {
        "show_name": " ".join(rng.sample(_WORDS, rng.randint(1, 3))),
        "city": rng.choice(_CITIES),
        "price": rng.randint(20, 200),
        "venue": rng.choice(_WORDS),
        "_source": rng.choice(("src0", "src1", "src2")),
    }
    for attr in ("city", "price", "venue"):
        if rng.random() < 0.3:
            del doc[attr]
    return doc


def _mutate(rng: random.Random, doc: dict) -> dict:
    changed = {k: v for k, v in doc.items() if k != "_id"}
    choice = rng.random()
    if choice < 0.4:
        changed["show_name"] = " ".join(rng.sample(_WORDS, rng.randint(1, 3)))
    elif choice < 0.7:
        changed["price"] = rng.randint(20, 200)
    else:
        changed["city"] = rng.choice(_CITIES)
    return changed


def _build_tamer(entity: EntityConfig, workers: int = 1) -> DataTamer:
    config = TamerConfig.small()
    config.entity = entity
    config.stream = StreamConfig(max_batch_size=16, rebuild_threshold=0)
    tamer = DataTamer(config.validate())
    if workers > 1:
        tamer.set_parallelism(workers)
    corpus = DedupCorpusGenerator(seed=13).generate(
        n_entities=60, variants_per_entity=2
    )
    tamer.train_dedup_model(corpus.pairs)
    return tamer


def _drive_and_check(tamer: DataTamer, seed: int, steps: int = 36, checkpoint: int = 9):
    """Apply a random event sequence, asserting equivalence per checkpoint."""
    rng = random.Random(seed)
    for _ in range(30):
        tamer.curated_collection.insert(_random_doc(rng))
    stream = tamer.start_stream()
    assert stream.refresh() == stream.batch_reference()

    collection = tamer.curated_collection
    for step in range(1, steps + 1):
        live = [doc["_id"] for doc in collection.scan()]
        op = rng.random()
        if op < 0.45 or len(live) < 10:
            collection.insert(_random_doc(rng))
        elif op < 0.75:
            doc_id = rng.choice(live)
            collection.upsert(doc_id, _mutate(rng, collection.get(doc_id)))
        else:
            collection.delete(rng.choice(live))
        if step % checkpoint == 0:
            incremental = stream.refresh()
            batch = stream.batch_reference()
            assert incremental == batch
            assert [e.member_record_ids for e in incremental] == [
                e.member_record_ids for e in batch
            ]
    return stream


@pytest.mark.parametrize("seed", SEEDS)
def test_streaming_matches_batch_token_blocking(seed):
    tamer = _build_tamer(EntityConfig(blocking_strategy="token"))
    _drive_and_check(tamer, seed)


@pytest.mark.parametrize("seed", SEEDS)
def test_streaming_matches_batch_ngram_blocking(seed):
    tamer = _build_tamer(EntityConfig(blocking_strategy="ngram"))
    _drive_and_check(tamer, seed, steps=18, checkpoint=9)


@pytest.mark.parametrize("seed", SEEDS)
def test_streaming_matches_batch_sorted_neighborhood(seed):
    """Order-sensitive strategy: the record mirror must track insertion
    order through delete + re-insert cycles exactly."""
    tamer = _build_tamer(EntityConfig(blocking_strategy="sorted"))
    _drive_and_check(tamer, seed)


def test_streaming_matches_batch_no_blocking():
    tamer = _build_tamer(EntityConfig(blocking_strategy="none"))
    _drive_and_check(tamer, seed=3, steps=18, checkpoint=6)


@pytest.mark.parametrize("workers", (2, 4))
def test_streaming_matches_batch_parallel(workers):
    """The incremental path stays equivalent when fan-out is enabled."""
    tamer = _build_tamer(EntityConfig(blocking_strategy="token"), workers=workers)
    _drive_and_check(tamer, seed=1, steps=18, checkpoint=9)


def test_streaming_matches_batch_longest_merge_policy():
    tamer = _build_tamer(EntityConfig(blocking_strategy="token"))
    rng = random.Random(7)
    for _ in range(25):
        tamer.curated_collection.insert(_random_doc(rng))
    stream = tamer.start_stream(merge_policy=MergePolicy.LONGEST)
    for _ in range(10):
        tamer.curated_collection.insert(_random_doc(rng))
    assert stream.refresh() == stream.batch_reference()


@pytest.mark.parametrize("seed", SEEDS)
def test_full_rebuild_fallback_matches_incremental(seed):
    """The periodic rebuild fallback lands on the exact incremental state."""
    tamer = _build_tamer(EntityConfig(blocking_strategy="token"))
    stream = _drive_and_check(tamer, seed, steps=18, checkpoint=9)
    incremental = stream.refresh()
    rebuilt = stream.full_rebuild()
    assert rebuilt == incremental
    assert stream.rebuild_count == 1


def test_rebuild_threshold_auto_fires_and_stays_equivalent():
    config = TamerConfig.small()
    config.stream = StreamConfig(max_batch_size=8, rebuild_threshold=20)
    tamer = DataTamer(config.validate())
    corpus = DedupCorpusGenerator(seed=13).generate(
        n_entities=60, variants_per_entity=2
    )
    tamer.train_dedup_model(corpus.pairs)
    rng = random.Random(11)
    for _ in range(20):
        tamer.curated_collection.insert(_random_doc(rng))
    stream = tamer.start_stream()
    for _ in range(25):
        tamer.curated_collection.insert(_random_doc(rng))
    report = tamer.apply_delta()
    assert report.rebuilt
    assert stream.rebuild_count == 1
    assert stream.refresh() == stream.batch_reference()


@pytest.mark.parametrize("strategy", ("token", "sorted"))
@pytest.mark.parametrize("seed", (0, 1))
def test_split_path_and_same_id_reinsertion(strategy, seed):
    """Hostile case: tiny max_cluster_size forces the oversized-cluster
    split (score-ordered, tie-sensitive) on nearly every refresh, and
    documents are deleted and re-inserted under the SAME id (position moves
    to the collection's end, which order-sensitive blocking observes)."""
    from repro.stream.engine import StreamingTamer

    config = TamerConfig.small()
    config.entity = EntityConfig(blocking_strategy=strategy)
    tamer = DataTamer(config.validate())
    corpus = DedupCorpusGenerator(seed=13).generate(
        n_entities=60, variants_per_entity=2
    )
    tamer.train_dedup_model(corpus.pairs)
    collection = tamer.curated_collection
    rng = random.Random(seed)
    names = (
        "wicked show", "wicked shows", "the wicked show", "wicked",
        "wicked showtime",
    )

    def _doc():
        return {
            "show_name": rng.choice(names),
            "price": rng.randint(1, 5),
            "_source": "s",
        }

    for _ in range(20):
        collection.insert(_doc())
    stream = StreamingTamer(
        collection,
        tamer.dedup_model,
        entity_config=config.entity,
        stream_config=StreamConfig(max_batch_size=7, rebuild_threshold=0),
        key_attribute="show_name",
        max_cluster_size=3,
    )
    assert stream.refresh() == stream.batch_reference()
    for step in range(24):
        live = [doc["_id"] for doc in collection.scan()]
        op = rng.random()
        if op < 0.35 or len(live) < 8:
            collection.insert(_doc())
        elif op < 0.6:
            victim = rng.choice(live)
            doc = collection.get(victim)
            collection.delete(victim)
            doc["show_name"] = rng.choice(names)
            collection.insert(doc)  # same _id, new position at the end
        elif op < 0.85:
            collection.update(rng.choice(live), {"show_name": rng.choice(names)})
        else:
            collection.delete(rng.choice(live))
        if step % 6 == 5:
            assert stream.refresh() == stream.batch_reference()
