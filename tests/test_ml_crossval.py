"""Tests for repro.ml.crossval."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.crossval import CrossValResult, cross_validate, k_fold_indices
from repro.ml.linear import LogisticRegression
from repro.ml.metrics import ClassificationReport


class TestKFoldIndices:
    def test_every_sample_in_exactly_one_test_fold(self):
        splits = k_fold_indices(53, 10, seed=1)
        test_union = np.concatenate([test for _, test in splits])
        assert sorted(test_union.tolist()) == list(range(53))

    def test_train_and_test_disjoint(self):
        for train, test in k_fold_indices(40, 5):
            assert set(train.tolist()).isdisjoint(test.tolist())

    def test_number_of_folds(self):
        assert len(k_fold_indices(30, 10)) == 10

    def test_deterministic_with_seed(self):
        a = k_fold_indices(30, 3, seed=5)
        b = k_fold_indices(30, 3, seed=5)
        for (ta, sa), (tb, sb) in zip(a, b):
            assert np.array_equal(ta, tb) and np.array_equal(sa, sb)

    def test_no_shuffle_keeps_order(self):
        splits = k_fold_indices(10, 2, shuffle=False)
        assert splits[0][1].tolist() == [0, 1, 2, 3, 4]

    def test_invalid_parameters(self):
        with pytest.raises(ModelError):
            k_fold_indices(10, 1)
        with pytest.raises(ModelError):
            k_fold_indices(3, 5)


class TestCrossValidate:
    def _data(self, n=120, seed=0):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, 3))
        y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
        return X, y

    def test_returns_one_report_per_fold(self):
        X, y = self._data()
        result = cross_validate(
            lambda: LogisticRegression(n_epochs=20), X, y, n_folds=5
        )
        assert len(result.fold_reports) == 5
        assert all(isinstance(r, ClassificationReport) for r in result.fold_reports)

    def test_learnable_problem_scores_well(self):
        X, y = self._data()
        result = cross_validate(
            lambda: LogisticRegression(n_epochs=50), X, y, n_folds=5
        )
        assert result.mean_f1 > 0.85

    def test_as_dict_keys(self):
        X, y = self._data(n=60)
        result = cross_validate(
            lambda: LogisticRegression(n_epochs=5), X, y, n_folds=3
        )
        assert set(result.as_dict()) == {
            "folds", "precision", "recall", "f1", "accuracy",
        }

    def test_mismatched_rows_rejected(self):
        with pytest.raises(ModelError):
            cross_validate(
                lambda: LogisticRegression(), np.zeros((5, 2)), np.zeros(4), n_folds=2
            )

    def test_works_with_models_lacking_threshold_kwarg(self):
        class ThresholdlessModel:
            def fit(self, X, y):
                self._majority = int(round(float(np.mean(y))))
                return self

            def predict(self, X):
                return np.full(len(X), self._majority)

        X, y = self._data(n=40)
        result = cross_validate(lambda: ThresholdlessModel(), X, y, n_folds=4)
        assert len(result.fold_reports) == 4

    def test_deterministic(self):
        X, y = self._data(n=80)
        r1 = cross_validate(
            lambda: LogisticRegression(n_epochs=10, seed=0), X, y, n_folds=4
        )
        r2 = cross_validate(
            lambda: LogisticRegression(n_epochs=10, seed=0), X, y, n_folds=4
        )
        assert r1.as_dict() == r2.as_dict()


class TestCrossValResult:
    def test_means_average_over_folds(self):
        result = CrossValResult(
            fold_reports=[
                ClassificationReport(1.0, 0.5, 0.66, 0.75, 2, 2),
                ClassificationReport(0.5, 1.0, 0.66, 0.75, 2, 2),
            ]
        )
        assert result.mean_precision == pytest.approx(0.75)
        assert result.mean_recall == pytest.approx(0.75)
        assert result.mean_accuracy == pytest.approx(0.75)
