"""Smoke tests keeping the benchmark harness from silently rotting.

Benchmarks are not collected by the tier-1 run (they match ``bench_*.py``,
not ``test_*.py``), so an API change could break every table/figure
regeneration without any test noticing.  Two guards:

* every ``benchmarks/bench_*.py`` module must still *import* against the
  current API (catches renamed symbols, moved modules, signature drift in
  module-level code);
* the whole benchmark suite must still *run* at a tiny scale
  (``BENCH_SCALE=0.05``), exercised in a subprocess exactly the way a human
  would run it.
"""

import importlib.util
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCHMARKS_DIR = REPO_ROOT / "benchmarks"
BENCH_MODULES = sorted(p.name for p in BENCHMARKS_DIR.glob("bench_*.py"))


def _load_module(path: Path, name: str):
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(name, None)
    return module


def test_all_benchmark_modules_discovered():
    assert len(BENCH_MODULES) >= 12, BENCH_MODULES
    assert "bench_fig1_streaming.py" in BENCH_MODULES


@pytest.mark.parametrize("module_name", BENCH_MODULES)
def test_benchmark_module_imports(module_name, monkeypatch):
    """Each bench module must import cleanly against the current API.

    Bench modules do ``from conftest import ...`` expecting the benchmarks
    conftest; load that file under the name ``conftest`` for the duration of
    the import (the tests' own conftest is registered under a different
    module name by pytest, but be defensive and restore whatever was there).
    """
    saved = sys.modules.get("conftest")
    monkeypatch.syspath_prepend(str(BENCHMARKS_DIR))
    try:
        bench_conftest = sys.modules["conftest"] = _load_module(
            BENCHMARKS_DIR / "conftest.py", "conftest"
        )
        assert hasattr(bench_conftest, "write_report")
        _load_module(
            BENCHMARKS_DIR / module_name, f"bench_smoke_{module_name[:-3]}"
        )
    finally:
        if saved is not None:
            sys.modules["conftest"] = saved
        else:
            sys.modules.pop("conftest", None)


def test_benchmark_suite_runs_at_tiny_scale(tmp_path):
    """The full benchmark suite passes at BENCH_SCALE=0.05 in a subprocess."""
    env = dict(os.environ)
    env["BENCH_SCALE"] = "0.05"
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            "benchmarks",
            "-q",
            "-o",
            "python_files=bench_*.py",
            "-o",
            f"cache_dir={tmp_path / 'pytest_cache'}",
            "--benchmark-disable",
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"benchmark smoke run failed\n--- stdout ---\n{result.stdout[-4000:]}"
        f"\n--- stderr ---\n{result.stderr[-4000:]}"
    )


def test_fig1_streaming_compare_entry_point():
    """The streaming comparison stays wired up (tiny in-process run).

    Beyond importing, this exercises the batch-vs-incremental comparison —
    which asserts bit-identical outputs internally — at a toy scale.
    """
    from repro.workloads import DedupCorpusGenerator

    saved = sys.modules.get("conftest")
    sys.path.insert(0, str(BENCHMARKS_DIR))
    try:
        sys.modules["conftest"] = _load_module(
            BENCHMARKS_DIR / "conftest.py", "conftest"
        )
        streaming = _load_module(
            BENCHMARKS_DIR / "bench_fig1_streaming.py", "bench_fig1_streaming_smoke"
        )
        corpus = DedupCorpusGenerator(seed=103).generate(
            n_entities=60, variants_per_entity=2
        )
        rows = streaming._compare_streaming(corpus, 25, [1, 4])
        assert len(rows) == 2
        for delta, corpus_size, incr_s, batch_s, _speedup in rows:
            assert corpus_size >= 25 + delta
            assert incr_s > 0 and batch_s > 0
    finally:
        sys.path.remove(str(BENCHMARKS_DIR))
        if saved is not None:
            sys.modules["conftest"] = saved
        else:
            sys.modules.pop("conftest", None)


def test_fig1_compare_mode_entry_point():
    """The --compare script mode stays wired up (tiny in-process run)."""
    saved = sys.modules.get("conftest")
    sys.path.insert(0, str(BENCHMARKS_DIR))
    try:
        sys.modules["conftest"] = _load_module(
            BENCHMARKS_DIR / "conftest.py", "conftest"
        )
        fig1 = _load_module(
            BENCHMARKS_DIR / "bench_fig1_pipeline_scale.py", "bench_fig1_smoke"
        )
        rows = fig1._compare_consolidation(2, 64, [12])
        assert len(rows) == 1
        assert rows[0]["sequential_seconds"] > 0
        assert rows[0]["ephemeral_seconds"] > 0
        assert rows[0]["persistent_cold_seconds"] > 0
        assert rows[0]["persistent_warm_seconds"] > 0
    finally:
        sys.path.remove(str(BENCHMARKS_DIR))
        if saved is not None:
            sys.modules["conftest"] = saved
        else:
            sys.modules.pop("conftest", None)


def test_fig1_compare_kernel_entry_point():
    """The --compare-kernel mode stays wired up (tiny in-process run).

    Beyond importing, this exercises the scalar-vs-vectorized comparison —
    which asserts bit-identical scores and an unchanged matched-pair set
    internally — at a toy scale.
    """
    saved = sys.modules.get("conftest")
    sys.path.insert(0, str(BENCHMARKS_DIR))
    try:
        sys.modules["conftest"] = _load_module(
            BENCHMARKS_DIR / "conftest.py", "conftest"
        )
        fig1 = _load_module(
            BENCHMARKS_DIR / "bench_fig1_pipeline_scale.py",
            "bench_fig1_kernel_smoke",
        )
        rows = fig1._compare_kernel_scoring([15])
        assert len(rows) == 1
        row = rows[0]
        assert row["scalar_seconds"] > 0 and row["kernel_seconds"] > 0
        assert row["candidate_pairs"] > 0
        assert row["match_completeness_preserved"] is True
        assert (
            row["pruned_pairs"] + row["matched_pairs"] <= row["candidate_pairs"]
        )
    finally:
        sys.path.remove(str(BENCHMARKS_DIR))
        if saved is not None:
            sys.modules["conftest"] = saved
        else:
            sys.modules.pop("conftest", None)
