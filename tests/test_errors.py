"""Tests for the exception hierarchy."""


from repro import errors


def test_all_errors_derive_from_tamer_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if (
            isinstance(obj, type)
            and issubclass(obj, Exception)
            and obj is not Exception
        ):
            assert issubclass(obj, errors.TamerError), name


def test_collection_not_found_carries_name():
    err = errors.CollectionNotFound("instance")
    assert err.name == "instance"
    assert "instance" in str(err)


def test_document_not_found_carries_id():
    err = errors.DocumentNotFound(42)
    assert err.doc_id == 42


def test_duplicate_document_id_carries_id():
    err = errors.DuplicateDocumentId("x")
    assert err.doc_id == "x"


def test_unknown_attribute_carries_name():
    err = errors.UnknownAttribute("price")
    assert err.name == "price"


def test_unknown_source_carries_id():
    err = errors.UnknownSource("src1")
    assert err.source_id == "src1"


def test_not_fitted_error_message_mentions_fit():
    err = errors.NotFittedError("MyModel")
    assert "fit()" in str(err)
    assert "MyModel" in str(err)


def test_storage_errors_are_catchable_as_storage_error():
    assert issubclass(errors.CollectionNotFound, errors.StorageError)
    assert issubclass(errors.TableError, errors.StorageError)
    assert issubclass(errors.IndexError_, errors.StorageError)


def test_schema_errors_are_catchable_as_schema_error():
    assert issubclass(errors.UnknownAttribute, errors.SchemaError)
    assert issubclass(errors.MappingConflict, errors.SchemaError)


def test_cleaning_transform_hierarchy():
    assert issubclass(errors.TransformError, errors.CleaningError)


def test_expert_hierarchy():
    assert issubclass(errors.NoExpertAvailable, errors.ExpertError)
