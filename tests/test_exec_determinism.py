"""Determinism of the sharded execution engine across repeated runs.

Shard assignment hashes through blake2b (never Python's randomized ``hash``),
fan-out results merge in shard order, and parallel stages report the same
stage names — so running the same sharded pipeline twice must give the same
answer, in the same order, with the same bookkeeping.
"""

import pytest

from repro.config import ExecConfig
from repro.core.pipeline import CurationPipeline
from repro.entity.consolidation import EntityConsolidator
from repro.entity.dedup import DedupModel
from repro.exec import ShardedExecutor
from repro.query.engine import QueryEngine
from repro.workloads import DedupCorpusGenerator


@pytest.fixture(scope="module")
def corpus():
    return DedupCorpusGenerator(seed=31).generate(
        n_entities=40, variants_per_entity=2
    )


@pytest.fixture(scope="module")
def model(corpus):
    return DedupModel(seed=0).fit(corpus.pairs)


def make_executor(workers: int = 8) -> ShardedExecutor:
    return ShardedExecutor(ExecConfig(parallelism=workers, batch_size=32))


class TestShardAssignmentStability:
    def test_partition_is_stable_across_executors(self, corpus):
        ids = [r.record_id for r in corpus.records]
        first = make_executor().partition(ids, key=lambda x: x)
        second = make_executor().partition(ids, key=lambda x: x)
        assert first == second

    def test_partition_preserves_within_shard_order(self):
        items = list(range(200))
        parts = make_executor(4).partition(items, key=lambda x: f"id{x}")
        for part in parts:
            assert part == sorted(part)
        assert sorted(x for part in parts for x in part) == items

    def test_chunking_is_contiguous_and_complete(self):
        items = list(range(103))
        chunks = make_executor().chunk(items, batch_size=10)
        assert [len(c) for c in chunks] == [10] * 10 + [3]
        assert [x for chunk in chunks for x in chunk] == items

    def test_shard_timings_report_true_item_counts(self, corpus, model):
        from repro.exec import BatchScorer

        records = corpus.records
        by_id = {r.record_id: r for r in records}
        pairs = [
            (records[i].record_id, records[i + 1].record_id)
            for i in range(0, 40, 2)
        ]
        executor = make_executor(2)
        BatchScorer(model, executor=executor, batch_size=8).score_pairs(by_id, pairs)
        assert [t.items for t in executor.last_shard_timings] == [8, 8, 4]

    def test_failed_fan_out_leaves_no_stale_timings(self):
        executor = make_executor(2)
        executor.map_shards(sum, [[1], [2], [3]])
        assert len(executor.last_shard_timings) == 3
        with pytest.raises(ZeroDivisionError):
            executor.map_shards(lambda part: 1 // part[0], [[1], [0]])
        assert executor.last_shard_timings == []


def _build_sharded_pipeline(model, records, executor):
    """The consolidation slice of Figure 1 as a fan-out/fan-in pipeline."""
    consolidator = EntityConsolidator(model=model, executor=executor)
    pipeline = CurationPipeline(executor=executor)
    pipeline.add_stage("load", lambda ctx: records)
    pipeline.add_parallel_stage(
        "shard_sizes",
        fan_out=lambda ctx: executor.partition(
            ctx["load"], key=lambda r: r.record_id
        ),
        worker=len,
    )
    pipeline.add_stage(
        "consolidate", lambda ctx: consolidator.consolidate(ctx["load"])
    )
    pipeline.add_stage(
        "query",
        lambda ctx: [
            e.entity_id
            for e in QueryEngine(ctx["consolidate"], executor=executor).search("show")
        ],
    )
    return pipeline


class TestPipelineDeterminism:
    def test_same_pipeline_twice_is_stable(self, corpus, model):
        runs = []
        for _ in range(2):
            executor = make_executor()
            pipeline = _build_sharded_pipeline(model, corpus.records, executor)
            context = pipeline.run()
            runs.append((pipeline, context))

        (first_pipe, first_ctx), (second_pipe, second_ctx) = runs

        # identical stage names, in order
        assert list(first_pipe.timing_summary()) == list(second_pipe.timing_summary())
        assert list(first_pipe.timing_summary()) == [
            "load", "shard_sizes", "consolidate", "query",
        ]
        # stable shard assignment: the fan-out saw identical partitions
        assert first_ctx["shard_sizes"] == second_ctx["shard_sizes"]
        # stable ordering: consolidated entities and query results match
        # element by element, not just as sets
        assert first_ctx["consolidate"] == second_ctx["consolidate"]
        assert first_ctx["query"] == second_ctx["query"]
        # parallel stages report one timing per shard in both runs
        assert len(first_pipe.shard_timing_summary()["shard_sizes"]) == len(
            second_pipe.shard_timing_summary()["shard_sizes"]
        )

    def test_consolidation_twice_is_stable(self, corpus, model):
        executor = make_executor()
        consolidator = EntityConsolidator(model=model, executor=executor)
        first = consolidator.consolidate(corpus.records)
        second = consolidator.consolidate(corpus.records)
        assert first == second
        assert [e.entity_id for e in first] == [e.entity_id for e in second]

    def test_worker_count_does_not_change_results(self, corpus, model):
        outputs = []
        for workers in (1, 2, 8):
            executor = make_executor(workers)
            pipeline = _build_sharded_pipeline(model, corpus.records, executor)
            context = pipeline.run()
            outputs.append((context["consolidate"], context["query"]))
        assert outputs[0] == outputs[1] == outputs[2]
