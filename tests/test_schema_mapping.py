"""Tests for repro.schema.mapping."""

from repro.schema.mapping import (
    AttributeMapping,
    MappingDecision,
    SourceMappingReport,
)


def _mapping(attr, target, decision):
    return AttributeMapping(
        source_attribute=attr, global_attribute=target, decision=decision
    )


class TestAttributeMapping:
    def test_is_mapped_for_positive_decisions(self):
        assert _mapping("a", "x", MappingDecision.AUTO_ACCEPT).is_mapped
        assert _mapping("a", "x", MappingDecision.EXPERT_CONFIRMED).is_mapped
        assert _mapping("a", "a", MappingDecision.ADDED_TO_GLOBAL).is_mapped

    def test_not_mapped_for_negative_decisions(self):
        assert not _mapping("a", None, MappingDecision.IGNORED).is_mapped
        assert not _mapping("a", None, MappingDecision.EXPERT_REJECTED).is_mapped


class TestSourceMappingReport:
    def _report(self):
        return SourceMappingReport(
            source_id="s",
            mappings=[
                _mapping("a", "x", MappingDecision.AUTO_ACCEPT),
                _mapping("b", "y", MappingDecision.EXPERT_CONFIRMED),
                _mapping("c", None, MappingDecision.EXPERT_REJECTED),
                _mapping("d", "d", MappingDecision.ADDED_TO_GLOBAL),
            ],
        )

    def test_translation_only_includes_mapped(self):
        assert self._report().translation() == {"a": "x", "b": "y", "d": "d"}

    def test_mapping_for(self):
        report = self._report()
        assert report.mapping_for("a").global_attribute == "x"
        assert report.mapping_for("zzz") is None

    def test_count_by_decision(self):
        counts = self._report().count_by_decision()
        assert counts["auto_accept"] == 1
        assert counts["expert_confirmed"] == 1
        assert counts["expert_rejected"] == 1
        assert counts["added_to_global"] == 1

    def test_auto_accept_rate(self):
        assert self._report().auto_accept_rate == 0.25

    def test_escalation_rate_counts_both_expert_outcomes(self):
        assert self._report().escalation_rate == 0.5

    def test_empty_report_rates(self):
        empty = SourceMappingReport(source_id="s")
        assert empty.auto_accept_rate == 0.0
        assert empty.escalation_rate == 0.0
