"""Tests for repro.storage.persistence."""

import json

import pytest

from repro.errors import StorageError
from repro.storage.document_store import DocumentStore
from repro.storage.persistence import (
    dump_collection,
    dump_store,
    load_collection,
    load_store,
)


@pytest.fixture
def populated_store(storage_config):
    store = DocumentStore("dt", storage_config)
    instance = store.create_collection("instance")
    instance.insert_many(
        [{"text_feed": f"fragment {i}", "entity": "Matilda"} for i in range(25)]
    )
    instance.create_text_index("text_feed")
    entity = store.create_collection("entity")
    entity.insert_many([{"entity.name": "Matilda", "entity.type": "Movie"}])
    entity.create_index("entity.type")
    return store


class TestDumpLoadCollection:
    def test_roundtrip_counts_and_content(
        self, populated_store, tmp_path, storage_config
    ):
        path = tmp_path / "instance.jsonl"
        written = dump_collection(populated_store.collection("instance"), path)
        assert written == 25

        target = DocumentStore("dt", storage_config).create_collection("instance")
        loaded = load_collection(target, path)
        assert loaded == 25
        assert target.count() == 25
        doc = target.find_one({"entity": "Matilda"})
        assert doc is not None and doc["text_feed"].startswith("fragment")

    def test_load_missing_file(self, document_store, tmp_path):
        collection = document_store.create_collection("c")
        with pytest.raises(StorageError):
            load_collection(collection, tmp_path / "nope.jsonl")

    def test_load_invalid_json_raises(self, document_store, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n', encoding="utf-8")
        collection = document_store.create_collection("c")
        with pytest.raises(StorageError, match="invalid JSON"):
            load_collection(collection, path)

    def test_load_skip_invalid(self, document_store, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n[1,2]\n{"ok": 2}\n', encoding="utf-8")
        collection = document_store.create_collection("c")
        assert load_collection(collection, path, skip_invalid=True) == 2

    def test_non_serializable_values_stringified(self, document_store, tmp_path):
        collection = document_store.create_collection("c")
        collection.insert({"value": {1, 2, 3}})
        path = tmp_path / "c.jsonl"
        dump_collection(collection, path)
        line = json.loads(path.read_text().strip())
        assert isinstance(line["value"], str)


class TestDumpLoadStore:
    def test_roundtrip_preserves_collections_and_indexes(
        self, populated_store, tmp_path
    ):
        counts = dump_store(populated_store, tmp_path / "dump")
        assert counts == {"instance": 25, "entity": 1}

        restored = load_store(tmp_path / "dump")
        assert restored.namespace == "dt"
        assert set(restored.list_collections()) == {"instance", "entity"}
        assert restored.collection("instance").count() == 25
        # text index rebuilt and usable
        hits = restored.collection("instance").search_text("text_feed", "fragment 3")
        assert hits
        # hash index rebuilt
        assert restored.collection("entity").find({"entity.type": "Movie"})

    def test_manifest_written(self, populated_store, tmp_path):
        dump_store(populated_store, tmp_path / "dump")
        manifest = json.loads((tmp_path / "dump" / "manifest.json").read_text())
        assert manifest["namespace"] == "dt"
        assert manifest["collections"]["instance"]["count"] == 25
        assert "text_feed" in manifest["collections"]["instance"]["indexes"]["text"]

    def test_load_missing_manifest(self, tmp_path):
        with pytest.raises(StorageError):
            load_store(tmp_path)

    def test_load_bad_format_version(self, populated_store, tmp_path):
        dump_store(populated_store, tmp_path / "dump")
        manifest_path = tmp_path / "dump" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(StorageError, match="format version"):
            load_store(tmp_path / "dump")

    def test_count_mismatch_detected(self, populated_store, tmp_path):
        dump_store(populated_store, tmp_path / "dump")
        # truncate the data file to force a mismatch
        data_path = tmp_path / "dump" / "instance.jsonl"
        lines = data_path.read_text().splitlines()
        data_path.write_text("\n".join(lines[:10]) + "\n")
        with pytest.raises(StorageError, match="manifest says"):
            load_store(tmp_path / "dump")

    def test_stats_survive_roundtrip_shape(self, populated_store, tmp_path):
        dump_store(populated_store, tmp_path / "dump")
        restored = load_store(tmp_path / "dump")
        original = populated_store.collection("instance").stats()
        loaded = restored.collection("instance").stats()
        assert loaded.count == original.count
        assert loaded.nindexes == original.nindexes
