"""Tests for repro.entity.similarity."""

import numpy as np
import pytest

from repro.entity.record import Record
from repro.entity.similarity import FEATURE_NAMES, PairFeatureExtractor, pair_features


def _record(rid, values):
    return Record.from_dict(rid, "s", values)


class TestPairFeatures:
    def test_vector_length_matches_names(self):
        a = _record("a", {"name": "Matilda"})
        b = _record("b", {"name": "Matilda"})
        assert pair_features(a, b).shape == (len(FEATURE_NAMES),)

    def test_identical_records_score_high(self):
        values = {"name": "Matilda", "theater": "Shubert", "price": 27}
        features = pair_features(_record("a", values), _record("b", values))
        named = dict(zip(FEATURE_NAMES, features))
        assert named["token_jaccard"] == 1.0
        assert named["exact_match_fraction"] == 1.0
        assert named["numeric_closeness"] == 1.0
        assert named["length_ratio"] == 1.0

    def test_disjoint_records_score_low(self):
        a = _record("a", {"name": "Matilda", "price": 27})
        b = _record("b", {"name": "Completely Different", "price": 9000})
        named = dict(zip(FEATURE_NAMES, pair_features(a, b)))
        assert named["token_jaccard"] == 0.0
        assert named["exact_match_fraction"] == 0.0
        assert named["numeric_closeness"] < 0.1

    def test_features_bounded_unit_interval(self):
        a = _record("a", {"name": "Matilda", "x": "short"})
        b = _record("b", {"name": "matilda the musical", "y": "something else"})
        features = pair_features(a, b)
        assert np.all(features >= 0.0) and np.all(features <= 1.0)

    def test_symmetric(self):
        a = _record("a", {"name": "Matilda", "price": 27})
        b = _record("b", {"name": "Matilda musical", "price": 29})
        assert np.allclose(pair_features(a, b), pair_features(b, a))

    def test_shared_attr_ratio_reflects_sparsity(self):
        structured = _record(
            "a", {"name": "Matilda", "theater": "Shubert", "price": 27}
        )
        sparse = _record("b", {"name": "Matilda"})
        named = dict(zip(FEATURE_NAMES, pair_features(structured, sparse)))
        assert named["shared_attr_ratio"] == pytest.approx(1 / 3)

    def test_compare_attributes_restriction(self):
        a = _record("a", {"name": "Matilda", "noise": "xxxx"})
        b = _record("b", {"name": "Matilda", "noise": "yyyy"})
        unrestricted = dict(zip(FEATURE_NAMES, pair_features(a, b)))
        restricted = dict(zip(FEATURE_NAMES, pair_features(a, b, ["name"])))
        assert restricted["token_jaccard"] == 1.0
        assert unrestricted["token_jaccard"] < 1.0

    def test_both_empty_records(self):
        a = _record("a", {})
        b = _record("b", {})
        features = pair_features(a, b)
        assert np.all(np.isfinite(features))

    def test_typo_still_scores_reasonably(self):
        a = _record("a", {"name": "Shubert Theatre"})
        b = _record("b", {"name": "Shubert Theatr"})
        named = dict(zip(FEATURE_NAMES, pair_features(a, b)))
        assert named["max_string_similarity"] > 0.85


class TestPairFeatureExtractor:
    def _extractor(self):
        records = [
            _record("a", {"name": "Matilda", "price": 27}),
            _record("b", {"name": "Matilda the Musical", "price": 27}),
            _record("c", {"name": "Wicked", "price": 89}),
        ]
        return PairFeatureExtractor(records)

    def test_lookup_by_id(self):
        extractor = self._extractor()
        assert extractor.record("a").get("name") == "Matilda"

    def test_features_for_pairs_matrix_shape(self):
        extractor = self._extractor()
        X = extractor.features_for_pairs([("a", "b"), ("a", "c")])
        assert X.shape == (2, len(FEATURE_NAMES))

    def test_empty_pairs(self):
        extractor = self._extractor()
        assert extractor.features_for_pairs([]).shape == (0, len(FEATURE_NAMES))

    def test_duplicate_ids_rejected(self):
        records = [_record("a", {}), _record("a", {})]
        with pytest.raises(ValueError):
            PairFeatureExtractor(records)

    def test_feature_names_exposed(self):
        assert self._extractor().feature_names == FEATURE_NAMES
