"""Tests for repro.sql planning and execution (catalog, planner, executor)."""

import pytest

from repro.entity.consolidation import ConsolidatedEntity
from repro.errors import SqlError
from repro.obs import TelemetryHub
from repro.query.snapshot import EntitySnapshot
from repro.sql import SqlContext, SqlMetadata, run_sql
from repro.sql.ordering import group_key, sort_key


def _entity(entity_id, members, sources, **attributes):
    return ConsolidatedEntity(
        entity_id=entity_id,
        member_record_ids=[f"{entity_id}-r{i}" for i in range(members)],
        source_ids=list(sources),
        attributes=attributes,
    )


SHOWS = (
    _entity("e1", 2, ["s1", "s2"],
            show_name="Matilda", year=1996, rating=6.9, genre="family"),
    _entity("e2", 1, ["s1"],
            show_name="Inception", year=2010, rating=8.8, genre="scifi"),
    _entity("e3", 1, ["s2"],
            show_name="Arrival", year=2016, rating=7.9, genre="scifi"),
    _entity("e4", 1, ["s1"],
            show_name="Heat", year=1995, rating=8.3, genre=None),
    _entity("e5", 2, ["s2", "s3"],
            show_name="Solaris", year=None, rating=None, genre="scifi"),
)

METADATA = SqlMetadata(
    sources=(
        {"source_id": "s1", "kind": "structured", "description": "feed one",
         "collection": "c1", "records_loaded": 10, "attribute_count": 3,
         "sequence": 1},
        {"source_id": "s2", "kind": "structured", "description": "feed two",
         "collection": "c2", "records_loaded": 4, "attribute_count": 2,
         "sequence": 2},
    ),
    aliases=(("title", "show_name"),),
)


@pytest.fixture()
def context():
    snapshot = EntitySnapshot(
        entities=SHOWS, watermark=3, schema_watermark=None, version=7
    )
    return SqlContext(snapshot, metadata=METADATA)


class TestScansAndPushdown:
    def test_equality_pushdown(self, context):
        result = run_sql(
            context, "SELECT show_name FROM entities WHERE year = 2010"
        )
        assert result.rows == (("Inception",),)
        assert result.stats.pushdowns == 1
        assert result.stats.rows_scanned == 1
        assert result.stats.rows_pruned == 4

    def test_range_pushdown(self, context):
        result = run_sql(
            context,
            "SELECT show_name FROM entities WHERE year >= 2010 "
            "ORDER BY show_name",
        )
        assert result.rows == (("Arrival",), ("Inception",))
        assert result.stats.pushdowns == 1
        assert result.stats.rows_pruned == 3

    def test_flipped_range_literal_first(self, context):
        result = run_sql(
            context, "SELECT show_name FROM entities WHERE 2010 <= year"
        )
        assert {row[0] for row in result.rows} == {"Arrival", "Inception"}
        assert result.stats.pushdowns == 1

    def test_conjunct_intersection(self, context):
        result = run_sql(
            context,
            "SELECT show_name FROM entities "
            "WHERE genre = 'scifi' AND year > 2000",
        )
        assert {row[0] for row in result.rows} == {"Arrival", "Inception"}
        assert result.stats.pushdowns == 2

    def test_residual_predicate_scans_everything(self, context):
        result = run_sql(
            context, "SELECT show_name FROM entities WHERE show_name != 'Heat'"
        )
        assert len(result.rows) == 4
        assert result.stats.pushdowns == 0
        assert result.stats.rows_scanned == 5
        assert result.stats.rows_pruned == 0

    def test_equals_null_matches_nothing(self, context):
        result = run_sql(
            context, "SELECT show_name FROM entities WHERE year = NULL"
        )
        assert result.rows == ()
        assert result.stats.rows_pruned == 5

    def test_is_null_is_the_null_test(self, context):
        result = run_sql(
            context, "SELECT show_name FROM entities WHERE year IS NULL"
        )
        assert result.rows == (("Solaris",),)
        result = run_sql(
            context,
            "SELECT COUNT(*) FROM entities WHERE rating IS NOT NULL",
        )
        assert result.rows == ((4,),)

    def test_cross_class_range_never_matches(self, context):
        # show_name holds strings; a numeric range probe must match nothing
        result = run_sql(
            context, "SELECT show_name FROM entities WHERE show_name > 1"
        )
        assert result.rows == ()

    def test_indexed_path_matches_scan_path(self, context):
        pushed = run_sql(
            context,
            "SELECT show_name FROM entities WHERE year >= 1996 "
            "ORDER BY show_name",
        )
        # OR-wrapping defeats conjunct classification, forcing the same
        # comparison through the residual (full scan) evaluator
        scanned = run_sql(
            context,
            "SELECT show_name FROM entities WHERE year >= 1996 OR FALSE "
            "ORDER BY show_name",
        )
        assert pushed.stats.pushdowns == 1
        assert scanned.stats.pushdowns == 0
        assert pushed.rows == scanned.rows

    def test_not_comparison_is_not_range_complement(self, context):
        # two-valued logic: year IS NULL fails `year < 1996`, so NOT
        # re-admits it — unlike `year >= 1996`
        negated = run_sql(
            context, "SELECT show_name FROM entities WHERE NOT year < 1996"
        )
        assert {row[0] for row in negated.rows} == {
            "Matilda", "Inception", "Arrival", "Solaris"
        }

    def test_in_list_predicate(self, context):
        result = run_sql(
            context,
            "SELECT show_name FROM entities WHERE year IN (1995, 2016) "
            "ORDER BY show_name",
        )
        assert result.rows == (("Arrival",), ("Heat",))

    def test_boolean_connectives(self, context):
        result = run_sql(
            context,
            "SELECT show_name FROM entities "
            "WHERE year = 1995 OR (genre = 'scifi' AND rating > 8.0) "
            "ORDER BY show_name",
        )
        assert result.rows == (("Heat",), ("Inception",))


class TestJoins:
    def test_join_explodes_cluster_members(self, context):
        result = run_sql(
            context,
            "SELECT e.show_name, c.record_id FROM entities e "
            "JOIN clusters c ON e.entity_id = c.entity_id "
            "WHERE e.show_name = 'Matilda' ORDER BY record_id",
        )
        assert result.columns == ("show_name", "record_id")
        assert result.rows == (("Matilda", "e1-r0"), ("Matilda", "e1-r1"))

    def test_join_pushdown_on_joined_table(self, context):
        result = run_sql(
            context,
            "SELECT e.show_name FROM entities e "
            "JOIN clusters c ON e.entity_id = c.entity_id "
            "WHERE c.cluster_size = 2 AND c.member_index = 0 "
            "ORDER BY show_name",
        )
        assert result.rows == (("Matilda",), ("Solaris",))
        assert result.stats.pushdowns == 2

    def test_rows_joined_counts_post_join_rows(self, context):
        result = run_sql(
            context,
            "SELECT e.entity_id FROM entities e "
            "JOIN clusters c ON e.entity_id = c.entity_id",
        )
        # 2 + 1 + 1 + 1 + 2 member records
        assert result.stats.rows_joined == 7

    def test_duplicate_output_names_get_qualified(self, context):
        result = run_sql(
            context,
            "SELECT e.entity_id, c.entity_id FROM entities e "
            "JOIN clusters c ON e.entity_id = c.entity_id LIMIT 1",
        )
        assert result.columns == ("e.entity_id", "c.entity_id")


class TestAggregates:
    def test_group_by_with_count(self, context):
        result = run_sql(
            context,
            "SELECT genre, COUNT(*) AS n FROM entities "
            "GROUP BY genre ORDER BY n DESC, genre",
        )
        assert result.columns == ("genre", "n")
        assert result.rows == (("scifi", 3), ("family", 1), (None, 1))

    def test_global_aggregates(self, context):
        result = run_sql(
            context,
            "SELECT COUNT(*) AS c, COUNT(year) AS cy, SUM(year) AS s, "
            "AVG(rating) AS a, MIN(rating) AS lo, MAX(show_name) AS hi "
            "FROM entities",
        )
        (row,) = result.rows
        assert row[:3] == (5, 4, 8017)
        assert row[3] == pytest.approx(7.975)
        assert row[4:] == (6.9, "Solaris")

    def test_count_distinct(self, context):
        result = run_sql(
            context, "SELECT COUNT(DISTINCT genre) FROM entities"
        )
        assert result.rows == ((2,),)

    def test_empty_input_global_aggregate_yields_one_row(self, context):
        result = run_sql(
            context,
            "SELECT COUNT(*) AS n, MIN(year) AS lo FROM entities "
            "WHERE year = 1811",
        )
        assert result.rows == ((0, None),)

    def test_sum_over_strings_raises(self, context):
        with pytest.raises(SqlError, match="numeric"):
            run_sql(context, "SELECT SUM(show_name) FROM entities")

    def test_ungrouped_column_rejected(self, context):
        with pytest.raises(SqlError, match="GROUP BY"):
            run_sql(
                context,
                "SELECT show_name, COUNT(*) FROM entities GROUP BY genre",
            )


class TestDistinctOrderLimit:
    def test_distinct_output_rows(self, context):
        result = run_sql(
            context, "SELECT DISTINCT genre FROM entities ORDER BY genre"
        )
        assert result.rows == (("family",), ("scifi",), (None,))

    def test_order_by_input_column_not_in_output(self, context):
        # NULLs sort last ascending, hence first descending
        result = run_sql(
            context,
            "SELECT show_name FROM entities ORDER BY year DESC LIMIT 3",
        )
        assert result.rows == (("Solaris",), ("Arrival",), ("Inception",))

    def test_multi_key_order_nulls_last_ascending(self, context):
        result = run_sql(
            context,
            "SELECT genre, show_name FROM entities "
            "ORDER BY genre, show_name DESC",
        )
        assert result.rows == (
            ("family", "Matilda"),
            ("scifi", "Solaris"),
            ("scifi", "Inception"),
            ("scifi", "Arrival"),
            (None, "Heat"),
        )

    def test_limit_zero(self, context):
        result = run_sql(context, "SELECT show_name FROM entities LIMIT 0")
        assert result.rows == ()

    def test_distinct_with_input_order_rejected(self, context):
        with pytest.raises(SqlError, match="output column"):
            run_sql(
                context,
                "SELECT DISTINCT genre FROM entities ORDER BY show_name",
            )


class TestAliasResolution:
    def test_mapped_attribute_resolves_to_global_column(self, context):
        result = run_sql(
            context, "SELECT title FROM entities WHERE title = 'Heat'"
        )
        # the output keeps the requested spelling; values come from the
        # curated column the integrator mapped it onto
        assert result.columns == ("title",)
        assert result.rows == (("Heat",),)

    def test_alias_pushdown_probes_physical_index(self, context):
        result = run_sql(
            context, "SELECT show_name FROM entities WHERE title = 'Matilda'"
        )
        assert result.rows == (("Matilda",),)
        assert result.stats.pushdowns == 1


class TestVirtualTables:
    def test_curation_status_pins_snapshot_identity(self, context):
        result = run_sql(
            context,
            "SELECT version, watermark, entity_count, source_count "
            "FROM curation_status",
        )
        assert result.rows == ((7, 3, 5, 2),)

    def test_sources_table_from_metadata(self, context):
        result = run_sql(
            context,
            "SELECT source_id FROM sources WHERE records_loaded >= 10",
        )
        assert result.rows == (("s1",),)

    def test_select_star_column_order(self, context):
        result = run_sql(context, "SELECT * FROM entities LIMIT 1")
        assert result.columns == (
            "entity_id", "size", "source_count", "sources",
            "genre", "rating", "show_name", "year",
        )


class TestExplain:
    def test_explain_is_stable_text(self, context):
        result = run_sql(
            context,
            "EXPLAIN SELECT show_name FROM entities WHERE year = 2010 "
            "ORDER BY show_name LIMIT 3",
        )
        assert result.columns == ("plan",)
        assert result.explain == (
            "Limit[3]",
            "  Sort[show_name ASC]",
            "    Project[show_name]",
            "      Scan[entities; eq: year = 2010]",
        )
        assert result.canonical.startswith("EXPLAIN SELECT")

    def test_explain_join_plan(self, context):
        result = run_sql(
            context,
            "EXPLAIN SELECT e.show_name FROM entities e "
            "JOIN clusters c ON e.entity_id = c.entity_id "
            "WHERE c.cluster_size > 1",
        )
        assert result.explain == (
            "Project[show_name]",
            "  Join[e.entity_id = c.entity_id]",
            "    Scan[clusters AS c; range: cluster_size > 1]",
            "    Scan[entities AS e]",
        )

    def test_explain_does_not_execute(self, context):
        result = run_sql(
            context, "EXPLAIN SELECT * FROM entities WHERE year = 2010"
        )
        assert result.stats.rows_scanned == 0
        assert result.stats.pushdowns == 0


class TestErrorsAndBinding:
    def test_unknown_table(self, context):
        with pytest.raises(SqlError, match="unknown table"):
            run_sql(context, "SELECT * FROM nope")

    def test_unknown_column(self, context):
        with pytest.raises(SqlError, match="unknown column"):
            run_sql(context, "SELECT nope FROM entities")

    def test_ambiguous_unqualified_column(self, context):
        with pytest.raises(SqlError, match="ambiguous"):
            run_sql(
                context,
                "SELECT entity_id FROM entities e "
                "JOIN clusters c ON e.entity_id = c.entity_id",
            )

    def test_order_by_aggregate_must_be_selected(self, context):
        with pytest.raises(SqlError, match="must appear in SELECT"):
            run_sql(
                context,
                "SELECT genre FROM entities GROUP BY genre ORDER BY COUNT(*)",
            )

    def test_join_must_relate_to_earlier_table(self, context):
        with pytest.raises(SqlError, match="earlier"):
            run_sql(
                context,
                "SELECT * FROM entities e "
                "JOIN clusters c ON c.entity_id = c.record_id",
            )


class TestObservability:
    def test_counters_recorded_on_the_hub(self, context):
        hub = TelemetryHub(tracing=False)
        run_sql(
            context, "SELECT show_name FROM entities WHERE year = 2010",
            hub=hub,
        )
        run_sql(context, "SELECT COUNT(*) FROM entities", hub=hub)
        registry = hub.registry
        assert registry.counter("sql_queries_total").value == 2
        assert registry.counter("sql_pushdown_conjuncts_total").value == 1
        assert registry.counter("sql_rows_scanned_total").value == 6
        assert registry.counter("sql_rows_pruned_total").value == 4

    def test_result_payload_shape(self, context):
        payload = run_sql(
            context,
            "SELECT show_name FROM entities WHERE year = 2010",
            hub=TelemetryHub(tracing=False),
        ).as_payload()
        assert payload == {
            "columns": ["show_name"],
            "rows": [["Inception"]],
            "stats": {
                "pushdowns": 1,
                "rows_scanned": 1,
                "rows_pruned": 4,
                "rows_joined": 1,
            },
            "explain": None,
            "canonical": "SELECT show_name FROM entities WHERE year = 2010",
        }


class TestOrderingPrimitives:
    def test_sort_key_total_order(self):
        values = ["b", None, 2, "a", 1.5, True]
        values.sort(key=sort_key)
        assert values == [True, 1.5, 2, "a", "b", None]

    def test_group_key_handles_unhashables(self):
        assert group_key([1, 2]) == group_key([1, 2])
        assert group_key([1, 2]) != group_key([2, 1])
        assert group_key(1) == 1
