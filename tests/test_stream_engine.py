"""Unit tests for the streaming curation components.

Covers the changelog (sequence numbers, watermarks, pruning), micro-batch
scheduling (bounds, coalescing, flush policy), the incremental blocking and
clustering structures against their batch counterparts, the pipeline's
streaming stage, and the facade's lifecycle/invalidation behavior.
"""

import random

import pytest

from repro import DataTamer, StreamConfig, TamerConfig
from repro.config import EntityConfig
from repro.core.pipeline import CurationPipeline
from repro.entity.blocking import BlockIndex, TokenBlocker
from repro.entity.clustering import IncrementalClusters, UnionFind
from repro.entity.record import Record
from repro.errors import ConfigError, TamerError
from repro.stream import (
    Changelog,
    DeltaBatch,
    MicroBatchScheduler,
    coalesce_events,
    record_from_document,
    tail_collection,
)
from repro.stream.changelog import ChangeEvent
from repro.workloads import DedupCorpusGenerator


@pytest.fixture
def collection(document_store):
    return document_store.create_collection("events")


# -- changelog ------------------------------------------------------------


def test_changelog_sequence_is_monotonic_and_watermarked(collection):
    log, _ = tail_collection(collection)
    assert log.watermark == 0
    a = collection.insert({"x": 1})
    collection.update(a, {"x": 2})
    collection.delete(a)
    events = log.read_since(0)
    assert [e.seq for e in events] == [1, 2, 3]
    assert [e.op for e in events] == ["insert", "update", "delete"]
    assert log.watermark == 3
    assert events[0].document["x"] == 1
    assert events[1].document["x"] == 2
    assert events[2].document is None


def test_changelog_post_images_are_copies(collection):
    log, _ = tail_collection(collection)
    doc_id = collection.insert({"x": 1})
    log.read_since(0)[0].document["x"] = 99
    assert collection.get(doc_id)["x"] == 1


def test_changelog_read_since_and_prune(collection):
    log, _ = tail_collection(collection)
    for i in range(5):
        collection.insert({"i": i})
    assert log.pending(2) == 3
    assert [e.seq for e in log.read_since(3)] == [4, 5]
    assert [e.seq for e in log.read_since(0, limit=2)] == [1, 2]
    assert log.prune(3) == 3
    assert log.oldest_seq == 4
    # reading at/above the prune horizon is fine, below it is data loss
    assert [e.seq for e in log.read_since(3)] == [4, 5]
    with pytest.raises(TamerError):
        log.read_since(1)


def test_changelog_rejects_unknown_op():
    with pytest.raises(TamerError):
        Changelog().record("merge", "x", {})


def test_unsubscribe_detaches_listener(collection):
    log, unsubscribe = tail_collection(collection)
    collection.insert({"x": 1})
    unsubscribe()
    collection.insert({"x": 2})
    assert len(log) == 1


# -- coalescing -----------------------------------------------------------


def _ev(seq, op, doc_id, doc=None):
    return ChangeEvent(seq=seq, op=op, doc_id=doc_id, document=doc)


def test_coalesce_insert_then_updates_is_one_insert():
    events = [
        _ev(1, "insert", "a", {"_id": "a", "v": 1}),
        _ev(2, "update", "a", {"_id": "a", "v": 2}),
        _ev(3, "update", "a", {"_id": "a", "v": 3}),
    ]
    (net,) = coalesce_events(events)
    assert net.op == "insert"
    assert net.document["v"] == 3
    assert net.seq == 1  # position determined by the insert


def test_coalesce_trailing_delete_wins():
    events = [
        _ev(1, "insert", "a", {"_id": "a"}),
        _ev(2, "delete", "a", None),
    ]
    (net,) = coalesce_events(events)
    assert net.op == "delete"


def test_coalesce_delete_reinsert_keeps_reinsert_position():
    events = [
        _ev(1, "delete", "a", None),
        _ev(2, "insert", "b", {"_id": "b"}),
        _ev(3, "insert", "a", {"_id": "a", "v": 9}),
        _ev(4, "update", "b", {"_id": "b", "v": 1}),
    ]
    net = coalesce_events(events)
    # one event per doc, ordered by position-determining seq: b's insert
    # (seq 2) precedes a's re-insert (seq 3)
    assert [(e.doc_id, e.op, e.seq) for e in net] == [
        ("b", "insert", 2),
        ("a", "insert", 3),
    ]


def test_coalesce_update_only_keeps_last_content():
    events = [
        _ev(4, "update", "a", {"_id": "a", "v": 1}),
        _ev(7, "update", "a", {"_id": "a", "v": 2}),
    ]
    (net,) = coalesce_events(events)
    assert (net.op, net.seq, net.document["v"]) == ("update", 7, 2)


# -- scheduler ------------------------------------------------------------


def test_scheduler_bounds_batches_and_advances_watermark(collection):
    log, _ = tail_collection(collection)
    scheduler = MicroBatchScheduler(log, StreamConfig(max_batch_size=4))
    for i in range(10):
        collection.insert({"i": i})
    batches = list(scheduler.drain())
    assert [b.raw_event_count for b in batches] == [4, 4, 2]
    assert [b.high_watermark for b in batches] == [4, 8, 10]
    assert scheduler.watermark == 10
    assert scheduler.pending() == 0
    assert len(log) == 0  # drained prefix pruned
    assert scheduler.next_batch() is None


def test_scheduler_coalesces_within_a_batch(collection):
    log, _ = tail_collection(collection)
    scheduler = MicroBatchScheduler(log, StreamConfig(max_batch_size=64))
    doc_id = collection.insert({"v": 1})
    collection.update(doc_id, {"v": 2})
    collection.update(doc_id, {"v": 3})
    batch = scheduler.next_batch()
    assert isinstance(batch, DeltaBatch)
    assert len(batch) == 1 and batch.raw_event_count == 3
    assert batch.events[0].op == "insert"
    assert batch.events[0].document["v"] == 3


def test_scheduler_due_honors_flush_interval(collection):
    log, _ = tail_collection(collection)
    now = [0.0]
    scheduler = MicroBatchScheduler(
        log,
        StreamConfig(max_batch_size=100, flush_interval=5.0),
        clock=lambda: now[0],
    )
    assert not scheduler.due()  # nothing pending
    collection.insert({"v": 1})
    assert not scheduler.due()  # pending but young
    now[0] = 6.0
    assert scheduler.due()  # pending and old
    scheduler.commit(scheduler.next_batch())
    assert not scheduler.due()
    # age is measured from first observation of the NEW pending events,
    # not from the last flush
    now[0] = 100.0
    collection.insert({"v": 2})
    assert not scheduler.due()
    now[0] = 104.9
    assert not scheduler.due()
    now[0] = 105.0
    assert scheduler.due()


def test_scheduler_due_on_full_batch_regardless_of_age(collection):
    log, _ = tail_collection(collection)
    scheduler = MicroBatchScheduler(
        log,
        StreamConfig(max_batch_size=2, flush_interval=1e9),
        clock=lambda: 0.0,
    )
    collection.insert({"v": 1})
    assert not scheduler.due()
    collection.insert({"v": 2})
    assert scheduler.due()


# -- incremental blocking --------------------------------------------------


def _records(rng, n, start=0):
    words = ("alpha", "beta", "gamma", "delta", "omega", "sigma")
    out = []
    for i in range(start, start + n):
        out.append(
            Record.from_dict(
                f"r{i}",
                "src",
                {"show_name": " ".join(rng.sample(words, rng.randint(1, 3)))},
            )
        )
    return out


@pytest.mark.parametrize("seed", (0, 1, 2, 3))
def test_block_index_tracks_batch_blocker_exactly(seed):
    rng = random.Random(seed)
    blocker = TokenBlocker(key_attribute="show_name", max_block_size=6)
    index = BlockIndex(TokenBlocker(key_attribute="show_name", max_block_size=6))
    population = {}
    next_id = [0]

    def batch_pairs():
        return blocker.block(list(population.values())).pairs

    for _ in range(60):
        op = rng.random()
        if op < 0.5 or len(population) < 4:
            (record,) = _records(rng, 1, start=next_id[0])
            next_id[0] += 1
            population[record.record_id] = record
            index.apply([record], [])
        elif op < 0.75:
            record_id = rng.choice(list(population))
            (replacement,) = _records(rng, 1, start=next_id[0])
            replacement = Record.from_dict(
                record_id, "src", replacement.as_dict()
            )
            population[record_id] = replacement
            index.apply([replacement], [])
        else:
            record_id = rng.choice(list(population))
            del population[record_id]
            index.apply([], [record_id])
        assert index.candidate_pairs == batch_pairs()


def test_block_index_diff_reports_added_and_removed():
    blocker = TokenBlocker(key_attribute="show_name")
    index = BlockIndex(blocker)
    a = Record.from_dict("a", "s", {"show_name": "wicked"})
    b = Record.from_dict("b", "s", {"show_name": "wicked"})
    added, removed = index.apply([a, b], [])
    assert added == {("a", "b")} and removed == set()
    added, removed = index.apply(
        [Record.from_dict("b", "s", {"show_name": "matilda"})], []
    )
    assert added == set() and removed == {("a", "b")}


def test_block_index_requires_block_based_blocker():
    from repro.entity.blocking import SortedNeighborhoodBlocker
    from repro.errors import EntityResolutionError

    assert not BlockIndex.supports(SortedNeighborhoodBlocker())
    assert not BlockIndex.supports(None)
    with pytest.raises(EntityResolutionError):
        BlockIndex(SortedNeighborhoodBlocker())


def test_block_index_oversized_block_contributes_nothing():
    index = BlockIndex(TokenBlocker(key_attribute="show_name", max_block_size=3))
    records = [
        Record.from_dict(f"r{i}", "s", {"show_name": "wicked"}) for i in range(3)
    ]
    index.apply(records, [])
    assert len(index.candidate_pairs) == 3
    # the fourth member pushes the block over max_block_size: all pairs go
    extra = Record.from_dict("r3", "s", {"show_name": "wicked"})
    added, removed = index.apply([extra], [])
    assert index.candidate_pairs == set()
    assert len(removed) == 3 and added == set()


# -- incremental clustering ------------------------------------------------


def _reference_components(nodes, edges):
    uf = UnionFind(nodes)
    for a, b in edges:
        uf.union(a, b)
    return sorted(tuple(sorted(group)) for group in uf.groups())


@pytest.mark.parametrize("seed", (0, 1, 2, 3))
def test_incremental_clusters_match_union_find(seed):
    rng = random.Random(seed)
    clusters = IncrementalClusters()
    nodes = set()
    edges = set()
    next_node = [0]
    for _ in range(120):
        op = rng.random()
        if op < 0.3 or len(nodes) < 4:
            node = f"n{next_node[0]}"
            next_node[0] += 1
            nodes.add(node)
            clusters.add_node(node)
        elif op < 0.6:
            a, b = rng.sample(sorted(nodes), 2)
            edges.add((min(a, b), max(a, b)))
            clusters.add_edge(a, b)
        elif op < 0.8 and edges:
            edge = rng.choice(sorted(edges))
            edges.discard(edge)
            clusters.remove_edge(*edge)
        else:
            node = rng.choice(sorted(nodes))
            nodes.discard(node)
            edges = {e for e in edges if node not in e}
            clusters.remove_node(node)
        got = sorted(tuple(sorted(c)) for c in clusters.components())
        assert got == _reference_components(nodes, edges)
        assert len(clusters) == len(nodes)


def test_incremental_clusters_split_on_edge_removal():
    clusters = IncrementalClusters()
    clusters.add_edge("a", "b")
    clusters.add_edge("b", "c")
    assert clusters.component_of("a") == {"a", "b", "c"}
    clusters.remove_edge("b", "c")
    assert clusters.component_of("a") == {"a", "b"}
    assert clusters.component_of("c") == {"c"}


def test_incremental_clusters_node_removal_splits_bridge():
    clusters = IncrementalClusters()
    clusters.add_edge("a", "b")
    clusters.add_edge("b", "c")
    clusters.remove_node("b")
    assert sorted(map(sorted, clusters.components())) == [["a"], ["c"]]
    assert clusters.edge_count == 0


# -- record conversion ----------------------------------------------------


def test_record_from_document_uses_stable_id():
    record = record_from_document({"_id": "curated:7", "show_name": "wicked"})
    assert record.record_id == "curated:7"
    assert record.source_id == "curated"
    assert record.as_dict() == {"show_name": "wicked"}


def test_record_from_document_requires_id():
    from repro.errors import EntityResolutionError

    with pytest.raises(EntityResolutionError):
        record_from_document({"show_name": "wicked"})


# -- streaming pipeline stage ----------------------------------------------


def test_streaming_stage_applies_batches_in_order():
    pipeline = CurationPipeline()
    seen = []
    pipeline.add_streaming_stage(
        "drain",
        source=lambda ctx: [[1, 2], [3], [4, 5]],
        apply=lambda ctx, batch: seen.extend(batch) or sum(batch),
        finalize=lambda ctx, outputs: sum(outputs),
    )
    context = pipeline.run()
    assert seen == [1, 2, 3, 4, 5]
    assert context["drain"] == 15
    (result,) = pipeline.results
    assert result.ok and len(result.shard_seconds) == 3


def test_streaming_stage_without_finalize_returns_outputs():
    pipeline = CurationPipeline()
    pipeline.add_streaming_stage(
        "drain", source=lambda ctx: [[1], [2]], apply=lambda ctx, b: b[0] * 10
    )
    context = pipeline.run()
    assert context["drain"] == [10, 20]


def test_streaming_stage_drains_scheduler(document_store):
    collection = document_store.create_collection("stream")
    log, _ = tail_collection(collection)
    scheduler = MicroBatchScheduler(log, StreamConfig(max_batch_size=2))
    for i in range(5):
        collection.insert({"i": i})
    pipeline = CurationPipeline()
    pipeline.add_streaming_stage(
        "apply_deltas",
        source=lambda ctx: scheduler.drain(),
        apply=lambda ctx, batch: batch.raw_event_count,
        finalize=lambda ctx, outputs: sum(outputs),
    )
    context = pipeline.run()
    assert context["apply_deltas"] == 5
    assert scheduler.pending() == 0


# -- facade lifecycle ------------------------------------------------------


def _streaming_tamer():
    config = TamerConfig.small()
    config.entity = EntityConfig(blocking_strategy="token")
    tamer = DataTamer(config.validate())
    corpus = DedupCorpusGenerator(seed=13).generate(
        n_entities=40, variants_per_entity=2
    )
    tamer.train_dedup_model(corpus.pairs)
    for record in corpus.records[:20]:
        tamer.curated_collection.insert(dict(record.as_dict(), _source="s"))
    return tamer


def test_start_stream_requires_model():
    tamer = DataTamer(TamerConfig.small())
    with pytest.raises(TamerError):
        tamer.start_stream()


def test_facade_requires_started_stream():
    tamer = _streaming_tamer()
    with pytest.raises(TamerError):
        tamer.apply_delta()
    with pytest.raises(TamerError):
        tamer.refresh()


def test_stream_facade_round_trip():
    tamer = _streaming_tamer()
    stream = tamer.start_stream()
    assert tamer.stream is stream
    baseline = tamer.refresh()
    assert stream.pending_events == 0
    tamer.curated_collection.insert({"name": "brand new show", "_source": "s"})
    assert stream.pending_events == 1
    report = tamer.apply_delta()
    assert report.raw_events == 1 and report.batches == 1
    refreshed = tamer.refresh()
    assert len(refreshed) == len(baseline) + 1
    assert refreshed == stream.batch_reference()


def test_stream_close_detaches_and_blocks_use():
    tamer = _streaming_tamer()
    stream = tamer.start_stream()
    tamer.stop_stream()
    assert stream.closed and tamer.stream is None
    # writes to the collection no longer reach the detached changelog
    tamer.curated_collection.insert({"name": "x", "_source": "s"})
    assert len(stream.changelog) == 0
    with pytest.raises(TamerError):
        stream.refresh()
    with pytest.raises(TamerError):
        tamer.apply_delta()


def test_restarting_stream_replaces_previous():
    tamer = _streaming_tamer()
    first = tamer.start_stream()
    second = tamer.start_stream()
    assert first.closed and not second.closed
    tamer.curated_collection.insert({"name": "y", "_source": "s"})
    assert second.pending_events == 1


def test_query_engine_watermark_invalidation():
    tamer = _streaming_tamer()
    stream = tamer.start_stream()
    engine = stream.query_engine()
    assert engine.watermark == stream.watermark
    assert stream.query_engine() is engine  # no writes: cached
    tamer.curated_collection.insert({"name": "fresh arrival", "_source": "s"})
    assert engine.is_stale(stream.changelog.watermark)
    refreshed = stream.query_engine()
    assert refreshed is engine  # swapped in place
    assert not engine.is_stale(stream.watermark)
    assert engine.watermark == stream.watermark
    assert len(engine.search("fresh arrival")) == 1


def test_poll_respects_flush_policy():
    config = TamerConfig.small()
    config.stream = StreamConfig(max_batch_size=3, flush_interval=1e9)
    tamer = DataTamer(config.validate())
    corpus = DedupCorpusGenerator(seed=13).generate(
        n_entities=40, variants_per_entity=2
    )
    tamer.train_dedup_model(corpus.pairs)
    stream = tamer.start_stream()
    tamer.curated_collection.insert({"name": "a", "_source": "s"})
    assert stream.poll() is None  # batch not full, interval huge
    tamer.curated_collection.insert({"name": "b", "_source": "s"})
    tamer.curated_collection.insert({"name": "c", "_source": "s"})
    report = stream.poll()
    assert report is not None and report.raw_events == 3


def test_stream_config_validation():
    with pytest.raises(ConfigError):
        StreamConfig(max_batch_size=0).validate()
    with pytest.raises(ConfigError):
        StreamConfig(flush_interval=-1).validate()
    with pytest.raises(ConfigError):
        StreamConfig(rebuild_threshold=-1).validate()
    StreamConfig().validate()


# -- review regressions ----------------------------------------------------


def test_changelog_stale_read_raises_even_when_fully_pruned(collection):
    """A consumer behind the prune horizon must never get a silent empty
    read — even when pruning emptied the log entirely."""
    log, _ = tail_collection(collection)
    for i in range(5):
        collection.insert({"i": i})
    log.prune(5)
    assert len(log) == 0
    with pytest.raises(TamerError):
        log.read_since(3)
    assert log.read_since(5) == []  # caught-up consumer is fine


def test_failed_bootstrap_does_not_leak_listener(collection):
    from repro.stream import StreamingTamer

    config = TamerConfig.small()
    corpus = DedupCorpusGenerator(seed=13).generate(
        n_entities=40, variants_per_entity=2
    )
    tamer = DataTamer(config)
    tamer.train_dedup_model(corpus.pairs)
    collection.insert({"_id": "", "name": "bad"})  # empty _id: bootstrap dies
    from repro.errors import EntityResolutionError

    with pytest.raises(EntityResolutionError):
        StreamingTamer(collection, tamer.dedup_model)
    before = len(collection._listeners)
    collection.insert({"name": "after"})
    assert len(collection._listeners) == before == 0


def test_upsert_replacement_accounting_matches_update(document_store):
    a = document_store.create_collection("a")
    b = document_store.create_collection("b")
    a.insert({"_id": "x", "v": 0})
    b.insert({"_id": "x", "v": 0})
    for i in range(50):
        a.upsert("x", {"v": i})
        b.update("x", {"v": i})
    assert a.stats().total_data_size == b.stats().total_data_size
    assert a.stats().num_extents == b.stats().num_extents


def test_uncommitted_batch_is_redelivered(collection):
    """A consumer whose apply fails must not lose the batch's events:
    next_batch is a peek, and only commit consumes."""
    log, _ = tail_collection(collection)
    scheduler = MicroBatchScheduler(log, StreamConfig(max_batch_size=10))
    for i in range(3):
        collection.insert({"i": i})
    first = scheduler.next_batch()
    again = scheduler.next_batch()  # not committed: same events redelivered
    assert [e.seq for e in again.events] == [e.seq for e in first.events]
    assert scheduler.pending() == 3
    scheduler.commit(first)
    assert scheduler.pending() == 0
    assert scheduler.next_batch() is None


def test_failed_apply_leaves_events_pending(collection):
    """drain() commits a batch only after the consumer finished it."""
    log, _ = tail_collection(collection)
    scheduler = MicroBatchScheduler(log, StreamConfig(max_batch_size=10))
    for i in range(2):
        collection.insert({"i": i})
    with pytest.raises(RuntimeError):
        for batch in scheduler.drain():
            raise RuntimeError("apply blew up")
    assert scheduler.pending() == 2  # nothing was lost
    assert sum(b.raw_event_count for b in scheduler.drain()) == 2
    assert scheduler.pending() == 0


def test_incremental_clusters_ignore_self_loops():
    clusters = IncrementalClusters()
    clusters.add_edge("x", "x")
    assert clusters.edge_count == 0
    clusters.remove_node("x")  # must not raise
    assert len(clusters) == 0


# -- operator host ----------------------------------------------------------


def test_operator_stage_drains_the_chain():
    """CurationPipeline.add_operator_stage pushes every micro-batch through
    the stream's whole operator chain, in order, with per-batch timings."""
    config = TamerConfig.small()
    config.stream = StreamConfig(max_batch_size=2, schema_integration=True)
    tamer = DataTamer(config.validate())
    corpus = DedupCorpusGenerator(seed=13).generate(
        n_entities=40, variants_per_entity=2
    )
    tamer.train_dedup_model(corpus.pairs)
    stream = tamer.start_stream()
    for record in corpus.records[:5]:
        tamer.curated_collection.insert(dict(record.as_dict(), _source="s"))

    pipeline = CurationPipeline()
    pipeline.add_operator_stage("drain", stream)
    context = pipeline.run()
    reports = context["drain"]
    # 5 events in batches of 2 -> 3 batches x 2 operators
    assert [r.operator for r in reports] == ["entity", "schema"] * 3
    assert all(r.watermark > 0 for r in reports)
    (result,) = pipeline.results
    assert result.ok and len(result.shard_seconds) == 3
    assert stream.pending_events == 0
    assert stream.refresh() == stream.batch_reference()
    tamer.close()


def test_host_exposes_operator_chain_and_watermarks():
    config = TamerConfig.small()
    config.stream = StreamConfig(schema_integration=True)
    tamer = DataTamer(config.validate())
    corpus = DedupCorpusGenerator(seed=13).generate(
        n_entities=40, variants_per_entity=2
    )
    tamer.train_dedup_model(corpus.pairs)
    stream = tamer.start_stream()
    assert [op.name for op in stream.operators] == ["entity", "schema"]
    assert stream.curator is stream.operators[0]
    assert stream.integrator is stream.operators[1]
    assert stream.watermarks() == {"entity": 0, "schema": 0}
    # schema access on a schema-less stream raises a clear error
    plain = tamer.start_stream(schema_integration=False)
    assert plain.integrator is None
    with pytest.raises(TamerError):
        plain.global_schema()
    tamer.close()
