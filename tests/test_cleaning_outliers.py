"""Tests for repro.cleaning.outliers."""

from repro.cleaning.outliers import categorical_outliers, iqr_outliers, zscore_outliers


class TestZScoreOutliers:
    def test_flags_extreme_value(self):
        values = [10.0] * 20 + [10.5] * 20 + [9.5] * 20 + [1000.0]
        report = zscore_outliers(values, column="price")
        assert 60 in report.outlier_indices
        assert report.outlier_values == [1000.0]

    def test_no_outliers_in_uniform_data(self):
        assert zscore_outliers([5.0] * 50).count == 0

    def test_ignores_non_numeric_values(self):
        values = ["a", "b", 10.0, 11.0, 10.5, 9999.0]
        report = zscore_outliers(values, threshold=1.5)
        assert all(isinstance(values[i], float) for i in report.outlier_indices)

    def test_too_few_values_no_flagging(self):
        assert zscore_outliers([1.0, 100.0]).count == 0

    def test_money_strings_parsed(self):
        values = ["$10", "$11", "$12", "$10", "$11", "$12", "$10", "$9000"]
        report = zscore_outliers(values, threshold=2.0)
        assert report.count == 1

    def test_fraction(self):
        report = zscore_outliers([10.0] * 10)
        assert report.fraction(10) == 0.0
        assert report.fraction(0) == 0.0


class TestIqrOutliers:
    def test_flags_extreme_value(self):
        values = list(range(1, 21)) + [500]
        report = iqr_outliers(values, column="seats")
        assert report.count == 1
        assert report.outlier_values == [500]

    def test_no_outliers_in_linear_data(self):
        assert iqr_outliers(list(range(100))).count == 0

    def test_too_few_values(self):
        assert iqr_outliers([1, 2, 300]).count == 0

    def test_k_controls_sensitivity(self):
        values = list(range(20)) + [40]
        strict = iqr_outliers(values, k=0.5)
        loose = iqr_outliers(values, k=3.0)
        assert strict.count >= loose.count


class TestCategoricalOutliers:
    def test_flags_rare_category(self):
        values = ["Musical"] * 10 + ["Play"] * 8 + ["Opera"]
        report = categorical_outliers(values, column="genre")
        assert report.outlier_values == ["Opera"]

    def test_high_cardinality_column_not_flagged(self):
        values = [f"unique-{i}" for i in range(30)]
        assert categorical_outliers(values).count == 0

    def test_ignores_nulls(self):
        values = ["a"] * 10 + [None] * 5 + ["b"]
        report = categorical_outliers(values)
        assert report.outlier_values == ["b"]

    def test_too_few_values(self):
        assert categorical_outliers(["a", "b"]).count == 0

    def test_min_frequency_threshold(self):
        values = ["a"] * 10 + ["b"] * 2
        assert categorical_outliers(values, min_frequency=2).count == 0
        assert categorical_outliers(values, min_frequency=3).count == 2
