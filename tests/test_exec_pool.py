"""Lifecycle and equivalence properties of the persistent warm-worker pool.

The pool's contract has two halves:

* **lifecycle** — lazy start, idle shutdown with clean restart, crashed
  workers respawned with a full warm-state re-sync and their unfinished
  tasks re-dispatched, task errors propagated without poisoning later
  batches;
* **equivalence** — everything that runs through the pool (generic shard
  fan-outs, warm-state featurization, streaming micro-batches) is
  bit-identical to the serial path, because every task is a pure function
  and the warm kernel's features are id-order independent.

Both halves are enforced here over seeded corpora.
"""

import os
import signal
import time

import pytest

from repro.config import ExecConfig, StorageConfig, StreamConfig
from repro.entity.consolidation import EntityConsolidator
from repro.entity.dedup import DedupModel
from repro.errors import ConfigError, TamerError
from repro.exec import BatchScorer, PersistentWorkerPool, ShardedExecutor
from repro.exec.pool import warm_state_snapshot
from repro.storage.document_store import DocumentStore
from repro.stream.engine import StreamingTamer
from repro.workloads import DedupCorpusGenerator


def _square(value):
    return value * value


def _boom(_value):
    raise ValueError("intentional task failure")


def _crash_once(arg):
    """Die abruptly on first execution; succeed on the re-dispatch."""
    flag_path, value = arg
    if not os.path.exists(flag_path):
        with open(flag_path, "w", encoding="utf-8"):
            pass
        os._exit(13)
    return value * value


def pooled_executor(workers=2, batch_size=64, warm_state=True, idle_timeout=0.0):
    return ShardedExecutor(
        ExecConfig(
            parallelism=workers,
            batch_size=batch_size,
            backend="process",
            pool="persistent",
            warm_state=warm_state,
            pool_idle_timeout=idle_timeout,
        )
    )


@pytest.fixture(scope="module")
def corpus():
    return DedupCorpusGenerator(seed=29).generate(
        n_entities=40, variants_per_entity=2
    )


@pytest.fixture(scope="module")
def model(corpus):
    return DedupModel(seed=0).fit(corpus.pairs)


@pytest.fixture(scope="module")
def sequential_entities(corpus, model):
    return EntityConsolidator(model=model).consolidate(corpus.records)


class TestConfig:
    def test_pool_knobs_validate(self):
        ExecConfig(backend="process", pool="persistent").validate()
        ExecConfig(backend="process", pool="ephemeral").validate()
        with pytest.raises(ConfigError):
            ExecConfig(pool="bogus").validate()
        with pytest.raises(ConfigError):
            ExecConfig(pool_idle_timeout=-1.0).validate()

    def test_only_process_backend_uses_the_pool(self):
        assert pooled_executor().uses_persistent_pool
        thread = ShardedExecutor(
            ExecConfig(parallelism=4, backend="thread", pool="persistent")
        )
        assert not thread.uses_persistent_pool
        ephemeral = ShardedExecutor(
            ExecConfig(parallelism=4, backend="process", pool="ephemeral")
        )
        assert not ephemeral.uses_persistent_pool
        with pytest.raises(TamerError):
            ephemeral.ensure_pool()

    def test_pool_is_lazy(self):
        executor = pooled_executor()
        assert executor.pool is None  # nothing spawned until work arrives
        pool = executor.ensure_pool()
        assert not pool.running
        executor.close()


class TestRunTasks:
    def test_results_ordered_by_task_index(self):
        with PersistentWorkerPool(workers=2) as pool:
            results, timings = pool.run_tasks([(_square, n) for n in range(7)])
            assert results == [n * n for n in range(7)]
            assert len(timings) == 7
            assert all(t.compute_seconds >= 0.0 for t in timings)
            assert all(t.queue_seconds >= 0.0 for t in timings)

    def test_task_error_propagates_and_pool_recovers(self):
        with PersistentWorkerPool(workers=2) as pool:
            with pytest.raises(ValueError, match="intentional"):
                pool.run_tasks([(_square, 2), (_boom, 0), (_square, 3)])
            # the errored batch stopped the workers; the next batch restarts
            assert not pool.running
            results, _ = pool.run_tasks([(_square, n) for n in range(4)])
            assert results == [0, 1, 4, 9]

    def test_closed_pool_rejects_work(self):
        pool = PersistentWorkerPool(workers=1)
        pool.close()
        with pytest.raises(TamerError):
            pool.run_tasks([(_square, 1)])


class TestCrashRecovery:
    def test_crash_mid_shard_respawns_and_redispatches(self, tmp_path):
        flag = str(tmp_path / "crashed-once")
        with PersistentWorkerPool(workers=2) as pool:
            tasks = [(_square, n) for n in range(6)]
            tasks[3] = (_crash_once, (flag, 3))
            results, _ = pool.run_tasks(tasks)
            assert results == [0, 1, 4, 9, 16, 25]
            assert pool.respawn_count == 1

    def test_crash_between_batches_respawns(self):
        with PersistentWorkerPool(workers=2) as pool:
            first, _ = pool.run_tasks([(_square, n) for n in range(4)])
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            second, _ = pool.run_tasks([(_square, n) for n in range(4)])
            assert first == second == [0, 1, 4, 9]
            assert pool.respawn_count == 1

    def test_crashed_worker_state_resync_keeps_results_identical(
        self, corpus, model, sequential_entities
    ):
        executor = pooled_executor()
        try:
            consolidator = EntityConsolidator(model=model, executor=executor)
            assert consolidator.consolidate(corpus.records) == sequential_entities
            pool = executor.pool
            synced_before = pool.warm_record_count
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            # the respawned worker receives the full warm state in one
            # message before any task reaches it
            assert consolidator.consolidate(corpus.records) == sequential_entities
            assert pool.respawn_count == 1
            assert pool.warm_record_count == synced_before
        finally:
            executor.close()

    def test_task_that_keeps_killing_workers_gives_up(self):
        with PersistentWorkerPool(workers=1) as pool:
            with pytest.raises(TamerError, match="giving up"):
                pool.run_tasks([(_always_crash, None)])


def _always_crash(_arg):
    os._exit(13)


class TestIdleShutdown:
    def test_idle_workers_stop_and_restart_cleanly(
        self, corpus, model, sequential_entities
    ):
        executor = pooled_executor(idle_timeout=0.2)
        try:
            consolidator = EntityConsolidator(model=model, executor=executor)
            assert consolidator.consolidate(corpus.records) == sequential_entities
            pool = executor.pool
            assert pool.running
            deadline = time.monotonic() + 5.0
            while pool.running and time.monotonic() < deadline:
                time.sleep(0.05)
            assert not pool.running, "idle timer should have stopped the workers"
            # reuse restarts the workers and re-syncs the warm state
            assert consolidator.consolidate(corpus.records) == sequential_entities
            assert pool.start_count == 2
        finally:
            executor.close()

    def test_zero_timeout_disables_idle_shutdown(self):
        with PersistentWorkerPool(workers=1, idle_timeout=0.0) as pool:
            pool.run_tasks([(_square, 1)])
            time.sleep(0.15)
            assert pool.running


class TestWarmStateProtocol:
    def test_unchanged_records_are_not_reshipped(self, corpus, model):
        executor = pooled_executor()
        try:
            consolidator = EntityConsolidator(model=model, executor=executor)
            consolidator.consolidate(corpus.records)
            pool = executor.pool
            syncs = pool.sync_count
            consolidator.consolidate(corpus.records)
            assert pool.sync_count == syncs  # content unchanged: no delta
        finally:
            executor.close()

    def test_worker_state_mirrors_synced_records(self, corpus, model):
        executor = pooled_executor(workers=2)
        try:
            by_id = {r.record_id: r for r in corpus.records}
            scorer = BatchScorer(model, executor=executor)
            pairs = sorted(zip(sorted(by_id)[:-1], sorted(by_id)[1:]))
            scorer.featurize_pairs(by_id, pairs)
            pool = executor.pool
            snapshots, _ = pool.run_tasks(
                [(warm_state_snapshot, None) for _ in range(pool.workers)]
            )
            for snapshot in snapshots:
                assert snapshot["records"] == pool.warm_record_count
                assert set(snapshot["record_ids"]) <= set(by_id)
        finally:
            executor.close()

    def test_warm_featurization_matches_local_kernel(self, corpus, model):
        by_id = {r.record_id: r for r in corpus.records}
        ids = sorted(by_id)
        pairs = sorted(zip(ids[:-1], ids[1:]))

        local = BatchScorer(model, executor=ShardedExecutor())
        expected = local.featurize_pairs(by_id, pairs)

        executor = pooled_executor(batch_size=7)
        try:
            warm = BatchScorer(model, executor=executor)
            actual = warm.featurize_pairs(by_id, pairs)
            assert (actual == expected).all()
            # and the scores downstream of the matrix are identical too
            assert warm.score_pairs(by_id, pairs) == local.score_pairs(
                by_id, pairs
            )
        finally:
            executor.close()


class TestPooledEquivalence:
    @pytest.mark.parametrize("workers", (2, 4))
    def test_pooled_consolidation_identical_to_serial(
        self, corpus, model, sequential_entities, workers
    ):
        executor = pooled_executor(workers=workers)
        try:
            pooled = EntityConsolidator(
                model=model, executor=executor
            ).consolidate(corpus.records)
            assert pooled == sequential_entities
        finally:
            executor.close()

    def test_warm_state_off_is_identical_too(
        self, corpus, model, sequential_entities
    ):
        executor = pooled_executor(warm_state=False)
        try:
            pooled = EntityConsolidator(
                model=model, executor=executor
            ).consolidate(corpus.records)
            assert pooled == sequential_entities
        finally:
            executor.close()

    def test_shard_timings_split_queue_from_compute(self, corpus, model):
        executor = pooled_executor(batch_size=16)
        try:
            by_id = {r.record_id: r for r in corpus.records}
            ids = sorted(by_id)
            pairs = sorted(zip(ids[:-1], ids[1:]))
            BatchScorer(model, executor=executor).featurize_pairs(by_id, pairs)
            timings = executor.last_shard_timings
            assert timings, "pool fan-out must record per-shard timings"
            for timing in timings:
                assert timing.seconds >= 0.0
                assert timing.queue_seconds >= 0.0
                assert timing.total_seconds >= timing.seconds
        finally:
            executor.close()


class TestFacadeLifecycle:
    def test_set_parallelism_keeps_a_live_streams_executor(self, corpus, model):
        """Reconfiguring execution must not strand a live stream's pool:
        the old executor is retired and closed with the facade."""
        from repro import DataTamer, TamerConfig

        tamer = DataTamer(
            TamerConfig.parallel(workers=2, batch_size=32, backend="process")
        )
        for record in corpus.records[:30]:
            row = dict(record.as_dict())
            row["_source"] = record.source_id
            tamer.curated_collection.insert(row)
        tamer.train_dedup_model(corpus.pairs)
        tamer.start_stream(key_attribute="name")
        before = tamer.refresh()
        stream_executor = tamer.stream._executor

        tamer.set_parallelism(4, batch_size=64)
        assert tamer.executor is not stream_executor
        # the stream still works through its original (retired) executor
        row = dict(corpus.records[30].as_dict())
        row["_source"] = "late"
        tamer.curated_collection.insert(row)
        after = tamer.refresh()
        assert len(after) >= len(before)

        retired_pool = stream_executor.pool
        tamer.close()
        assert retired_pool is None or not retired_pool.running
        new_pool = tamer.executor.pool
        assert new_pool is None or not new_pool.running


class TestStreamingWarmPool:
    def _make_collection(self, corpus, n_initial=20):
        store = DocumentStore("pool-test", StorageConfig())
        collection = store.create_collection("curated")
        rows = [dict(r.as_dict()) for r in corpus.records]
        for index, row in enumerate(rows[:n_initial]):
            row["_id"] = f"d{index}"
            collection.insert(row)
        return collection, rows

    def test_streaming_upsert_delta_sync_matches_cold_rebuild(
        self, corpus, model
    ):
        collection, rows = self._make_collection(corpus)
        executor = pooled_executor(batch_size=16)
        stream = StreamingTamer(
            collection,
            model,
            executor=executor,
            stream_config=StreamConfig(rebuild_threshold=0),
        )
        try:
            assert stream.refresh() == stream.batch_reference()
            pool = executor.pool
            bootstrap_syncs = pool.sync_count

            # streaming upserts: inserts, an update, a delete
            for offset, row in enumerate(rows[20:26]):
                row["_id"] = f"d{20 + offset}"
                collection.insert(row)
            collection.update("d3", {"price": 1234})
            collection.delete("d5")

            incremental = stream.refresh()
            assert pool.sync_count > bootstrap_syncs  # deltas were shipped
            # the warm workers' vocabulary/record state after delta sync
            # must behave exactly like a cold rebuild of all state
            assert incremental == stream.batch_reference()
            cold = stream.full_rebuild()
            assert incremental == cold

            # the deleted record was forgotten by the warm protocol
            assert pool.warm_record_count == collection.count()
        finally:
            stream.close()
            executor.close()

    def test_delete_then_reinsert_keeps_warm_workers_consistent(
        self, corpus, model
    ):
        """A record deleted in one micro-batch and re-inserted in a later
        one must survive the combined sync epoch (regression: deletes used
        to be applied after upserts and clobber the re-inserted record)."""
        collection, rows = self._make_collection(corpus)
        executor = pooled_executor(batch_size=16)
        stream = StreamingTamer(
            collection,
            model,
            executor=executor,
            stream_config=StreamConfig(rebuild_threshold=0),
        )
        try:
            stream.refresh()
            reinserted = dict(collection.get("d4"))
            collection.delete("d4")
            stream.refresh()  # the delete is applied (and queued for sync)
            collection.insert(reinserted)  # same id, same content
            incremental = stream.refresh()
            assert incremental == stream.batch_reference()
            # the re-inserted record is live in the warm workers
            pool = executor.pool
            snapshots, _ = pool.run_tasks(
                [(warm_state_snapshot, None) for _ in range(pool.workers)]
            )
            for snapshot in snapshots:
                assert "d4" in snapshot["record_ids"]
        finally:
            stream.close()
            executor.close()

    def test_worker_crash_before_delta_sync_recovers(self, corpus, model):
        """A worker killed between batches must be respawned by the next
        non-empty warm-state sync, not crash it with BrokenPipeError.

        Drives ``sync_records`` directly through the scorer (no generic
        fan-out in between that would reap the corpse first)."""
        by_id = {r.record_id: r for r in corpus.records}
        ids = sorted(by_id)
        executor = pooled_executor(batch_size=16)
        try:
            scorer = BatchScorer(model, executor=executor)
            first_half = {rid: by_id[rid] for rid in ids[:20]}
            pairs = sorted(zip(ids[:19], ids[1:20]))
            expected = BatchScorer(
                model, executor=ShardedExecutor()
            ).featurize_pairs(by_id, pairs)
            assert (scorer.featurize_pairs(first_half, pairs) == expected).all()

            pool = executor.pool
            os.kill(pool.worker_pids()[0], signal.SIGKILL)

            # unseen records: the sync delta is non-empty and is the very
            # first pool interaction after the crash
            more_pairs = sorted(zip(ids[19:-1], ids[20:]))
            expected_more = BatchScorer(
                model, executor=ShardedExecutor()
            ).featurize_pairs(by_id, more_pairs)
            actual = scorer.featurize_pairs(by_id, more_pairs)
            assert (actual == expected_more).all()
            assert pool.respawn_count >= 1
        finally:
            executor.close()

    def test_pooled_streaming_identical_to_serial_streaming(
        self, corpus, model
    ):
        def run(executor):
            collection, rows = self._make_collection(corpus)
            stream = StreamingTamer(
                collection,
                model,
                executor=executor,
                stream_config=StreamConfig(rebuild_threshold=0),
            )
            try:
                stream.refresh()
                for offset, row in enumerate(rows[20:28]):
                    row["_id"] = f"d{20 + offset}"
                    collection.insert(row)
                collection.update("d1", {"name": "renamed show"})
                collection.delete("d2")
                return stream.refresh()
            finally:
                stream.close()

        serial = run(None)
        executor = pooled_executor(batch_size=16)
        try:
            assert run(executor) == serial
        finally:
            executor.close()


def _read_context(key):
    from repro.exec.pool import warm_context

    return warm_context(key)


class TestWarmContexts:
    """The generic broadcast channel for non-record warm state."""

    def test_context_ships_once_per_version(self):
        with PersistentWorkerPool(workers=2) as pool:
            assert pool.sync_context("table", 1, {"a": 1})
            assert not pool.sync_context("table", 1, {"a": 1})  # same version
            results, _ = pool.run_tasks(
                [(_read_context, "table") for _ in range(2)]
            )
            assert results == [{"a": 1}, {"a": 1}]
            assert pool.sync_context("table", 2, {"a": 2})
            results, _ = pool.run_tasks([(_read_context, "table")])
            assert results == [{"a": 2}]

    def test_missing_context_raises_loudly(self):
        with PersistentWorkerPool(workers=1) as pool:
            with pytest.raises(TamerError):
                pool.run_tasks([(_read_context, "never-shipped")])

    def test_restarted_workers_receive_every_context(self):
        with PersistentWorkerPool(workers=2) as pool:
            pool.sync_context("alpha", 1, "A")
            pool.sync_context("beta", 7, "B")
            pool.shutdown()  # idle-style stop; contexts survive in the parent
            results, _ = pool.run_tasks(
                [(_read_context, "alpha"), (_read_context, "beta")]
            )
            assert results == ["A", "B"]

    def test_crashed_worker_respawns_with_contexts(self):
        with PersistentWorkerPool(workers=2) as pool:
            pool.sync_context("table", 3, "warm")
            pool.run_tasks([(_square, 2)])
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            time.sleep(0.1)
            results, _ = pool.run_tasks(
                [(_read_context, "table") for _ in range(4)]
            )
            assert results == ["warm"] * 4

    def test_executor_passthrough_requires_warm_pool(self):
        serial = ShardedExecutor(ExecConfig(parallelism=1))
        assert not serial.sync_warm_context("k", 1, "v")
        threaded = ShardedExecutor(ExecConfig(parallelism=2, backend="thread"))
        assert not threaded.sync_warm_context("k", 1, "v")
        pooled = ShardedExecutor(
            ExecConfig(parallelism=2, backend="process", pool="persistent")
        )
        try:
            assert pooled.sync_warm_context("k", 1, "v")
        finally:
            pooled.close()

    def test_drop_context_evicts_everywhere(self):
        with PersistentWorkerPool(workers=2) as pool:
            pool.sync_context("doomed", 1, "X")
            pool.sync_context("kept", 1, "Y")
            assert pool.drop_context("doomed")
            assert not pool.drop_context("doomed")  # already gone
            with pytest.raises(TamerError):
                pool.run_tasks([(_read_context, "doomed")])
            results, _ = pool.run_tasks([(_read_context, "kept")])
            assert results == ["Y"]
            # respawned workers must not resurrect the dropped key
            pool.shutdown()
            with pytest.raises(TamerError):
                pool.run_tasks([(_read_context, "doomed")])

    def test_stream_close_drops_its_warm_context(self):
        from repro import DataTamer, StreamConfig, TamerConfig

        config = TamerConfig.small()
        config.execution = ExecConfig(
            parallelism=2, backend="process", pool="persistent"
        )
        config.stream = StreamConfig(schema_integration=True)
        tamer = DataTamer(config.validate())
        corpus = DedupCorpusGenerator(seed=13).generate(
            n_entities=40, variants_per_entity=2
        )
        tamer.train_dedup_model(corpus.pairs)
        for index, record in enumerate(corpus.records[:24]):
            tamer.curated_collection.insert(
                dict(record.as_dict(), _source=("a", "b", "c")[index % 3])
            )
        stream = tamer.start_stream()
        key = stream.integrator._warm_context_key
        stream.integrator.refresh()  # bootstrap fan-out ships the context
        pool = tamer.executor.pool
        shipped = pool is not None and key in pool._warm_contexts
        tamer.stop_stream()
        if shipped:
            assert key not in pool._warm_contexts
        tamer.close()


class TestDispatchDeadline:
    """The hung-worker watchdog: kill, respawn, re-dispatch, count."""

    def test_hung_worker_is_killed_and_task_redispatched(self):
        from repro.fault import FaultPlan, FaultRule

        # task 0 hangs for 30s on its first attempt only; the watchdog must
        # kill that worker well before the sleep ends and the retry succeed
        plan = FaultPlan(
            seed=3,
            rules=(
                FaultRule(
                    "pool.worker_hang", "hang", seconds=30.0, keys=((0, 1),)
                ),
            ),
        )
        with PersistentWorkerPool(
            workers=2, dispatch_deadline=0.4, fault_plan=plan
        ) as pool:
            start = time.perf_counter()
            results, _ = pool.run_tasks([(_square, n) for n in range(6)])
            elapsed = time.perf_counter() - start
            assert results == [n * n for n in range(6)]
            assert pool.hung_respawn_count == 1
            assert elapsed < 10.0  # nowhere near the 30s hang

    def test_pipe_send_fault_respawns_and_recovers(self):
        from repro.fault import FaultPlan, FaultRule

        plan = FaultPlan(
            seed=3,
            rules=(
                FaultRule(
                    "pool.pipe_send", "error", keys=((2, 1),), times=1
                ),
            ),
        )
        with PersistentWorkerPool(workers=2, fault_plan=plan) as pool:
            results, _ = pool.run_tasks([(_square, n) for n in range(6)])
            assert results == [n * n for n in range(6)]
            assert pool.respawn_count >= 1

    def test_worker_compute_crash_respawns_and_recovers(self):
        from repro.fault import FaultPlan, FaultRule

        # first attempt of task 1 dies with os._exit inside the worker; the
        # respawned worker's second attempt has a different key and runs
        plan = FaultPlan(
            seed=3,
            rules=(
                FaultRule(
                    "pool.worker_compute", "crash", keys=((1, 1),), times=1
                ),
            ),
        )
        with PersistentWorkerPool(workers=2, fault_plan=plan) as pool:
            results, _ = pool.run_tasks([(_square, n) for n in range(6)])
            assert results == [n * n for n in range(6)]
            assert pool.respawn_count == 1

    def test_deadline_knob_validates(self):
        ExecConfig(dispatch_deadline=0.5).validate()
        with pytest.raises(ConfigError):
            ExecConfig(dispatch_deadline=-0.1).validate()
        with pytest.raises(TamerError):
            PersistentWorkerPool(workers=1, dispatch_deadline=-1.0)

    def test_deadline_threads_through_executor(self):
        executor = ShardedExecutor(
            ExecConfig(
                parallelism=2,
                backend="process",
                pool="persistent",
                dispatch_deadline=1.5,
            )
        )
        try:
            assert executor.ensure_pool().dispatch_deadline == 1.5
        finally:
            executor.close()
