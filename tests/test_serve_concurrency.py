"""Concurrency suite: concurrent clients vs. a live streaming tamer.

Client threads fire mixed query traffic at the server while the main
thread keeps inserting records and driving stream refreshes (publishes).
Every published :class:`~repro.serve.views.ServeView` is recorded by
version; afterwards each live response is replayed through the sequential
oracle (:func:`~repro.serve.server.evaluate_request` over the recorded
view it was stamped with) and must match bit-for-bit.  This pins the
tier's whole guarantee: a response is a pure function of one coherent
(entities, watermark) snapshot — never a torn mix of two.
"""

import json
import threading

import pytest

from repro import DataTamer
from repro.serve import QueryClient, serve_in_background
from repro.serve.protocol import QueryRequest
from repro.serve.server import evaluate_request
from repro.workloads import DedupCorpusGenerator

N_CLIENTS = 4
REQUESTS_PER_CLIENT = 30
PUBLISH_ROUNDS = 6


def _canonical(payload):
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )


@pytest.fixture
def stack(small_config):
    tamer = DataTamer(small_config)
    corpus = DedupCorpusGenerator(seed=41).generate(n_entities=40)
    tamer.train_dedup_model(corpus.pairs)
    seed, updates = corpus.records[:16], corpus.records[16:]
    for record in seed:
        tamer.curated_collection.insert(dict(record.as_dict(), _source="seed"))
    stream = tamer.start_stream(key_attribute="name")
    server = tamer.create_server(key_attribute="name")
    yield tamer, stream, server, seed, updates
    tamer.close()


def _workload(names):
    """A deterministic rotation of every operation the tier serves."""
    ops = []
    for i in range(REQUESTS_PER_CLIENT):
        name = names[i % len(names)]
        ops.append(
            [
                ("find_equal", {"attribute": "name", "value": name}),
                ("search", {"phrase": name}),
                ("search", {"phrase": name, "attributes": ["name"]}),
                ("lookup_show", {"show_name": name}),
                ("top_k", {"k": 5, "entity_types": ["Product", "Company"]}),
                ("fuse", {"show_name": name}),
            ][i % 6]
        )
    return ops


class TestConcurrentServing:
    def test_mixed_traffic_matches_sequential_oracle(self, stack):
        tamer, stream, server, seed, updates = stack

        # record every published view by version; subscribing *after* the
        # server means its _on_publish already installed the matching view
        views = {server.view.version: server.view}

        def record(_snapshot):
            view = server.view
            views[view.version] = view

        unsubscribe = stream.subscribe_snapshots(record)
        names = [record_.as_dict()["name"] for record_ in seed[:8]]
        start = threading.Barrier(N_CLIENTS + 1)
        responses = [[] for _ in range(N_CLIENTS)]
        errors = []

        def client_thread(idx):
            try:
                with QueryClient("127.0.0.1", handle.port) as client:
                    start.wait()
                    for op, params in _workload(names):
                        responses[idx].append(
                            (op, params, client.request(op, dict(params)))
                        )
            except Exception as exc:  # surfaced by the main assertion
                errors.append((idx, repr(exc)))

        with serve_in_background(server) as handle:
            threads = [
                threading.Thread(target=client_thread, args=(i,))
                for i in range(N_CLIENTS)
            ]
            for thread in threads:
                thread.start()
            start.wait()
            # the writer: interleave inserts and stream refreshes
            chunk = max(1, len(updates) // PUBLISH_ROUNDS)
            for round_ in range(PUBLISH_ROUNDS):
                for record_ in updates[round_ * chunk : (round_ + 1) * chunk]:
                    tamer.curated_collection.insert(
                        dict(record_.as_dict(), _source=f"u{round_}")
                    )
                stream.query_engine()
            for thread in threads:
                thread.join(timeout=60)
        unsubscribe()

        assert errors == []
        assert all(not t.is_alive() for t in threads)
        assert len(views) > 1, "no publish landed during traffic"

        oracle_cache = {}
        for idx, client_log in enumerate(responses):
            assert len(client_log) == REQUESTS_PER_CLIENT
            last_version = -1
            for op, params, response in client_log:
                assert response["ok"], (idx, op, params, response)
                version = response["version"]
                # coherent stamp: the version names a recorded view and the
                # watermark pair is that view's, never a mix
                assert version in views, (idx, op, version, sorted(views))
                view = views[version]
                assert response["watermark"] == view.watermark
                assert response["schema_watermark"] == view.schema_watermark
                # monotonic reads per connection
                assert version >= last_version
                last_version = version
                # bit-identical to the sequential oracle replay
                cache_key = (version, op, _canonical(params))
                if cache_key not in oracle_cache:
                    oracle_cache[cache_key] = _canonical(
                        evaluate_request(
                            view,
                            QueryRequest(op=op, params=params),
                            "name",
                        )
                    )
                assert _canonical(response["result"]) == oracle_cache[cache_key], (
                    idx,
                    op,
                    params,
                    version,
                )

    def test_sessions_all_retired_after_traffic(self, stack):
        tamer, stream, server, seed, updates = stack
        with serve_in_background(server) as handle:
            clients = [
                QueryClient("127.0.0.1", handle.port).connect()
                for _ in range(3)
            ]
            for client in clients:
                client.ping()
            assert server.sessions.active == 3
            for client in clients:
                client.close()
            deadline = 200
            while server.sessions.active and deadline:
                threading.Event().wait(0.01)
                deadline -= 1
        assert server.sessions.active == 0
        stats = server.sessions.stats()
        assert stats["opened"] >= 3
        assert stats["total_requests"] >= 3
