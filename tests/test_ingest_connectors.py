"""Tests for repro.ingest.connectors."""

import pytest

from repro.errors import IngestError
from repro.ingest.connectors import (
    CsvSource,
    DictSource,
    JsonLinesSource,
    SourceMetadata,
)


class TestSourceMetadata:
    def test_requires_source_id(self):
        with pytest.raises(IngestError):
            SourceMetadata("")

    def test_rejects_unknown_kind(self):
        with pytest.raises(IngestError):
            SourceMetadata("s", kind="mystery")

    def test_valid(self):
        meta = SourceMetadata("s1", kind="unstructured", description="web text")
        assert meta.kind == "unstructured"


class TestDictSource:
    def test_records_are_copies(self):
        rows = [{"a": 1}]
        source = DictSource("s", rows)
        fetched = next(source.records())
        fetched["a"] = 99
        assert next(source.records())["a"] == 1

    def test_count(self):
        assert DictSource("s", [{"a": 1}, {"a": 2}]).count() == 2

    def test_attribute_names_union_in_order(self):
        source = DictSource("s", [{"a": 1}, {"b": 2, "a": 3}])
        assert source.attribute_names() == ["a", "b"]

    def test_rejects_non_dict_rows(self):
        with pytest.raises(IngestError):
            DictSource("s", [("a", 1)])

    def test_metadata_defaults(self):
        source = DictSource("s", [])
        assert source.metadata.kind == "structured"
        assert source.source_id == "s"


class TestCsvSource:
    CSV_TEXT = "Show,Venue,Price\nMatilda,Shubert,$27\nWicked,Gershwin,$89\n"

    def test_parses_inline_text(self):
        source = CsvSource("csv1", text=self.CSV_TEXT)
        rows = list(source.records())
        assert rows[0] == {"Show": "Matilda", "Venue": "Shubert", "Price": "$27"}
        assert source.count() == 2

    def test_attribute_names(self):
        source = CsvSource("csv1", text=self.CSV_TEXT)
        assert source.attribute_names() == ["Show", "Venue", "Price"]

    def test_reads_from_file(self, tmp_path):
        path = tmp_path / "shows.csv"
        path.write_text(self.CSV_TEXT, encoding="utf-8")
        source = CsvSource("csv1", path=path)
        assert source.count() == 2

    def test_requires_exactly_one_input(self, tmp_path):
        with pytest.raises(IngestError):
            CsvSource("c")
        with pytest.raises(IngestError):
            CsvSource("c", path=tmp_path / "x.csv", text="a,b\n1,2\n")

    def test_custom_delimiter(self):
        source = CsvSource("c", text="a;b\n1;2\n", delimiter=";")
        assert list(source.records()) == [{"a": "1", "b": "2"}]


class TestJsonLinesSource:
    JSONL = '{"entity": {"name": "Matilda"}}\n\n{"entity": {"name": "Wicked"}}\n'

    def test_parses_inline_text_and_skips_blank_lines(self):
        source = JsonLinesSource("j", text=self.JSONL)
        rows = list(source.records())
        assert len(rows) == 2
        assert rows[0]["entity"]["name"] == "Matilda"

    def test_reads_from_file(self, tmp_path):
        path = tmp_path / "entities.jsonl"
        path.write_text(self.JSONL, encoding="utf-8")
        assert JsonLinesSource("j", path=path).count() == 2

    def test_invalid_json_raises_with_line_number(self):
        source = JsonLinesSource("j", text='{"ok": 1}\nnot json\n')
        with pytest.raises(IngestError, match="line 2"):
            list(source.records())

    def test_non_object_line_rejected(self):
        source = JsonLinesSource("j", text="[1, 2, 3]\n")
        with pytest.raises(IngestError):
            list(source.records())

    def test_requires_exactly_one_input(self):
        with pytest.raises(IngestError):
            JsonLinesSource("j")

    def test_default_kind_is_semi_structured(self):
        assert JsonLinesSource("j", text="{}").metadata.kind == "semi_structured"
