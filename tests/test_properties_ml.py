"""Property-based tests for the ML substrate and pairwise features."""

import string

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.entity.record import Record
from repro.entity.similarity import pair_features
from repro.ml.metrics import accuracy, f1_score, precision, recall
from repro.ml.vectorize import HashingVectorizer, TfIdfVectorizer

_labels = st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=60)
_texts = st.lists(
    st.text(alphabet=string.ascii_lowercase + " ", min_size=0, max_size=40),
    min_size=1,
    max_size=15,
)
_field_values = st.dictionaries(
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6),
    st.one_of(
        st.text(alphabet=string.ascii_letters + " ", max_size=20),
        st.integers(min_value=-100, max_value=100),
        st.none(),
    ),
    max_size=6,
)


@given(_labels)
@settings(max_examples=150, deadline=None)
def test_metrics_bounded_and_perfect_on_self(y):
    y_pred = list(y)
    assert precision(y, y_pred) in (0.0, 1.0)
    assert accuracy(y, y_pred) == 1.0
    if any(label == 1 for label in y):
        assert recall(y, y_pred) == 1.0
        assert f1_score(y, y_pred) == 1.0


@given(_labels, st.randoms(use_true_random=False))
@settings(max_examples=100, deadline=None)
def test_metrics_bounded_for_random_predictions(y, rng):
    y_pred = [rng.randint(0, 1) for _ in y]
    for metric in (precision, recall, f1_score, accuracy):
        assert 0.0 <= metric(y, y_pred) <= 1.0


@given(_texts)
@settings(max_examples=60, deadline=None)
def test_tfidf_rows_normalized(texts):
    vectorizer = TfIdfVectorizer()
    X = vectorizer.fit_transform(texts)
    norms = np.linalg.norm(X, axis=1)
    assert np.all((np.abs(norms - 1.0) < 1e-9) | (norms == 0.0))


@given(_texts, st.integers(min_value=1, max_value=256))
@settings(max_examples=60, deadline=None)
def test_hashing_vectorizer_shape_and_finiteness(texts, n_features):
    X = HashingVectorizer(n_features=n_features).transform(texts)
    assert X.shape == (len(texts), n_features)
    assert np.all(np.isfinite(X))


@given(_field_values, _field_values)
@settings(max_examples=120, deadline=None)
def test_pair_features_bounded_and_symmetric(values_a, values_b):
    a = Record.from_dict("a", "s", values_a)
    b = Record.from_dict("b", "s", values_b)
    fab = pair_features(a, b)
    fba = pair_features(b, a)
    assert np.all(fab >= 0.0) and np.all(fab <= 1.0 + 1e-9)
    assert np.allclose(fab, fba)


@given(_field_values)
@settings(max_examples=80, deadline=None)
def test_pair_features_identity_record(values):
    record_a = Record.from_dict("a", "s", values)
    record_b = Record.from_dict("b", "s", values)
    features = pair_features(record_a, record_b)
    non_null = {k: v for k, v in values.items() if v not in (None, "")}
    if non_null:
        named = dict(zip(
            ("token_jaccard", "token_cosine", "shared_attr_ratio",
             "exact_match_fraction", "mean_string_similarity",
             "max_string_similarity", "numeric_closeness", "length_ratio"),
            features,
        ))
        assert named["shared_attr_ratio"] == 1.0
        assert named["length_ratio"] == 1.0
