"""Tests for repro.workloads.webinstance."""

from collections import Counter

from repro.workloads.webinstance import DEFAULT_SHOW_RANKING, WebInstanceGenerator


class TestWebInstanceGenerator:
    def test_generates_requested_count(self):
        docs = WebInstanceGenerator(seed=1).generate(50)
        assert len(docs) == 50

    def test_deterministic_given_seed(self):
        a = WebInstanceGenerator(seed=5).generate(30)
        b = WebInstanceGenerator(seed=5).generate(30)
        assert [d.text for d in a] == [d.text for d in b]

    def test_different_seeds_differ(self):
        a = WebInstanceGenerator(seed=1).generate(30)
        b = WebInstanceGenerator(seed=2).generate(30)
        assert [d.text for d in a] != [d.text for d in b]

    def test_documents_mention_their_show(self):
        docs = WebInstanceGenerator(seed=3).generate(40)
        for doc in docs:
            assert doc.mentioned_shows[0] in doc.text

    def test_styles_are_mixed(self):
        docs = WebInstanceGenerator(seed=4).generate(200)
        styles = {d.style for d in docs}
        assert styles == {"news", "blog", "tweet"}

    def test_popularity_is_heavy_tailed(self):
        generator = WebInstanceGenerator(seed=6)
        docs = generator.generate(2000)
        counts = Counter(show for d in docs for show in d.mentioned_shows)
        ranking = generator.show_ranking
        # the most popular show should be mentioned far more than a tail show
        assert counts[ranking[0]] > 5 * max(1, counts.get(ranking[-1], 1))

    def test_ground_truth_ranking_roughly_matches_observed(self):
        generator = WebInstanceGenerator(seed=7)
        docs = generator.generate(3000)
        counts = generator.mention_counts(docs)
        observed_top3 = [s for s, _ in Counter(counts).most_common(3)]
        assert set(observed_top3) <= set(generator.expected_top_shows(5))

    def test_expected_top_shows_prefix_of_ranking(self):
        generator = WebInstanceGenerator(seed=0)
        assert generator.expected_top_shows(3) == list(DEFAULT_SHOW_RANKING[:3])

    def test_doc_ids_unique(self):
        docs = WebInstanceGenerator(seed=8).generate(100)
        assert len({d.doc_id for d in docs}) == 100

    def test_as_pair(self):
        doc = WebInstanceGenerator(seed=9).generate(1)[0]
        doc_id, text = doc.as_pair()
        assert doc_id == doc.doc_id and text == doc.text

    def test_iter_documents_lazy_matches_generate(self):
        generator = WebInstanceGenerator(seed=10)
        eager = [d.text for d in generator.generate(20)]
        lazy = [d.text for d in generator.iter_documents(20)]
        assert eager == lazy

    def test_parser_finds_shows_in_generated_text(self, parser):
        docs = WebInstanceGenerator(seed=11).generate(30)
        found_movies = 0
        for doc in docs:
            parsed = parser.parse(doc.text, doc.doc_id)
            if any(m.entity_type == "Movie" for m in parsed.mentions):
                found_movies += 1
        assert found_movies >= 25  # nearly every document mentions a show
