"""Tests for repro.workloads.dedup_corpus."""

import pytest

from repro.workloads.dedup_corpus import DedupCorpusGenerator


class TestDedupCorpusGenerator:
    def test_pair_counts_balanced_by_default(self, dedup_corpus):
        assert dedup_corpus.positive_count > 0
        assert dedup_corpus.negative_count == pytest.approx(
            dedup_corpus.positive_count, rel=0.05
        )

    def test_deterministic(self):
        a = DedupCorpusGenerator(seed=1).generate(n_entities=30)
        b = DedupCorpusGenerator(seed=1).generate(n_entities=30)
        assert [p.is_duplicate for p in a.pairs] == [p.is_duplicate for p in b.pairs]
        assert [p.record_a.record_id for p in a.pairs] == [
            p.record_a.record_id for p in b.pairs
        ]

    def test_positive_pairs_share_entity(self, dedup_corpus):
        for pair in dedup_corpus.pairs:
            entity_a = dedup_corpus.entity_of_record[pair.record_a.record_id]
            entity_b = dedup_corpus.entity_of_record[pair.record_b.record_id]
            if pair.is_duplicate:
                assert entity_a == entity_b
            else:
                assert entity_a != entity_b

    def test_variants_per_entity_controls_group_size(self):
        corpus = DedupCorpusGenerator(seed=2).generate(
            n_entities=10, variants_per_entity=3
        )
        # each entity contributes base + 3 variants = 4 records
        assert len(corpus.records) == 40

    def test_negatives_per_positive_ratio(self):
        corpus = DedupCorpusGenerator(seed=3).generate(
            n_entities=30, negatives_per_positive=2.0
        )
        assert corpus.negative_count == pytest.approx(
            2 * corpus.positive_count, rel=0.05
        )

    def test_true_pairs_are_positives(self, dedup_corpus):
        true_pairs = dedup_corpus.true_pairs()
        assert len(true_pairs) == dedup_corpus.positive_count

    def test_noise_zero_produces_identical_names(self):
        corpus = DedupCorpusGenerator(seed=4, noise_level=0.0).generate(n_entities=10)
        for pair in corpus.pairs:
            if pair.is_duplicate:
                assert (
                    str(pair.record_a.get("name")).lower()
                    == str(pair.record_b.get("name")).lower()
                )

    def test_noise_produces_variation(self):
        corpus = DedupCorpusGenerator(seed=5, noise_level=0.8).generate(n_entities=40)
        differing = sum(
            1
            for pair in corpus.pairs
            if pair.is_duplicate
            and pair.record_a.get("name") != pair.record_b.get("name")
        )
        assert differing > 0

    def test_entity_type_restriction(self):
        corpus = DedupCorpusGenerator(
            seed=6, entity_types=["Person"]
        ).generate(n_entities=20)
        assert all(r.get("type") == "Person" for r in corpus.records if r.get("type"))

    def test_invalid_noise_level(self):
        with pytest.raises(ValueError):
            DedupCorpusGenerator(noise_level=1.5)

    def test_classifier_reaches_paper_regime_on_larger_corpus(self):
        from repro.entity.dedup import DedupModel

        corpus = DedupCorpusGenerator(seed=7).generate(n_entities=150)
        result = DedupModel().cross_validate(corpus.pairs, n_folds=10)
        assert result.mean_precision > 0.82
        assert result.mean_recall > 0.82
