"""Tests for repro.entity.clustering."""

import pytest

from repro.entity.clustering import UnionFind, cluster_pairs


class TestUnionFind:
    def test_initial_elements_are_singletons(self):
        uf = UnionFind(["a", "b", "c"])
        assert uf.group_count() == 3
        assert not uf.connected("a", "b")

    def test_union_connects(self):
        uf = UnionFind(["a", "b", "c"])
        uf.union("a", "b")
        assert uf.connected("a", "b")
        assert not uf.connected("a", "c")

    def test_transitive_connection(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.connected("a", "c")
        assert uf.group_count() == 1

    def test_union_adds_unknown_elements(self):
        uf = UnionFind()
        uf.union("x", "y")
        assert "x" in uf and "y" in uf

    def test_find_unknown_raises(self):
        with pytest.raises(KeyError):
            UnionFind().find("missing")

    def test_connected_with_unknown_is_false(self):
        uf = UnionFind(["a"])
        assert not uf.connected("a", "unknown")

    def test_add_idempotent(self):
        uf = UnionFind()
        uf.add("a")
        uf.add("a")
        assert len(uf) == 1

    def test_groups_partition_all_elements(self):
        uf = UnionFind(range(10))
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(3, 4)
        groups = uf.groups()
        flattened = sorted(x for group in groups for x in group)
        assert flattened == list(range(10))
        assert uf.group_count() == len(groups) == 7

    def test_union_same_set_is_noop(self):
        uf = UnionFind(["a", "b"])
        uf.union("a", "b")
        root = uf.find("a")
        assert uf.union("a", "b") == root


class TestClusterPairs:
    def test_singletons_preserved(self):
        clusters = cluster_pairs(["a", "b", "c"], [])
        assert len(clusters) == 3
        assert all(len(c) == 1 for c in clusters)

    def test_matched_pairs_merge(self):
        clusters = cluster_pairs(["a", "b", "c", "d"], [("a", "b"), ("c", "d")])
        sizes = sorted(len(c) for c in clusters)
        assert sizes == [2, 2]

    def test_transitive_chain_merges(self):
        clusters = cluster_pairs(["a", "b", "c"], [("a", "b"), ("b", "c")])
        assert len(clusters) == 1
        assert clusters[0] == {"a", "b", "c"}

    def test_every_id_appears_exactly_once(self):
        ids = [f"r{i}" for i in range(20)]
        pairs = [("r0", "r1"), ("r1", "r2"), ("r5", "r6")]
        clusters = cluster_pairs(ids, pairs)
        seen = sorted(x for cluster in clusters for x in cluster)
        assert seen == sorted(ids)

    def test_max_cluster_size_splits_weak_links(self):
        ids = [f"r{i}" for i in range(6)]
        pairs = [(f"r{i}", f"r{i+1}") for i in range(5)]
        scores = {pair: 1.0 - 0.1 * i for i, pair in enumerate(pairs)}
        clusters = cluster_pairs(ids, pairs, scores=scores, max_cluster_size=3)
        assert all(len(c) <= 3 for c in clusters)
        seen = sorted(x for cluster in clusters for x in cluster)
        assert seen == sorted(ids)

    def test_max_cluster_size_without_scores_is_ignored(self):
        ids = ["a", "b", "c", "d"]
        pairs = [("a", "b"), ("b", "c"), ("c", "d")]
        clusters = cluster_pairs(ids, pairs, scores=None, max_cluster_size=2)
        assert len(clusters) == 1

    def test_small_clusters_untouched_by_size_guard(self):
        ids = ["a", "b", "c"]
        pairs = [("a", "b")]
        clusters = cluster_pairs(
            ids, pairs, scores={("a", "b"): 0.9}, max_cluster_size=5
        )
        assert {"a", "b"} in clusters
