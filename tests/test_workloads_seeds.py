"""Tests for repro.workloads.seeds (deterministic RNG helpers)."""

import numpy as np
import pytest

from repro.workloads.seeds import make_rng, weighted_choice, zipf_weights


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(5, "label")
        b = make_rng(5, "label")
        assert (
            a.integers(0, 1000, size=10).tolist()
            == b.integers(0, 1000, size=10).tolist()
        )

    def test_different_labels_different_streams(self):
        a = make_rng(5, "webinstance")
        b = make_rng(5, "ftables")
        assert (
            a.integers(0, 1000, size=10).tolist()
            != b.integers(0, 1000, size=10).tolist()
        )

    def test_none_seed_defaults_to_zero(self):
        a = make_rng(None, "x")
        b = make_rng(0, "x")
        assert (
            a.integers(0, 1000, size=5).tolist()
            == b.integers(0, 1000, size=5).tolist()
        )


class TestWeightedChoice:
    def test_respects_zero_weights(self):
        rng = make_rng(1)
        picks = {weighted_choice(rng, ["a", "b"], [1.0, 0.0]) for _ in range(50)}
        assert picks == {"a"}

    def test_heavier_item_picked_more_often(self):
        rng = make_rng(2)
        picks = [weighted_choice(rng, ["a", "b"], [9.0, 1.0]) for _ in range(500)]
        assert picks.count("a") > picks.count("b") * 3


class TestZipfWeights:
    def test_monotone_decreasing(self):
        weights = zipf_weights(20)
        assert all(weights[i] >= weights[i + 1] for i in range(len(weights) - 1))

    def test_length_and_positivity(self):
        weights = zipf_weights(7)
        assert len(weights) == 7
        assert np.all(weights > 0)

    def test_exponent_controls_skew(self):
        flat = zipf_weights(10, exponent=0.5)
        steep = zipf_weights(10, exponent=2.0)
        assert steep[0] / steep[-1] > flat[0] / flat[-1]

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
