"""Integration suite for the observability layer across real components.

Three claims are pinned here:

* **cross-process span trees** — the persistent pool's workers record
  compute spans locally and ship them back inside task results; the
  parent grafts them under its live fan-out span, including for tasks
  re-dispatched after a worker crash (the respawned worker's spans land
  under the same parent as everyone else's);
* **one coherent telemetry plane** — a single ``metrics`` request against
  a live server, while concurrent clients query and the stream publishes,
  returns a snapshot covering all four layers (serve, stream, exec/pool,
  pipeline) recorded into one hub;
* **live top-k** — text ingest into the instance collection refreshes the
  served mention counts without any manual ``refresh_mentions`` call.
"""

import os
import time

import pytest

from repro import DataTamer
from repro.config import ExecConfig
from repro.core.pipeline import CurationPipeline
from repro.exec import PersistentWorkerPool, ShardedExecutor
from repro.obs import TelemetryHub
from repro.query.engine import QueryEngine
from repro.serve import QueryClient, QueryServer, serve_in_background
from repro.storage.document_store import DocumentStore
from repro.workloads import DedupCorpusGenerator


def _square(value):
    return value * value


def _sum_partition(partition):
    return sum(partition)


def _crash_once(arg):
    """Die abruptly on first execution; succeed on the re-dispatch."""
    flag_path, value = arg
    if not os.path.exists(flag_path):
        with open(flag_path, "w", encoding="utf-8"):
            pass
        os._exit(13)
    return value * value


def _wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestPoolSpanShipping:
    def test_worker_compute_spans_attach_under_live_parent(self):
        hub = TelemetryHub()
        with PersistentWorkerPool(workers=2, hub=hub) as pool:
            with hub.tracer.span("exec.fan_out") as fan_out:
                results, _ = pool.run_tasks([(_square, n) for n in range(5)])
        assert results == [0, 1, 4, 9, 16]
        computes = [
            r for r in hub.tracer.export() if r["name"] == "pool.compute"
        ]
        assert len(computes) == 5
        for record in computes:
            assert record["trace_id"] == fan_out.trace_id
            assert record["parent_id"] == fan_out.span_id
            assert record["tags"]["pid"] != os.getpid()
        # every task index shipped exactly one compute span
        assert sorted(r["tags"]["task_index"] for r in computes) == list(
            range(5)
        )

    def test_respawned_worker_spans_attach_to_same_parent(self, tmp_path):
        hub = TelemetryHub()
        flag = str(tmp_path / "crashed-once")
        with PersistentWorkerPool(workers=2, hub=hub) as pool:
            tasks = [(_square, n) for n in range(6)]
            tasks[3] = (_crash_once, (flag, 3))
            with hub.tracer.span("exec.fan_out") as fan_out:
                results, _ = pool.run_tasks(tasks)
            assert results == [0, 1, 4, 9, 16, 25]
            assert pool.respawn_count == 1
        computes = [
            r for r in hub.tracer.export() if r["name"] == "pool.compute"
        ]
        # the crashed attempt never ships; the re-dispatch does, and it
        # grafts under the same fan-out span as every other task
        assert len(computes) == 6
        assert {r["parent_id"] for r in computes} == {fan_out.span_id}
        assert {r["trace_id"] for r in computes} == {fan_out.trace_id}
        respawns = hub.registry.counter("pool_respawns_total")
        assert respawns.value == 1.0

    def test_executor_fan_out_span_wraps_pool_spans(self):
        hub = TelemetryHub()
        executor = ShardedExecutor(
            ExecConfig(
                parallelism=2, backend="process", pool="persistent"
            ),
            hub=hub,
        )
        try:
            results = executor.map_shards(
                _sum_partition, [[1, 2], [3, 4], [5, 6]]
            )
            assert results == [3, 7, 11]
        finally:
            executor.close()
        records = hub.tracer.export()
        fan_outs = [r for r in records if r["name"] == "exec.fan_out"]
        computes = [r for r in records if r["name"] == "pool.compute"]
        assert len(fan_outs) == 1
        assert len(computes) == 3
        assert {r["parent_id"] for r in computes} == {
            fan_outs[0]["span_id"]
        }


@pytest.fixture
def stack(small_config):
    tamer = DataTamer(small_config)
    corpus = DedupCorpusGenerator(seed=47).generate(n_entities=30)
    tamer.train_dedup_model(corpus.pairs)
    for record in corpus.records[:12]:
        tamer.curated_collection.insert(dict(record.as_dict(), _source="seed"))
    for name in ("Matilda", "Matilda", "Wicked"):
        tamer.instance_collection.insert(
            {"entity": name, "entity_type": "Movie"}
        )
    stream = tamer.start_stream(key_attribute="name")
    server = tamer.create_server(key_attribute="name")
    yield tamer, stream, server, corpus
    tamer.close()


class TestLiveTelemetrySurface:
    def test_metrics_snapshot_covers_all_layers(self, stack):
        tamer, stream, server, corpus = stack
        # land pipeline metrics in the same hub (defaulted from the
        # executor the pipeline shares with the tamer)
        pipeline = CurationPipeline(executor=tamer.executor)
        pipeline.add_stage("noop", lambda context: 1)
        pipeline.run()

        with serve_in_background(server) as handle:
            with QueryClient("127.0.0.1", handle.port) as client:
                client.ping()
                client.search("a")
                client.top_k(k=2)
                # a live publish between requests
                tamer.curated_collection.insert(
                    dict(corpus.records[12].as_dict(), _source="late")
                )
                stream.query_engine()
                client.search("b")

                payload = client.metrics()
                metrics = payload["metrics"]
                # serve layer
                assert "serve_requests_total" in metrics
                assert "serve_request_seconds" in metrics
                assert "serve_cache_misses_total" in metrics
                # stream layer
                assert "stream_batches_total" in metrics
                assert "stream_publishes_total" in metrics
                assert "stream_watermark" in metrics
                # exec layer
                assert "exec_fanouts_total" in metrics
                # pipeline layer
                assert "pipeline_stage_seconds" in metrics
                assert "pipeline_runs_total" in metrics
                # traces aggregate across the layers too
                names = set(payload["traces"]["by_name"])
                assert "serve.request" in names
                assert "stream.batch" in names
                assert "pipeline.stage" in names

                requested_ops = {
                    series["labels"]["op"]
                    for series in metrics["serve_requests_total"]["series"]
                }
                assert {"ping", "search", "top_k"} <= requested_ops

    def test_metrics_prometheus_and_traces_formats(self, stack):
        _tamer, _stream, server, _corpus = stack
        with serve_in_background(server) as handle:
            with QueryClient("127.0.0.1", handle.port) as client:
                client.ping()
                text_payload = client.metrics(format="prometheus")
                assert text_payload["format"] == "prometheus"
                assert (
                    "# TYPE serve_requests_total counter"
                    in text_payload["text"]
                )
                traced = client.metrics(traces=True)
                assert any(
                    record["name"] == "serve.request"
                    for record in traced["spans"]
                )

    def test_latency_histogram_agrees_with_request_count(self, stack):
        _tamer, _stream, server, _corpus = stack
        n_pings = 20
        with serve_in_background(server) as handle:
            with QueryClient("127.0.0.1", handle.port) as client:
                for _ in range(n_pings):
                    client.ping()
                metrics = client.metrics()["metrics"]
        series = metrics["serve_request_seconds"]["series"]
        ping = [s for s in series if s["labels"]["op"] == "ping"][0]
        assert ping["count"] == n_pings
        assert 0.0 < ping["p50"] <= ping["p95"] <= ping["p99"]

    def test_request_spans_are_sampled_but_metrics_stay_exact(self):
        hub = TelemetryHub(trace_sample_every=3)
        server = QueryServer(
            QueryEngine([], watermark=0),
            curated_documents=lambda: [],
            hub=hub,
        )
        with serve_in_background(server) as handle:
            with QueryClient("127.0.0.1", handle.port) as client:
                for _ in range(9):
                    client.ping()
        spans = [
            r for r in hub.tracer.export() if r["name"] == "serve.request"
        ]
        # requests 1, 4 and 7 are traced (the first is always sampled)
        assert len(spans) == 3
        series = hub.registry.histogram(
            "serve_request_seconds", labels=("op",)
        ).labels(op="ping")
        assert series.count == 9

    def test_status_reports_uptime_counts_and_snapshot(self, stack):
        _tamer, stream, server, _corpus = stack
        with serve_in_background(server) as handle:
            with QueryClient("127.0.0.1", handle.port) as client:
                client.ping()
                client.ping()
                client.search("x")
                status = client.status()
        assert status["uptime_seconds"] >= 0.0
        assert status["requests_by_op"]["ping"] == 2
        assert status["requests_by_op"]["search"] == 1
        assert status["snapshot"]["version"] == server.view.version
        assert status["snapshot"]["watermark"] == stream.watermark
        assert status["mentions_epoch"] == 0


class TestMentionAutoRefresh:
    def _server(self, instance_collection):
        engine = QueryEngine([], watermark=0)
        return QueryServer(
            engine,
            curated_documents=lambda: [],
            instance_collection=instance_collection,
        )

    def test_insert_refreshes_topk_without_manual_call(self):
        store = DocumentStore("dt")
        collection = store.create_collection("instance")
        collection.insert({"entity": "Matilda", "entity_type": "Movie"})
        server = self._server(collection)
        with serve_in_background(server) as handle:
            with QueryClient("127.0.0.1", handle.port) as client:
                assert client.top_k(k=3) == [
                    {
                        "entity": "Matilda",
                        "entity_type": "Movie",
                        "mentions": 1,
                    }
                ]
                for _ in range(3):
                    collection.insert(
                        {"entity": "Wicked", "entity_type": "Movie"}
                    )
                assert _wait_until(
                    lambda: client.top_k(k=1)
                    == [
                        {
                            "entity": "Wicked",
                            "entity_type": "Movie",
                            "mentions": 3,
                        }
                    ]
                )
                status = client.status()
                assert status["mentions_epoch"] >= 1
                refreshed = client.metrics()["metrics"][
                    "mentions_refreshed_total"
                ]
                assert refreshed["series"][0]["value"] >= 1.0

    def test_delete_triggers_full_recount(self):
        store = DocumentStore("dt")
        collection = store.create_collection("instance")
        doc_ids = [
            collection.insert({"entity": "Matilda", "entity_type": "Movie"})
            for _ in range(3)
        ]
        server = self._server(collection)
        with serve_in_background(server) as handle:
            with QueryClient("127.0.0.1", handle.port) as client:
                assert client.top_k(k=1)[0]["mentions"] == 3
                # counters cannot decrement incrementally: a delete flips
                # the recount flag and the flush rebuilds from the source
                collection.delete(doc_ids[0])
                assert _wait_until(
                    lambda: client.top_k(k=1)[0]["mentions"] == 2
                )

    def test_stale_topk_cache_entries_never_served_after_refresh(self):
        store = DocumentStore("dt")
        collection = store.create_collection("instance")
        collection.insert({"entity": "Matilda", "entity_type": "Movie"})
        server = self._server(collection)
        with serve_in_background(server) as handle:
            with QueryClient("127.0.0.1", handle.port) as client:
                first = client.request("top_k", {"k": 1})
                assert first["cached"] is False
                cached = client.request("top_k", {"k": 1})
                assert cached["cached"] is True  # same epoch: cache hit
                collection.insert(
                    {"entity": "Matilda", "entity_type": "Movie"}
                )
                assert _wait_until(
                    lambda: client.request("top_k", {"k": 1})["result"][
                        "ranking"
                    ][0]["mentions"]
                    == 2
                )
