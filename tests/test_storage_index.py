"""Tests for repro.storage.index."""

import pytest

from repro.errors import IndexError_
from repro.storage.index import HashIndex, InvertedIndex


class TestHashIndex:
    def test_requires_field_name(self):
        with pytest.raises(IndexError_):
            HashIndex("")

    def test_add_and_lookup(self):
        index = HashIndex("type")
        index.add(1, {"type": "Movie"})
        index.add(2, {"type": "Movie"})
        index.add(3, {"type": "Person"})
        assert index.lookup("Movie") == [1, 2]
        assert index.lookup("Person") == [3]

    def test_lookup_missing_value_returns_empty(self):
        index = HashIndex("type")
        assert index.lookup("nothing") == []

    def test_document_without_field_is_skipped(self):
        index = HashIndex("type")
        index.add(1, {"name": "x"})
        assert len(index) == 0

    def test_remove(self):
        index = HashIndex("type")
        index.add(1, {"type": "Movie"})
        index.remove(1)
        assert index.lookup("Movie") == []
        assert len(index) == 0

    def test_remove_unknown_is_noop(self):
        index = HashIndex("type")
        index.remove(99)

    def test_list_values_are_made_hashable(self):
        index = HashIndex("tags")
        index.add(1, {"tags": ["a", "b"]})
        assert index.lookup(["a", "b"]) == [1]

    def test_dict_values_are_made_hashable(self):
        index = HashIndex("span")
        index.add(1, {"span": {"start": 0, "end": 5}})
        assert index.lookup({"start": 0, "end": 5}) == [1]

    def test_values_lists_distinct(self):
        index = HashIndex("type")
        index.add(1, {"type": "A"})
        index.add(2, {"type": "A"})
        index.add(3, {"type": "B"})
        assert sorted(index.values()) == ["A", "B"]

    def test_size_bytes_positive_when_populated(self):
        index = HashIndex("type")
        index.add(1, {"type": "Movie"})
        assert index.size_bytes() > 0


class TestInvertedIndex:
    def test_requires_field_name(self):
        with pytest.raises(IndexError_):
            InvertedIndex("")

    def test_lookup_is_case_insensitive(self):
        index = InvertedIndex("text")
        index.add(1, {"text": "Matilda grossed strongly"})
        assert index.lookup("MATILDA") == {1}

    def test_lookup_all_requires_every_term(self):
        index = InvertedIndex("text")
        index.add(1, {"text": "Matilda at the Shubert"})
        index.add(2, {"text": "Matilda in London"})
        assert index.lookup_all(["matilda", "shubert"]) == {1}
        assert index.lookup_all(["matilda"]) == {1, 2}

    def test_lookup_all_disjoint_terms_empty(self):
        index = InvertedIndex("text")
        index.add(1, {"text": "only one thing"})
        assert index.lookup_all(["only", "absent"]) == set()

    def test_lookup_phrase_tokenizes(self):
        index = InvertedIndex("text")
        index.add(1, {"text": "The Walking Dead is discussed"})
        assert index.lookup_phrase("Walking Dead") == {1}

    def test_term_frequency_counts_occurrences(self):
        index = InvertedIndex("text")
        index.add(1, {"text": "show show show"})
        index.add(2, {"text": "show"})
        assert index.term_frequency("show") == 4

    def test_document_frequency_counts_documents(self):
        index = InvertedIndex("text")
        index.add(1, {"text": "show show"})
        index.add(2, {"text": "show"})
        assert index.document_frequency("show") == 2

    def test_remove_drops_terms(self):
        index = InvertedIndex("text")
        index.add(1, {"text": "matilda"})
        index.remove(1)
        assert index.lookup("matilda") == set()
        assert index.term_frequency("matilda") == 0

    def test_missing_field_skipped(self):
        index = InvertedIndex("text")
        index.add(1, {"other": "value"})
        assert len(index) == 0

    def test_top_terms_ordering(self):
        index = InvertedIndex("text")
        index.add(1, {"text": "aaa bbb aaa aaa bbb ccc"})
        top = index.top_terms(2)
        assert top[0] == ("aaa", 3)
        assert top[1] == ("bbb", 2)

    def test_empty_term_lookup(self):
        index = InvertedIndex("text")
        index.add(1, {"text": "something"})
        assert index.lookup("!!!") == set()
        assert index.term_frequency("") == 0

    def test_size_bytes_positive_when_populated(self):
        index = InvertedIndex("text")
        index.add(1, {"text": "a few words here"})
        assert index.size_bytes() > 0


class TestNoneValueRegression:
    """remove() must treat an indexed value of None as a real value."""

    def test_hash_index_remove_none_valued_doc(self):
        index = HashIndex("field")
        index.add(1, {"field": None})
        assert index.lookup(None) == [1]
        index.remove(1)
        assert index.lookup(None) == []
        assert len(index) == 0

    def test_hash_index_none_add_remove_cycle_stays_bounded(self):
        index = HashIndex("field")
        for _ in range(10):
            index.add(1, {"field": None})
            index.remove(1)
        assert index.lookup(None) == []
        assert index.size_bytes() == 0
