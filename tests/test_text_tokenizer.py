"""Tests for repro.text.tokenizer."""

import pytest

from repro.text.tokenizer import (
    ngrams,
    sentences,
    tokenize,
    tokenize_no_stopwords,
    word_spans,
)


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Matilda SHOW") == ["matilda", "show"]

    def test_splits_punctuation(self):
        assert tokenize("grossed $960,998, or 93 percent") == [
            "grossed", "960", "998", "or", "93", "percent",
        ]

    def test_empty_input(self):
        assert tokenize("") == []
        assert tokenize(None) == []

    def test_keeps_apostrophes_inside_words(self):
        assert tokenize("Hell's Kitchen") == ["hell's", "kitchen"]

    def test_numbers_kept(self):
        assert tokenize("room 101") == ["room", "101"]


class TestStopwords:
    def test_drops_common_words(self):
        assert tokenize_no_stopwords("the show is great") == ["show", "great"]

    def test_keeps_content_words(self):
        tokens = tokenize_no_stopwords("Matilda at the Shubert")
        assert "matilda" in tokens and "shubert" in tokens and "the" not in tokens


class TestNgrams:
    def test_basic(self):
        assert ngrams("abcd", 2) == ["ab", "bc", "cd"]

    def test_shorter_than_n(self):
        assert ngrams("ab", 3) == ["ab"]

    def test_empty(self):
        assert ngrams("", 3) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngrams("abc", 0)

    def test_whitespace_collapsed(self):
        assert ngrams("a  b", 3) == ["a b"]

    def test_count(self):
        assert len(ngrams("abcdefgh", 3)) == 6


class TestSentences:
    def test_splits_on_terminal_punctuation(self):
        result = sentences("First sentence. Second one! Third?")
        assert len(result) == 3
        assert result[0] == "First sentence."

    def test_single_sentence_unsplit(self):
        assert sentences("No terminal punctuation here") == [
            "No terminal punctuation here"
        ]

    def test_empty(self):
        assert sentences("") == []
        assert sentences("   ") == []


class TestWordSpans:
    def test_spans_cover_words(self):
        text = "Matilda at Shubert"
        spans = word_spans(text)
        assert [text[s:e] for s, e, _ in spans] == ["Matilda", "at", "Shubert"]

    def test_span_words_match(self):
        spans = word_spans("a bb ccc")
        assert [w for _, _, w in spans] == ["a", "bb", "ccc"]

    def test_empty(self):
        assert word_spans("") == []
