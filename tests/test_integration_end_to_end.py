"""Integration tests: the full pipeline over generated workloads."""

import pytest

from repro import DataTamer
from repro.ingest import DictSource
from repro.workloads import DedupCorpusGenerator, FTablesGenerator, WebInstanceGenerator
from repro.workloads.ftables import GROUND_TRUTH_GLOBAL_SCHEMA


class TestFullPipeline:
    def test_structured_sources_converge_to_compact_schema(self, tamer, ftables):
        tamer.ingest_structured_records("global_seed", ftables.seed_records())
        sources = ftables.generate()
        local_attribute_count = 0
        for source in sources[:9]:
            local_attribute_count += len(source.attribute_names)
            tamer.ingest_structured_source(
                DictSource(source.source_id, source.records())
            )
        # Without experts the schema keeps a few uncertain attributes as new,
        # but it must still be far more compact than the union of local schemas.
        assert len(tamer.global_schema) < local_attribute_count / 2
        assert len(tamer.global_schema) <= len(GROUND_TRUTH_GLOBAL_SCHEMA) + 10

    def test_expert_sourcing_tightens_schema_convergence(
        self, small_config, parser, ftables
    ):
        from repro.expert.experts import SimulatedExpert
        from repro.expert.routing import ExpertRouter

        def build(expert_router=None, true_mapping=None):
            tamer = DataTamer(
                small_config,
                expert_router=expert_router,
                true_schema_mapping=true_mapping,
            )
            tamer.register_text_parser(parser)
            tamer.ingest_structured_records("global_seed", ftables.seed_records())
            for source in ftables.generate()[:9]:
                tamer.ingest_structured_source(
                    DictSource(source.source_id, source.records())
                )
            return tamer

        without_expert = build()
        router = ExpertRouter([SimulatedExpert("e", accuracy=1.0, seed=0)])
        with_expert = build(router, ftables.true_mapping_all())
        assert router.total_tasks_answered > 0
        assert len(with_expert.global_schema) < len(without_expert.global_schema)

    def test_auto_accept_rate_rises_as_schema_matures(self, tamer, ftables):
        tamer.ingest_structured_records("global_seed", ftables.seed_records())
        sources = ftables.generate()
        reports = [
            tamer.ingest_structured_source(DictSource(s.source_id, s.records()))
            for s in sources[:12]
        ]
        early = [r.mapping.auto_accept_rate for r in reports[:3]]
        late = [r.mapping.auto_accept_rate for r in reports[-3:]]
        assert sum(late) / 3 >= sum(early) / 3

    def test_text_and_structured_fusion_enriches_result(
        self, populated_tamer, dedup_corpus
    ):
        tamer = populated_tamer
        tamer.train_dedup_model(dedup_corpus.pairs)
        text_views = [
            (source, values)
            for source, values in [
                (doc.get("_source"), doc)
                for doc in tamer.curated_collection.scan()
            ]
            if source == "webtext" and values.get("show_name") == "Matilda"
        ]
        fused = tamer.fuse_show("Matilda")
        # the fused record carries structured-only attributes that no text view has
        text_attrs = set()
        for _, values in text_views:
            text_attrs.update(k for k, v in values.items() if v not in (None, ""))
        structured_extra = set(fused.attributes) - text_attrs
        assert (
            "theater" in structured_extra
            or "performance_schedule" in structured_extra
        )

    def test_collection_shape_matches_paper_tables(self, populated_tamer):
        stats = populated_tamer.collection_stats()
        instance = stats["instance"]
        entity = stats["entity"]
        # WEBENTITIES carries at least as many entries as WEBINSTANCE and more indexes
        assert entity.count >= instance.count
        assert entity.nindexes > instance.nindexes

    def test_top_discussed_ranking_matches_generator_ground_truth(self, tamer):
        generator = WebInstanceGenerator(seed=21)
        docs = generator.generate(600)
        tamer.ingest_text_documents(
            (d.as_pair() for d in docs), integrate_schema=False
        )
        ranking = [m.entity for m in tamer.top_discussed_shows(k=5)]
        assert set(ranking) <= set(generator.expected_top_shows(8))
        assert ranking[0] == generator.expected_top_shows(1)[0]

    def test_dedup_crossval_in_paper_regime(self):
        corpus = DedupCorpusGenerator(seed=42).generate(n_entities=120)
        from repro.entity.dedup import DedupModel

        result = DedupModel().cross_validate(corpus.pairs, n_folds=10)
        assert result.mean_precision > 0.8
        assert result.mean_recall > 0.8


class TestDemoScenario:
    """The paper's Section V demo: top-10 query, then Matilda drill-down."""

    @pytest.fixture()
    def demo(self, tamer):
        ftables = FTablesGenerator(seed=31, n_sources=9)
        tamer.ingest_structured_records("global_seed", ftables.seed_records())
        for source in ftables.generate():
            tamer.ingest_structured_source(
                DictSource(source.source_id, source.records())
            )
        corpus = WebInstanceGenerator(seed=32).generate(400)
        tamer.ingest_text_documents(d.as_pair() for d in corpus)
        dedup = DedupCorpusGenerator(seed=33).generate(n_entities=80)
        tamer.train_dedup_model(dedup.pairs)
        return tamer

    def test_table4_top10_contains_matilda(self, demo):
        ranking = [m.entity for m in demo.top_discussed_shows(k=10)]
        assert len(ranking) == 10
        assert "Matilda" in ranking

    def test_table5_text_only_view_lacks_structured_attributes(self, demo):
        text_views = [
            doc for doc in demo.curated_collection.find({"_source": "webtext"})
            if doc.get("show_name") == "Matilda"
        ]
        assert text_views, "web text must mention Matilda"
        for view in text_views:
            assert "text_feed" in view
            assert "theater" not in view
            assert "cheapest_price" not in view

    def test_table6_fused_view_has_paper_attributes(self, demo):
        fused = demo.fuse_show("Matilda")
        for attribute in ("show_name", "theater", "performance_schedule",
                          "cheapest_price", "first_performance", "text_feed"):
            assert attribute in fused.attributes, attribute
        assert fused.attributes["theater"] == "Shubert"
        assert fused.attributes["cheapest_price"] == "$27"

    def test_fusion_enrichment_delta(self, demo):
        from repro.query.fusion import fuse_entity_views

        text_only = fuse_entity_views(
            "Matilda",
            [
                ("webtext", doc)
                for doc in demo.curated_collection.find({"_source": "webtext"})
                if doc.get("show_name") == "Matilda"
            ],
        )
        fused = demo.fuse_show("Matilda")
        added = fused.enrichment_over(text_only)
        assert "theater" in added
        assert "cheapest_price" in added
