"""Tests for repro.expert.experts and aggregation."""

import pytest

from repro.errors import ExpertError
from repro.expert.aggregation import AnswerAggregator
from repro.expert.experts import SimulatedExpert
from repro.expert.tasks import ExpertTask


def _task(ground_truth=True, domain="general"):
    return ExpertTask(
        task_id="t", kind="schema_match", payload={}, domain=domain,
        ground_truth=ground_truth,
    )


class TestSimulatedExpert:
    def test_perfect_expert_always_correct(self):
        expert = SimulatedExpert("e", accuracy=1.0, seed=1)
        assert all(expert.answer(_task(True)) is True for _ in range(20))

    def test_zero_accuracy_expert_always_wrong(self):
        expert = SimulatedExpert("e", accuracy=0.0, seed=1)
        assert all(expert.answer(_task(True)) is False for _ in range(20))

    def test_accuracy_roughly_respected(self):
        expert = SimulatedExpert("e", accuracy=0.7, seed=3)
        answers = [expert.answer(_task(True)) for _ in range(300)]
        correct = sum(1 for a in answers if a is True)
        assert 0.6 < correct / 300 < 0.8

    def test_no_ground_truth_confirms_proposal(self):
        expert = SimulatedExpert("e", accuracy=0.5, seed=1)
        assert expert.answer(_task(ground_truth=None)) is True

    def test_non_boolean_ground_truth_wrong_answer_is_none(self):
        expert = SimulatedExpert("e", accuracy=0.0, seed=1)
        assert expert.answer(_task(ground_truth="show_name")) is None

    def test_counters_and_cost(self):
        expert = SimulatedExpert("e", accuracy=1.0, cost_per_task=2.5, seed=0)
        expert.answer(_task())
        expert.answer(_task())
        assert expert.tasks_answered == 2
        assert expert.total_cost == 5.0
        expert.reset_counters()
        assert expert.tasks_answered == 0

    def test_domain_restriction(self):
        expert = SimulatedExpert("e", domains=("schema",), seed=0)
        assert expert.can_answer(_task(domain="schema"))
        assert not expert.can_answer(_task(domain="dedup"))
        with pytest.raises(ExpertError):
            expert.answer(_task(domain="dedup"))

    def test_general_domain_covers_everything(self):
        expert = SimulatedExpert("e", domains=("general",), seed=0)
        assert expert.can_answer(_task(domain="anything"))

    def test_answer_recorded_on_task(self):
        expert = SimulatedExpert("e", accuracy=1.0, seed=0)
        task = _task()
        expert.answer(task)
        assert task.answers[0]["expert_id"] == "e"

    def test_invalid_parameters(self):
        with pytest.raises(ExpertError):
            SimulatedExpert("")
        with pytest.raises(ExpertError):
            SimulatedExpert("e", accuracy=1.5)
        with pytest.raises(ExpertError):
            SimulatedExpert("e", cost_per_task=-1)

    def test_deterministic_given_seed(self):
        a = SimulatedExpert("e", accuracy=0.5, seed=9)
        b = SimulatedExpert("e", accuracy=0.5, seed=9)
        assert [a.answer(_task()) for _ in range(10)] == [
            b.answer(_task()) for _ in range(10)
        ]


class TestAnswerAggregator:
    def _answered_task(self, answers):
        task = _task()
        for expert_id, answer, confidence in answers:
            task.record_answer(expert_id, answer, confidence)
        return task

    def test_majority_vote(self):
        task = self._answered_task(
            [("a", True, 1.0), ("b", True, 1.0), ("c", False, 1.0)]
        )
        result = AnswerAggregator(weighted=False).aggregate(task)
        assert result.answer is True
        assert result.n_answers == 3
        assert result.agreement == pytest.approx(2 / 3)

    def test_weighted_vote_can_flip_majority(self):
        task = self._answered_task(
            [("a", True, 0.3), ("b", True, 0.3), ("c", False, 0.99)]
        )
        unweighted = AnswerAggregator(weighted=False).aggregate(
            self._answered_task(
                [("a", True, 0.3), ("b", True, 0.3), ("c", False, 0.99)]
            )
        )
        weighted = AnswerAggregator(weighted=True).aggregate(task)
        assert unweighted.answer is True
        assert weighted.answer is False

    def test_aggregate_resolves_task(self):
        task = self._answered_task([("a", True, 1.0)])
        AnswerAggregator().aggregate(task)
        assert task.resolution is True

    def test_no_answers_rejected(self):
        with pytest.raises(ExpertError):
            AnswerAggregator().aggregate(_task())

    def test_aggregate_many_skips_unanswered(self):
        answered = self._answered_task([("a", True, 1.0)])
        unanswered = _task()
        results = AnswerAggregator().aggregate_many([answered, unanswered])
        assert len(results) == 1

    def test_non_hashable_answers_supported(self):
        task = self._answered_task([("a", {"map": "x"}, 1.0), ("b", {"map": "x"}, 1.0)])
        result = AnswerAggregator().aggregate(task)
        assert result.answer == {"map": "x"}
