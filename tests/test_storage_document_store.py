"""Tests for repro.storage.document_store."""

import pytest

from repro.errors import (
    CollectionExists,
    CollectionNotFound,
    DocumentNotFound,
    DuplicateDocumentId,
    IndexError_,
)
from repro.storage.document_store import Collection, DocumentStore, document_size_bytes


@pytest.fixture
def collection(storage_config) -> Collection:
    return DocumentStore("dt", storage_config).create_collection("instance")


class TestDocumentSize:
    def test_deterministic(self):
        doc = {"a": 1, "b": "text"}
        assert document_size_bytes(doc) == document_size_bytes(dict(doc))

    def test_larger_documents_are_larger(self):
        assert document_size_bytes({"a": "x" * 100}) > document_size_bytes({"a": "x"})


class TestInsert:
    def test_insert_assigns_id(self, collection):
        doc_id = collection.insert({"text": "hello"})
        assert doc_id is not None
        assert doc_id in collection

    def test_insert_preserves_explicit_id(self, collection):
        doc_id = collection.insert({"_id": "custom", "x": 1})
        assert doc_id == "custom"
        assert collection.get("custom")["x"] == 1

    def test_duplicate_id_rejected(self, collection):
        collection.insert({"_id": "a"})
        with pytest.raises(DuplicateDocumentId):
            collection.insert({"_id": "a"})

    def test_non_dict_rejected(self, collection):
        with pytest.raises(TypeError):
            collection.insert(["not", "a", "dict"])

    def test_insert_many_returns_ids_in_order(self, collection):
        ids = collection.insert_many([{"n": i} for i in range(5)])
        assert len(ids) == 5
        assert [collection.get(i)["n"] for i in ids] == list(range(5))

    def test_insert_does_not_mutate_caller_dict(self, collection):
        original = {"x": 1}
        collection.insert(original)
        assert "_id" not in original


class TestReads:
    def test_get_returns_copy(self, collection):
        doc_id = collection.insert({"x": 1})
        fetched = collection.get(doc_id)
        fetched["x"] = 999
        assert collection.get(doc_id)["x"] == 1

    def test_get_missing_raises(self, collection):
        with pytest.raises(DocumentNotFound):
            collection.get("missing")

    def test_find_with_equality_filter(self, collection):
        collection.insert_many(
            [{"type": "Movie", "n": i} for i in range(3)]
            + [{"type": "Person", "n": 9}]
        )
        movies = collection.find({"type": "Movie"})
        assert len(movies) == 3

    def test_find_uses_index_when_available(self, collection):
        collection.create_index("type")
        collection.insert_many([{"type": t} for t in ("A", "B", "A")])
        assert len(collection.find({"type": "A"})) == 2

    def test_find_with_predicate(self, collection):
        collection.insert_many([{"n": i} for i in range(10)])
        big = collection.find(predicate=lambda d: d["n"] >= 7)
        assert len(big) == 3

    def test_find_with_limit(self, collection):
        collection.insert_many([{"n": i} for i in range(10)])
        assert len(collection.find(limit=4)) == 4

    def test_find_one(self, collection):
        collection.insert({"type": "Movie", "name": "Matilda"})
        assert collection.find_one({"type": "Movie"})["name"] == "Matilda"
        assert collection.find_one({"type": "Nothing"}) is None

    def test_scan_yields_all(self, collection):
        collection.insert_many([{"n": i} for i in range(7)])
        assert len(list(collection.scan())) == 7

    def test_distinct(self, collection):
        collection.insert_many([{"t": "a"}, {"t": "b"}, {"t": "a"}])
        assert collection.distinct("t") == {"a", "b"}

    def test_count_with_filter(self, collection):
        collection.insert_many([{"t": "a"}, {"t": "b"}, {"t": "a"}])
        assert collection.count() == 3
        assert collection.count({"t": "a"}) == 2


class TestUpdateDelete:
    def test_update_changes_value_and_keeps_id(self, collection):
        doc_id = collection.insert({"x": 1})
        updated = collection.update(doc_id, {"x": 2, "y": 3})
        assert updated["x"] == 2 and updated["y"] == 3
        assert updated["_id"] == doc_id

    def test_update_missing_raises(self, collection):
        with pytest.raises(DocumentNotFound):
            collection.update("nope", {"x": 1})

    def test_update_refreshes_indexes(self, collection):
        collection.create_index("type")
        doc_id = collection.insert({"type": "A"})
        collection.update(doc_id, {"type": "B"})
        assert collection.find({"type": "A"}) == []
        assert len(collection.find({"type": "B"})) == 1

    def test_delete_removes_document(self, collection):
        doc_id = collection.insert({"x": 1})
        collection.delete(doc_id)
        assert doc_id not in collection
        with pytest.raises(DocumentNotFound):
            collection.get(doc_id)

    def test_delete_missing_raises(self, collection):
        with pytest.raises(DocumentNotFound):
            collection.delete("nope")

    def test_delete_removes_from_index(self, collection):
        collection.create_index("type")
        doc_id = collection.insert({"type": "A"})
        collection.delete(doc_id)
        assert collection.find({"type": "A"}) == []


class TestIndexes:
    def test_create_index_backfills(self, collection):
        collection.insert_many([{"type": "A"}, {"type": "B"}])
        collection.create_index("type")
        assert len(collection.find({"type": "A"})) == 1

    def test_create_index_idempotent(self, collection):
        first = collection.create_index("type")
        second = collection.create_index("type")
        assert first is second

    def test_text_index_backfills_and_searches(self, collection):
        collection.insert({"text_feed": "Matilda grossed 960,998 this week"})
        collection.create_text_index("text_feed")
        hits = collection.search_text("text_feed", "Matilda grossed")
        assert len(hits) == 1

    def test_search_text_without_index_raises(self, collection):
        with pytest.raises(IndexError_):
            collection.search_text("text_feed", "anything")

    def test_index_fields_lists_all(self, collection):
        collection.create_index("type")
        collection.create_text_index("text_feed")
        assert set(collection.index_fields) >= {"_id", "type", "text_feed"}

    def test_hash_index_accessor_raises_when_missing(self, collection):
        with pytest.raises(IndexError_):
            collection.hash_index("nothing")


class TestStats:
    def test_stats_fields_match_paper_tables(self, collection):
        collection.insert_many([{"text": "x" * 100} for _ in range(50)])
        stats = collection.stats().as_dict()
        for field in (
            "ns",
            "count",
            "numExtents",
            "nindexes",
            "lastExtentSize",
            "totalIndexSize",
        ):
            assert field in stats
        assert stats["ns"] == "dt.instance"
        assert stats["count"] == 50
        assert stats["numExtents"] >= 1
        assert stats["nindexes"] >= 1

    def test_more_documents_more_extents(self, storage_config):
        store = DocumentStore("dt", storage_config)
        small = store.create_collection("small")
        large = store.create_collection("large")
        payload = {"text": "y" * 500}
        small.insert_many([dict(payload) for _ in range(20)])
        large.insert_many([dict(payload) for _ in range(200)])
        assert large.stats().num_extents > small.stats().num_extents

    def test_nindexes_counts_text_indexes(self, collection):
        base = collection.stats().nindexes
        collection.create_text_index("text_feed")
        assert collection.stats().nindexes == base + 1

    def test_shard_distribution_sums_to_count(self, collection):
        collection.insert_many([{"n": i} for i in range(40)])
        assert sum(collection.shard_distribution()) == 40

    def test_extents_per_shard_matches_total(self, collection):
        collection.insert_many([{"text": "z" * 400} for _ in range(60)])
        stats = collection.stats()
        assert sum(collection.extents_per_shard()) == stats.num_extents


class TestDocumentStore:
    def test_create_and_get(self, document_store):
        created = document_store.create_collection("instance")
        assert document_store.collection("instance") is created

    def test_duplicate_create_rejected(self, document_store):
        document_store.create_collection("x")
        with pytest.raises(CollectionExists):
            document_store.create_collection("x")

    def test_missing_collection_raises(self, document_store):
        with pytest.raises(CollectionNotFound):
            document_store.collection("absent")

    def test_get_or_create(self, document_store):
        first = document_store.get_or_create("a")
        second = document_store.get_or_create("a")
        assert first is second

    def test_drop_collection(self, document_store):
        document_store.create_collection("a")
        document_store.drop_collection("a")
        assert "a" not in document_store
        with pytest.raises(CollectionNotFound):
            document_store.drop_collection("a")

    def test_list_collections_sorted(self, document_store):
        for name in ("zeta", "alpha", "mid"):
            document_store.create_collection(name)
        assert document_store.list_collections() == ["alpha", "mid", "zeta"]

    def test_stats_covers_all_collections(self, document_store):
        document_store.create_collection("a").insert({"x": 1})
        document_store.create_collection("b")
        stats = document_store.stats()
        assert set(stats) == {"a", "b"}
        assert stats["a"].count == 1
        assert stats["b"].count == 0

    def test_namespace_prefix(self, storage_config):
        store = DocumentStore("mydb", storage_config)
        coll = store.create_collection("c")
        assert coll.namespace == "mydb.c"


class TestUpsert:
    def test_upsert_inserts_when_absent(self, collection):
        collection.upsert("a", {"x": 1})
        assert collection.get("a") == {"_id": "a", "x": 1}
        assert len(collection) == 1

    def test_upsert_replaces_wholesale(self, collection):
        collection.upsert("a", {"x": 1, "y": 2})
        collection.upsert("a", {"x": 3})
        doc = collection.get("a")
        assert doc == {"_id": "a", "x": 3}
        assert "y" not in doc

    def test_upsert_overrides_embedded_id(self, collection):
        collection.upsert("a", {"_id": "other", "x": 1})
        assert collection.get("a")["_id"] == "a"
        assert "other" not in collection

    def test_upsert_requires_dict_and_id(self, collection):
        with pytest.raises(TypeError):
            collection.upsert("a", ["nope"])
        with pytest.raises(TypeError):
            collection.upsert(None, {"x": 1})

    def test_upsert_does_not_mutate_caller_dict(self, collection):
        original = {"x": 1}
        collection.upsert("a", original)
        assert original == {"x": 1}

    def test_upsert_emits_insert_then_update_events(self, collection):
        events = []
        collection.add_change_listener(
            lambda op, doc_id, doc: events.append((op, doc_id))
        )
        collection.upsert("a", {"x": 1})
        collection.upsert("a", {"x": 2})
        assert events == [("insert", "a"), ("update", "a")]


class TestIndexConsistencyUnderWrites:
    """Regression: remove()/re-add cycles must never leave stale postings."""

    @pytest.fixture
    def indexed(self, collection) -> Collection:
        collection.create_index("category")
        collection.create_text_index("text")
        return collection

    def test_repeated_update_keeps_hash_index_exact(self, indexed):
        doc_id = indexed.insert({"category": "a", "text": "one two"})
        for i in range(20):
            indexed.update(doc_id, {"category": f"cat{i % 3}"})
        index = indexed.hash_index("category")
        assert len(index) == 1
        assert index.lookup("cat1") == [doc_id]
        assert index.lookup("a") == []
        for value in ("cat0", "cat2"):
            assert index.lookup(value) == []

    def test_repeated_upsert_keeps_indexes_exact(self, indexed):
        for i in range(20):
            indexed.upsert("doc", {"category": f"c{i % 2}", "text": f"word{i % 2}"})
        assert indexed.hash_index("category").lookup("c1") == ["doc"]
        assert indexed.hash_index("category").lookup("c0") == []
        assert indexed.search_text("text", "word1") == [indexed.get("doc")]
        assert indexed.search_text("text", "word0") == []

    def test_none_valued_field_update_cycle_leaves_no_stale_posting(self, indexed):
        """A document whose indexed field is None used to leave its posting
        behind on remove, growing without bound under repeated update."""
        doc_id = indexed.insert({"category": None, "text": "x"})
        for _ in range(5):
            indexed.update(doc_id, {"category": None})
        index = indexed.hash_index("category")
        assert index.lookup(None) == [doc_id]
        indexed.delete(doc_id)
        assert index.lookup(None) == []
        assert len(index) == 0

    def test_delete_after_update_clears_all_indexes(self, indexed):
        doc_id = indexed.insert({"category": "a", "text": "hello world"})
        indexed.update(doc_id, {"category": "b", "text": "other words"})
        indexed.delete(doc_id)
        assert indexed.hash_index("category").lookup("a") == []
        assert indexed.hash_index("category").lookup("b") == []
        assert indexed.text_index("text").lookup("hello") == set()
        assert indexed.text_index("text").lookup("other") == set()

    def test_update_removing_text_field_drops_terms(self, indexed):
        doc_id = indexed.insert({"text": "alpha beta"})
        indexed.upsert(doc_id, {"category": "a"})
        assert indexed.text_index("text").lookup("alpha") == set()
        assert indexed.search_text("text", "beta") == []


class TestChangeListeners:
    def test_listener_sees_post_images(self, collection):
        events = []
        collection.add_change_listener(
            lambda op, doc_id, doc: events.append((op, doc_id, doc))
        )
        doc_id = collection.insert({"x": 1})
        collection.update(doc_id, {"x": 2})
        collection.delete(doc_id)
        assert [op for op, _, _ in events] == ["insert", "update", "delete"]
        assert events[0][2]["x"] == 1
        assert events[1][2]["x"] == 2
        assert events[2][2] is None

    def test_listener_document_is_a_copy(self, collection):
        seen = []
        collection.add_change_listener(lambda op, doc_id, doc: seen.append(doc))
        doc_id = collection.insert({"x": 1})
        seen[0]["x"] = 99
        assert collection.get(doc_id)["x"] == 1

    def test_unsubscribe_is_idempotent(self, collection):
        events = []
        unsubscribe = collection.add_change_listener(
            lambda op, doc_id, doc: events.append(op)
        )
        unsubscribe()
        unsubscribe()
        collection.insert({"x": 1})
        assert events == []
