"""Tests for the DataTamer facade (repro.core.tamer)."""

import pytest

from repro import DataTamer, TamerConfig
from repro.core.tamer import CURATED_COLLECTION, ENTITY_COLLECTION, INSTANCE_COLLECTION
from repro.errors import TamerError
from repro.expert.experts import SimulatedExpert
from repro.expert.routing import ExpertRouter
from repro.ingest import DictSource


STRUCTURED_RECORDS = [
    {"show_name": "Matilda", "theater": "Shubert", "cheapest_price": "$27",
     "first_performance": "3/4/2013"},
    {"show_name": "Wicked", "theater": "Gershwin", "cheapest_price": "$89",
     "first_performance": "10/8/2003"},
    {"show_name": "Chicago", "theater": "Ambassador", "cheapest_price": "$49",
     "first_performance": "11/14/1996"},
]

VARIANT_RECORDS = [
    {"SHOW_NAME": "Matilda", "THEATER": "Shubert", "LOWEST_PRICE": "$29"},
    {"SHOW_NAME": "Once", "THEATER": "Jacobs", "LOWEST_PRICE": "$35"},
]


class TestConstruction:
    def test_default_collections_exist(self, tamer):
        names = tamer.store.list_collections()
        assert {INSTANCE_COLLECTION, ENTITY_COLLECTION, CURATED_COLLECTION} <= set(
            names
        )

    def test_entity_collection_has_extra_indexes(self, tamer):
        stats = tamer.entity_collection.stats()
        assert stats.nindexes >= 4  # _id + name/type/source_id

    def test_invalid_config_rejected_at_construction(self):
        from repro.config import EntityConfig

        bad = TamerConfig(entity=EntityConfig(match_threshold=3.0))
        with pytest.raises(Exception):
            DataTamer(bad)


class TestStructuredIngestion:
    def test_ingest_bootstraps_global_schema(self, tamer):
        report = tamer.ingest_structured_records("seed", STRUCTURED_RECORDS)
        assert report.curated_records == 3
        assert "show_name" in tamer.global_schema
        assert tamer.curated_collection.count() == 3

    def test_second_source_maps_onto_existing_schema(self, tamer):
        tamer.ingest_structured_records("seed", STRUCTURED_RECORDS)
        report = tamer.ingest_structured_source(
            DictSource("variant", VARIANT_RECORDS)
        )
        assert report.mapped_attributes["SHOW_NAME"] == "show_name"
        assert report.mapped_attributes["THEATER"] == "theater"

    def test_curated_records_use_global_names(self, tamer):
        tamer.ingest_structured_records("seed", STRUCTURED_RECORDS)
        tamer.ingest_structured_source(DictSource("variant", VARIANT_RECORDS))
        once = tamer.curated_collection.find({"show_name": "Once"})
        assert once and once[0]["_source"] == "variant"

    def test_cleaning_applied_during_ingest(self, tamer):
        dirty = [{"show_name": "  Matilda  ", "theater": "N/A"}]
        tamer.ingest_structured_records("dirty", dirty)
        doc = tamer.curated_collection.find_one({"show_name": "Matilda"})
        assert doc is not None
        assert "theater" not in doc or doc["theater"] is None

    def test_catalog_updated(self, tamer):
        tamer.ingest_structured_records("seed", STRUCTURED_RECORDS)
        entry = tamer.catalog.entry("seed")
        assert entry.kind == "structured"
        assert entry.records_loaded == 3

    def test_summary_shape(self, tamer):
        tamer.ingest_structured_records("seed", STRUCTURED_RECORDS)
        summary = tamer.summary()
        assert {"sources", "global_schema", "collections"} == set(summary)
        assert summary["global_schema"]["attribute_count"] >= 4


class TestTextIngestion:
    def test_requires_registered_parser(self, small_config):
        tamer = DataTamer(small_config)
        with pytest.raises(TamerError):
            tamer.ingest_text_documents([("d1", "Matilda was great")])

    def test_fragments_and_entities_stored(self, tamer):
        report = tamer.ingest_text_documents(
            [("d1", "Matilda grossed 960,998 at the Shubert Theatre.")]
        )
        assert report.documents == 1
        assert report.fragments >= 2
        assert tamer.instance_collection.count() == report.fragments
        assert tamer.entity_collection.count() == report.entities

    def test_entity_documents_are_flattened(self, tamer):
        tamer.ingest_text_documents([("d1", "Matilda was wonderful tonight")])
        doc = tamer.entity_collection.find_one({"entity.name": "Matilda"})
        assert doc is not None
        assert doc["entity.type"] == "Movie"

    def test_movie_mentions_reach_curated_collection(self, tamer):
        tamer.ingest_structured_records("seed", STRUCTURED_RECORDS)
        tamer.ingest_text_documents([("d1", "Matilda grossed well this week.")])
        text_records = tamer.curated_collection.find({"_source": "webtext"})
        assert any(r.get("show_name") == "Matilda" for r in text_records)
        assert any("text_feed" in r for r in text_records)

    def test_schema_integration_can_be_skipped(self, tamer):
        report = tamer.ingest_text_documents(
            [("d1", "Matilda was great")], integrate_schema=False
        )
        assert report.mapping is None
        assert tamer.curated_collection.count() == 0

    def test_text_source_registered_as_unstructured(self, tamer):
        tamer.ingest_text_documents([("d1", "Matilda was great")])
        assert tamer.catalog.entry("webtext").kind == "unstructured"


class TestResolveAttribute:
    def test_exact_and_alias_and_canonical(self, tamer):
        tamer.ingest_structured_records("seed", STRUCTURED_RECORDS)
        tamer.ingest_structured_source(DictSource("variant", VARIANT_RECORDS))
        assert tamer.resolve_attribute("show_name") == "show_name"
        assert tamer.resolve_attribute("SHOW_NAME") == "show_name"
        assert tamer.resolve_attribute("Show Name") == "show_name"

    def test_fuzzy_fallback(self, tamer):
        tamer.ingest_structured_records("seed", STRUCTURED_RECORDS)
        assert tamer.resolve_attribute("cheapest price ($)") == "cheapest_price"

    def test_unknown_attribute_returns_canonical_form(self, tamer):
        assert tamer.resolve_attribute("Totally Unknown") == "totally_unknown"


class TestDedupAndQuery:
    def _prepare(self, tamer, dedup_corpus):
        tamer.ingest_structured_records("seed", STRUCTURED_RECORDS)
        tamer.ingest_structured_source(DictSource("variant", VARIANT_RECORDS))
        tamer.ingest_text_documents(
            [("d1", "Matilda an award-winning import from London, grossed 960,998.")]
        )
        tamer.train_dedup_model(dedup_corpus.pairs)

    def test_consolidate_requires_model(self, tamer):
        tamer.ingest_structured_records("seed", STRUCTURED_RECORDS)
        with pytest.raises(TamerError):
            tamer.consolidate_curated()

    def test_train_dedup_model(self, tamer, dedup_corpus):
        model = tamer.train_dedup_model(dedup_corpus.pairs)
        assert tamer.dedup_model is model

    def test_consolidation_covers_all_curated_records(self, tamer, dedup_corpus):
        self._prepare(tamer, dedup_corpus)
        entities = tamer.consolidate_curated()
        total_members = sum(e.size for e in entities)
        assert total_members == tamer.curated_collection.count()

    def test_query_engine_lookup(self, tamer, dedup_corpus):
        self._prepare(tamer, dedup_corpus)
        engine = tamer.build_query_engine()
        result = engine.lookup_show("Matilda", name_attribute="show_name")
        assert len(result) >= 1

    def test_top_discussed_shows(self, tamer):
        tamer.ingest_text_documents(
            [
                ("d1", "Matilda was great."),
                ("d2", "Matilda again."),
                ("d3", "Wicked too."),
            ]
        )
        ranking = tamer.top_discussed_shows(k=2)
        assert ranking[0].entity == "Matilda"
        assert ranking[0].mentions == 2

    def test_fuse_show_combines_text_and_structured(self, tamer, dedup_corpus):
        self._prepare(tamer, dedup_corpus)
        fused = tamer.fuse_show("Matilda")
        assert fused.attributes["theater"] == "Shubert"
        assert "text_feed" in fused.attributes
        assert fused.provenance["theater"] != "webtext"

    def test_fuse_show_prefers_structured_on_conflict(self, tamer, dedup_corpus):
        self._prepare(tamer, dedup_corpus)
        fused = tamer.fuse_show("Matilda", prefer_structured=True)
        # cheapest price came from a structured source, not the web text
        assert fused.provenance.get("cheapest_price", "").startswith(
            ("seed", "variant")
        )

    def test_fuse_unknown_show_is_empty(self, tamer, dedup_corpus):
        self._prepare(tamer, dedup_corpus)
        assert tamer.fuse_show("Hamilton").attribute_count() == 0


class TestExpertIntegration:
    def test_expert_router_consulted_for_uncertain_matches(self, small_config, parser):
        from repro.config import SchemaConfig

        config = TamerConfig(
            storage=small_config.storage,
            schema=SchemaConfig(
                accept_threshold=0.97,
                new_attribute_threshold=0.2,
                matcher_weights={"name": 1.0},
            ),
        )
        router = ExpertRouter([SimulatedExpert("e", accuracy=1.0, seed=0)])
        tamer = DataTamer(
            config,
            expert_router=router,
            true_schema_mapping={"SHOW_TITLE": "show_name"},
        )
        tamer.register_text_parser(parser)
        tamer.ingest_structured_records("seed", STRUCTURED_RECORDS)
        report = tamer.ingest_structured_source(
            DictSource("odd", [{"SHOW_TITLE": "Matilda"}])
        )
        assert router.total_tasks_answered >= 1
        assert report.mapped_attributes.get("SHOW_TITLE") == "show_name"


class TestCollectionStats:
    def test_stats_report_paper_fields(self, tamer):
        tamer.ingest_text_documents([("d1", "Matilda was great.")])
        stats = tamer.collection_stats()
        instance = stats[INSTANCE_COLLECTION].as_dict()
        assert instance["ns"] == "dt.instance"
        assert instance["count"] >= 1
        assert instance["nindexes"] >= 2  # _id + text index
