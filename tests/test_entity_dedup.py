"""Tests for repro.entity.dedup."""

import numpy as np
import pytest

from repro.config import EntityConfig
from repro.entity.dedup import DedupModel, LabeledPair
from repro.entity.record import Record
from repro.errors import ModelError, NotFittedError


def _record(rid, name, extra=None):
    values = {"name": name}
    values.update(extra or {})
    return Record.from_dict(rid, "s", values)


def _training_pairs():
    pairs = []
    shows = ["Matilda", "Wicked", "Chicago", "Once", "Pippin", "Annie",
             "Kinky Boots", "Newsies", "Motown", "Cinderella"]
    for i, show in enumerate(shows):
        base = _record(f"b{i}", show, {"theater": f"Theater {i}", "price": 20 + i})
        variant = _record(f"v{i}", show.lower() + " show", {"price": 20 + i})
        pairs.append(LabeledPair(base, variant, True))
    for i in range(len(shows) - 1):
        a = _record(f"x{i}", shows[i], {"price": 20 + i})
        b = _record(f"y{i}", shows[i + 1], {"price": 80 + i})
        pairs.append(LabeledPair(a, b, False))
    return pairs


class TestDedupModelTraining:
    def test_fit_and_predict_duplicates(self):
        model = DedupModel().fit(_training_pairs())
        assert model.predict_records(
            _record("p", "Matilda", {"price": 25}),
            _record("q", "matilda show", {"price": 25}),
        )

    def test_predicts_non_duplicates(self):
        model = DedupModel().fit(_training_pairs())
        assert not model.predict_records(
            _record("p", "Matilda", {"price": 25}),
            _record("q", "Something Entirely Different", {"price": 900}),
        )

    def test_probability_in_unit_interval(self):
        model = DedupModel().fit(_training_pairs())
        prob = model.predict_proba_records(
            _record("p", "Matilda"), _record("q", "Wicked")
        )
        assert 0.0 <= prob <= 1.0

    def test_empty_training_set_rejected(self):
        with pytest.raises(ModelError):
            DedupModel().fit([])

    def test_single_class_training_set_rejected(self):
        pairs = [
            LabeledPair(_record("a", "X"), _record("b", "X"), True),
            LabeledPair(_record("c", "Y"), _record("d", "Y"), True),
        ]
        with pytest.raises(ModelError):
            DedupModel().fit(pairs)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            DedupModel().predict_records(_record("a", "X"), _record("b", "X"))

    def test_naive_bayes_backend(self):
        config = EntityConfig(classifier="naive_bayes")
        model = DedupModel(config=config).fit(_training_pairs())
        prob = model.predict_proba_records(
            _record("p", "Matilda"), _record("q", "matilda show")
        )
        assert 0.0 <= prob <= 1.0

    def test_threshold_comes_from_config(self):
        model = DedupModel(config=EntityConfig(match_threshold=0.9))
        assert model.threshold == 0.9


class TestFeaturize:
    def test_shapes(self):
        model = DedupModel()
        X, y = model.featurize(_training_pairs())
        assert X.shape[0] == y.shape[0] == len(_training_pairs())
        assert X.shape[1] == len(model.feature_names)

    def test_empty_input(self):
        X, y = DedupModel().featurize([])
        assert X.shape[0] == 0 and y.shape[0] == 0

    def test_labels_binary(self):
        _, y = DedupModel().featurize(_training_pairs())
        assert set(np.unique(y)) <= {0, 1}


class TestScorePairs:
    def test_scores_keyed_by_pair(self):
        model = DedupModel().fit(_training_pairs())
        records = {
            "a": _record("a", "Matilda"),
            "b": _record("b", "matilda show"),
            "c": _record("c", "Wicked"),
        }
        scores = model.score_pairs(records, [("a", "b"), ("a", "c")])
        assert set(scores) == {("a", "b"), ("a", "c")}
        assert scores[("a", "b")] > scores[("a", "c")]

    def test_empty_candidates(self):
        model = DedupModel().fit(_training_pairs())
        assert model.score_pairs({}, []) == {}


class TestCrossValidation:
    def test_cross_validate_returns_folds(self, dedup_corpus):
        model = DedupModel()
        result = model.cross_validate(dedup_corpus.pairs, n_folds=4)
        assert len(result.fold_reports) == 4

    def test_cross_validate_uses_config_folds(self, dedup_corpus):
        model = DedupModel(config=EntityConfig(crossval_folds=3))
        result = model.cross_validate(dedup_corpus.pairs)
        assert len(result.fold_reports) == 3

    def test_cross_validation_quality_on_corpus(self, dedup_corpus):
        result = DedupModel().cross_validate(dedup_corpus.pairs, n_folds=5)
        # the paper reports 89/90; the small test corpus should at least be
        # clearly better than chance
        assert result.mean_precision > 0.75
        assert result.mean_recall > 0.75
