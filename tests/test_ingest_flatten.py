"""Tests for repro.ingest.flatten."""

import pytest

from repro.errors import IngestError
from repro.ingest.flatten import Flattener, flatten_document, unflatten_document


class TestFlattenDocument:
    def test_flat_document_unchanged(self):
        doc = {"a": 1, "b": "x"}
        assert flatten_document(doc) == doc

    def test_nested_dict_uses_dotted_path(self):
        assert flatten_document({"entity": {"name": "Matilda"}}) == {
            "entity.name": "Matilda"
        }

    def test_deeply_nested(self):
        doc = {"a": {"b": {"c": {"d": 5}}}}
        assert flatten_document(doc) == {"a.b.c.d": 5}

    def test_list_uses_bracket_indices(self):
        assert flatten_document({"tags": ["x", "y"]}) == {
            "tags[0]": "x",
            "tags[1]": "y",
        }

    def test_list_of_dicts(self):
        doc = {"mentions": [{"s": 1}, {"s": 2}]}
        assert flatten_document(doc) == {"mentions[0].s": 1, "mentions[1].s": 2}

    def test_parser_output_shape(self):
        doc = {
            "entity": {"name": "Matilda", "type": "Movie", "attributes": {}},
            "mention": {"span": {"start": 3, "end": 10}},
        }
        flat = flatten_document(doc)
        assert flat["entity.name"] == "Matilda"
        assert flat["mention.span.start"] == 3

    def test_non_dict_rejected(self):
        with pytest.raises(IngestError):
            flatten_document(["a"])

    def test_key_containing_separator_rejected(self):
        with pytest.raises(IngestError):
            flatten_document({"a.b": 1})

    def test_custom_separator(self):
        assert flatten_document({"a": {"b": 1}}, separator="/") == {"a/b": 1}

    def test_max_depth_enforced(self):
        doc = {"a": {"b": {"c": {"d": 1}}}}
        with pytest.raises(IngestError):
            flatten_document(doc, max_depth=2)

    def test_none_values_preserved(self):
        assert flatten_document({"a": None}) == {"a": None}


class TestUnflatten:
    def test_roundtrip_nested(self):
        doc = {
            "entity": {"name": "Matilda", "type": "Movie"},
            "mention": {"span": {"start": 3, "end": 10}},
            "score": 0.9,
        }
        assert unflatten_document(flatten_document(doc)) == doc

    def test_roundtrip_lists(self):
        doc = {"tags": ["a", "b", "c"], "nested": [{"x": 1}, {"x": 2}]}
        assert unflatten_document(flatten_document(doc)) == doc

    def test_non_dict_rejected(self):
        with pytest.raises(IngestError):
            unflatten_document("nope")

    def test_plain_keys(self):
        assert unflatten_document({"a": 1}) == {"a": 1}


class TestFlattener:
    def test_tracks_observed_keys(self):
        flattener = Flattener()
        flattener.flatten({"a": {"b": 1}})
        flattener.flatten({"a": {"b": 2}, "c": 3})
        assert flattener.key_frequency("a.b") == 2
        assert flattener.key_frequency("c") == 1
        assert flattener.observed_keys[0] == "a.b"

    def test_flatten_many(self):
        flattener = Flattener()
        out = flattener.flatten_many([{"a": 1}, {"b": {"c": 2}}])
        assert out == [{"a": 1}, {"b.c": 2}]

    def test_unknown_key_frequency_zero(self):
        assert Flattener().key_frequency("missing") == 0
