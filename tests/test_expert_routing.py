"""Tests for repro.expert.routing."""

import pytest

from repro.config import ExpertConfig
from repro.errors import ExpertError, NoExpertAvailable
from repro.expert.experts import SimulatedExpert
from repro.expert.routing import ExpertRouter, schema_match_oracle
from repro.schema.matchers import MatcherScore


def _score(composite=0.6):
    return MatcherScore(name=0.6, value=0.5, type=1.0, stats=0.5, composite=composite)


class TestExpertRouter:
    def test_requires_experts(self):
        with pytest.raises(ExpertError):
            ExpertRouter([])

    def test_ask_returns_aggregated_answer(self):
        router = ExpertRouter([SimulatedExpert("e1", accuracy=1.0, seed=0)])
        result = router.ask("schema_match", {"q": 1}, ground_truth=True)
        assert result.answer is True
        assert len(router.queue) == 1

    def test_routes_to_least_loaded_expert(self):
        a = SimulatedExpert("a", accuracy=1.0, seed=0)
        b = SimulatedExpert("b", accuracy=1.0, seed=0)
        router = ExpertRouter([a, b])
        for _ in range(4):
            router.ask("schema_match", {}, ground_truth=True)
        assert a.tasks_answered == 2 and b.tasks_answered == 2

    def test_min_answers_collects_multiple(self):
        experts = [SimulatedExpert(f"e{i}", accuracy=1.0, seed=i) for i in range(3)]
        router = ExpertRouter(experts, config=ExpertConfig(min_answers_per_task=3))
        router.ask("schema_match", {}, ground_truth=True)
        assert router.total_tasks_answered == 3

    def test_domain_routing(self):
        schema_expert = SimulatedExpert("s", domains=("schema",), accuracy=1.0, seed=0)
        router = ExpertRouter([schema_expert])
        router.ask("schema_match", {}, domain="schema", ground_truth=True)
        with pytest.raises(NoExpertAvailable):
            router.ask("duplicate_pair", {}, domain="dedup", ground_truth=True)

    def test_expert_budget_exhaustion(self):
        expert = SimulatedExpert("e", accuracy=1.0, seed=0)
        router = ExpertRouter([expert], config=ExpertConfig(max_tasks_per_expert=2))
        router.ask("schema_match", {}, ground_truth=True)
        router.ask("schema_match", {}, ground_truth=True)
        with pytest.raises(NoExpertAvailable):
            router.ask("schema_match", {}, ground_truth=True)

    def test_total_cost(self):
        router = ExpertRouter(
            [SimulatedExpert("e", accuracy=1.0, cost_per_task=3.0, seed=0)]
        )
        router.ask("schema_match", {}, ground_truth=True)
        assert router.total_cost == 3.0


class TestSchemaMatchOracle:
    def test_oracle_with_ground_truth_mapping(self):
        router = ExpertRouter([SimulatedExpert("e", accuracy=1.0, seed=0)])
        oracle = schema_match_oracle(router, true_mapping={"SHOW": "show_name"})
        assert oracle("SHOW", "show_name", _score()) is True
        assert oracle("SHOW", "theater", _score()) is False

    def test_oracle_without_ground_truth_confirms(self):
        router = ExpertRouter([SimulatedExpert("e", accuracy=0.5, seed=0)])
        oracle = schema_match_oracle(router)
        assert oracle("SHOW", "show_name", _score()) is True

    def test_oracle_records_tasks_in_queue(self):
        router = ExpertRouter([SimulatedExpert("e", accuracy=1.0, seed=0)])
        oracle = schema_match_oracle(router, true_mapping={"A": "a"})
        oracle("A", "a", _score())
        assert router.queue.stats()["total"] == 1
        task = router.queue.all_tasks()[0]
        assert task.payload["source_attribute"] == "A"
        assert task.payload["candidate"] == "a"

    def test_oracle_accepts_plain_float_score(self):
        router = ExpertRouter([SimulatedExpert("e", accuracy=1.0, seed=0)])
        oracle = schema_match_oracle(router)
        assert oracle("A", "a", 0.5) in (True, False)
