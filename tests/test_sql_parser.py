"""Tests for repro.sql.lexer and repro.sql.parser."""

import pytest

from repro.errors import SqlError
from repro.sql import parse_sql, tokenize_sql
from repro.sql.lexer import EOF, IDENT, NUMBER, OP, QIDENT, STRING
from repro.sql.nodes import (
    And,
    ColumnRef,
    Comparison,
    FuncCall,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
    Star,
)


class TestLexer:
    def test_token_kinds(self):
        tokens = tokenize_sql("SELECT name, 42, 3.5, 'it''s' FROM t")
        kinds = [t.kind for t in tokens]
        assert kinds == [
            IDENT, IDENT, OP, NUMBER, OP, NUMBER, OP, STRING, IDENT, IDENT,
            EOF,
        ]

    def test_keywords_lowercased(self):
        tokens = tokenize_sql("SeLeCt NAME")
        assert tokens[0].value == "select"
        assert tokens[1].value == "name"

    def test_quoted_identifier_preserves_case(self):
        token = tokenize_sql('"Show Name"')[0]
        assert token.kind == QIDENT
        assert token.value == "Show Name"

    def test_string_escape_doubles_quote(self):
        assert tokenize_sql("'it''s'")[0].value == "it's"

    def test_numbers_int_and_float(self):
        tokens = tokenize_sql("7 7.25")
        assert tokens[0].value == 7 and isinstance(tokens[0].value, int)
        assert tokens[1].value == 7.25

    def test_diamond_normalised_to_bang_equals(self):
        ops = [t.value for t in tokenize_sql("a <> b") if t.kind == OP]
        assert ops == ["!="]

    def test_line_comment_skipped(self):
        tokens = tokenize_sql("SELECT -- the works\n1")
        assert [t.kind for t in tokens] == [IDENT, NUMBER, EOF]

    def test_unterminated_string_raises(self):
        with pytest.raises(SqlError):
            tokenize_sql("'oops")

    def test_stray_character_raises(self):
        with pytest.raises(SqlError):
            tokenize_sql("SELECT @")


class TestParserShapes:
    def test_minimal_select_star(self):
        stmt = parse_sql("SELECT * FROM entities")
        assert isinstance(stmt.items[0].expr, Star)
        assert stmt.source.name == "entities"
        assert stmt.where is None and stmt.limit is None

    def test_qualified_star_and_alias(self):
        stmt = parse_sql("SELECT e.* FROM entities e")
        assert stmt.items[0].expr == Star(table="e")
        assert stmt.source.binding == "e"

    def test_item_aliases_explicit_and_implicit(self):
        stmt = parse_sql("SELECT name AS n, year y FROM entities")
        assert stmt.items[0].alias == "n"
        assert stmt.items[1].alias == "y"

    def test_join_clause(self):
        stmt = parse_sql(
            "SELECT * FROM entities e JOIN clusters c ON e.entity_id = c.entity_id"
        )
        assert len(stmt.joins) == 1
        join = stmt.joins[0]
        assert join.table.binding == "c"
        assert join.left == ColumnRef(name="entity_id", table="e")

    def test_inner_join_spelling(self):
        stmt = parse_sql(
            "SELECT * FROM a INNER JOIN b ON a.x = b.x"
        )
        assert len(stmt.joins) == 1

    def test_where_precedence_not_binds_tightest(self):
        stmt = parse_sql(
            "SELECT * FROM t WHERE NOT a = 1 AND b = 2 OR c = 3"
        )
        assert isinstance(stmt.where, Or)
        left, right = stmt.where.terms
        assert isinstance(left, And)
        assert isinstance(left.terms[0], Not)
        assert isinstance(right, Comparison)

    def test_parentheses_override_precedence(self):
        stmt = parse_sql("SELECT * FROM t WHERE a = 1 AND (b = 2 OR c = 3)")
        assert isinstance(stmt.where, And)
        assert isinstance(stmt.where.terms[1], Or)

    def test_is_null_and_is_not_null(self):
        stmt = parse_sql("SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL")
        first, second = stmt.where.terms
        assert isinstance(first, IsNull) and not first.negated
        assert isinstance(second, IsNull) and second.negated

    def test_in_list_and_not_in(self):
        stmt = parse_sql(
            "SELECT * FROM t WHERE a IN (1, 'x', NULL) AND b NOT IN (TRUE)"
        )
        first, second = stmt.where.terms
        assert isinstance(first, InList)
        assert first.values == (1, "x", None)
        assert second.negated

    def test_group_order_limit(self):
        stmt = parse_sql(
            "SELECT year, COUNT(*) AS n FROM entities "
            "GROUP BY year ORDER BY n DESC, year LIMIT 5"
        )
        assert stmt.group_by == (ColumnRef(name="year"),)
        assert stmt.order_by[0].descending is True
        assert stmt.order_by[1].descending is False
        assert stmt.limit == 5

    def test_aggregates_parse(self):
        stmt = parse_sql(
            "SELECT COUNT(*), COUNT(DISTINCT a), SUM(b), AVG(b), MIN(b), MAX(b) FROM t"
        )
        calls = [item.expr for item in stmt.items]
        assert all(isinstance(c, FuncCall) for c in calls)
        assert calls[1].distinct is True

    def test_explain_flag(self):
        assert parse_sql("EXPLAIN SELECT * FROM t").explain is True

    def test_boolean_and_null_literals(self):
        stmt = parse_sql("SELECT TRUE, FALSE, NULL FROM t")
        assert [item.expr for item in stmt.items] == [
            Literal(value=True), Literal(value=False), Literal(value=None)
        ]

    def test_trailing_semicolon_accepted(self):
        parse_sql("SELECT * FROM t;")


class TestParserErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT",                                # no items
            "SELECT * FROM",                         # no table
            "SELECT * FROM t WHERE",                 # no predicate
            "SELECT * FROM t LIMIT -1",              # negative limit
            "SELECT * FROM t LIMIT 1.5",             # non-integer limit
            "SELECT * FROM t GROUP year",            # missing BY
            "SELECT * FROM t ORDER year",            # missing BY
            "SELECT * FROM t extra garbage here = ", # trailing input
            "UPDATE t SET a = 1",                    # not a SELECT
            "SELECT a FROM t WHERE a NOT 5",         # NOT without IN
            "SELECT a FROM t WHERE a IS 5",          # IS without NULL
            "SELECT COUNT(DISTINCT *) FROM t",       # DISTINCT *
            "SELECT a FROM t JOIN u ON a < b",       # non-equality join
            "SELECT select FROM t",                  # reserved as column
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(SqlError):
            parse_sql(bad)

    def test_error_carries_position(self):
        with pytest.raises(SqlError, match="position"):
            parse_sql("SELECT a FROM t WHERE = 5")


class TestCanonicalRender:
    @pytest.mark.parametrize(
        "spelled, canonical",
        [
            (
                "select   name from entities where year=2010",
                "SELECT name FROM entities WHERE year = 2010",
            ),
            (
                "SELECT name FROM entities WHERE year <> 2010",
                "SELECT name FROM entities WHERE year != 2010",
            ),
            (
                "select count(*) n, year from entities group by year order by n desc",
                "SELECT COUNT(*) AS n, year FROM entities "
                "GROUP BY year ORDER BY n DESC",
            ),
            (
                "select distinct e.name from entities as e limit 3;",
                "SELECT DISTINCT e.name FROM entities AS e LIMIT 3",
            ),
            (
                "select * from a join b on a.x = b.x where a.y is not null",
                "SELECT * FROM a JOIN b ON a.x = b.x WHERE a.y IS NOT NULL",
            ),
        ],
    )
    def test_round_trip(self, spelled, canonical):
        assert parse_sql(spelled).render() == canonical

    def test_render_is_reparseable_fixpoint(self):
        queries = [
            "select a, 'it''s' from t where a in (1,2) or not b = true",
            "explain select count(distinct a) from t "
            "group by b order by b desc limit 2",
        ]
        for query in queries:
            rendered = parse_sql(query).render()
            assert parse_sql(rendered).render() == rendered

    def test_two_spellings_share_one_canonical_form(self):
        a = parse_sql("SELECT name,year FROM entities WHERE year>=2000")
        b = parse_sql("select  name , year from entities where year >= 2000")
        assert a.render() == b.render()
