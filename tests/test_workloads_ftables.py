"""Tests for repro.workloads.ftables."""

import pytest

from repro.workloads.ftables import (
    GROUND_TRUTH_GLOBAL_SCHEMA,
    MATILDA_RECORD,
    FTablesGenerator,
)


class TestFTablesGenerator:
    def test_generates_twenty_sources_by_default(self):
        assert len(FTablesGenerator(seed=1).generate()) == 20

    def test_source_sizes_match_paper_statistics(self):
        # "5-20 different attributes and 10-100 rows"
        for source in FTablesGenerator(seed=2).generate():
            assert 5 <= len(source.attribute_names) <= 20
            assert 10 <= len(source.rows) <= 100

    def test_deterministic(self):
        a = FTablesGenerator(seed=3).generate()
        b = FTablesGenerator(seed=3).generate()
        assert [s.source_id for s in a] == [s.source_id for s in b]
        assert a[5].rows == b[5].rows

    def test_archetypes_rotate(self):
        sources = FTablesGenerator(seed=4).generate()
        archetypes = {s.archetype for s in sources}
        assert archetypes == {"schedule", "theater_locations", "discounts"}

    def test_attribute_naming_is_heterogeneous(self):
        sources = FTablesGenerator(seed=5).generate()
        schedule = next(s for s in sources if s.archetype == "schedule")
        locations = next(s for s in sources if s.archetype == "theater_locations")
        assert set(schedule.attribute_names).isdisjoint(locations.attribute_names)

    def test_true_mapping_targets_are_canonical(self):
        generator = FTablesGenerator(seed=6)
        for source in generator.generate():
            mapping = generator.true_mapping_for(source)
            assert set(mapping.values()) <= set(GROUND_TRUTH_GLOBAL_SCHEMA)

    def test_true_mapping_all_union(self):
        combined = FTablesGenerator(seed=0).true_mapping_all()
        assert combined["SHOW_NAME"] == "show_name"
        assert combined["lowest_price"] == "cheapest_price"

    def test_matilda_demo_record_present(self):
        sources = FTablesGenerator(seed=7).generate()
        found_theater = False
        for source in sources:
            mapping = source.attribute_mapping
            reverse = {v: k for k, v in mapping.items()}
            if "theater" not in reverse or "show_name" not in reverse:
                continue
            for row in source.rows:
                if row.get(reverse["show_name"]) == "Matilda" and row.get(
                    reverse["theater"]
                ) == MATILDA_RECORD["theater"]:
                    found_theater = True
        assert found_theater

    def test_dirty_flag_injects_dirt(self):
        clean = FTablesGenerator(seed=8, dirty=False).generate()
        values = [
            str(v)
            for source in clean
            for row in source.rows
            for v in row.values()
        ]
        assert "N/A" not in values

    def test_records_returns_copies(self):
        source = FTablesGenerator(seed=9).generate()[0]
        records = source.records()
        records[0].clear()
        assert source.rows[0]

    def test_seed_records_use_canonical_names(self):
        records = FTablesGenerator(seed=10).seed_records()
        assert records[0]["show_name"] == "Matilda"
        for record in records:
            assert set(record) <= set(GROUND_TRUTH_GLOBAL_SCHEMA)

    def test_invalid_n_sources(self):
        with pytest.raises(ValueError):
            FTablesGenerator(n_sources=0)
