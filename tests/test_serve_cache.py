"""Tests for repro.serve.cache."""

from repro.serve.cache import ResultCache
from repro.serve.protocol import QueryRequest, request_cache_key


def _request(phrase):
    return QueryRequest(op="search", params={"phrase": phrase})


def _put(cache, phrase, token, result=None, refresh=False):
    request = _request(phrase)
    key = request_cache_key(request)
    cache.put(
        key,
        token,
        request,
        result if result is not None else {"count": 0, "entities": []},
        token[1],
        None,
        refresh=refresh,
    )
    return key


class TestResultCache:
    def test_empty_lookup_is_a_miss(self):
        cache = ResultCache(4)
        assert cache.get("k", (1, 1)) is None
        assert cache.stats()["misses"] == 1

    def test_put_then_get_hits_at_same_token(self):
        cache = ResultCache(4)
        key = _put(cache, "matilda", (1, 7), result={"count": 1, "entities": []})
        entry = cache.get(key, (1, 7))
        assert entry is not None
        assert entry.result == {"count": 1, "entities": []}
        assert entry.watermark == 7
        assert cache.stats()["hits"] == 1

    def test_stale_token_misses_but_entry_stays(self):
        cache = ResultCache(4)
        key = _put(cache, "matilda", (1, 7))
        assert cache.get(key, (2, 9)) is None
        stats = cache.stats()
        assert stats["stale_misses"] == 1
        assert stats["entries"] == 1  # kept for the background refresh

    def test_none_key_is_never_stored_or_served(self):
        cache = ResultCache(4)
        cache.put(None, (1, 1), _request("x"), {}, 1, None)
        assert len(cache) == 0
        assert cache.get(None, (1, 1)) is None

    def test_lru_evicts_coldest(self):
        cache = ResultCache(2)
        key_a = _put(cache, "aardvark", (1, 1))
        key_b = _put(cache, "badger", (1, 1))
        cache.get(key_a, (1, 1))  # touch a: b becomes coldest
        key_c = _put(cache, "cheetah", (1, 1))
        assert cache.get(key_a, (1, 1)) is not None
        assert cache.get(key_b, (1, 1)) is None
        assert cache.get(key_c, (1, 1)) is not None

    def test_invalidate_returns_hottest_stale_first(self):
        cache = ResultCache(8)
        key_a = _put(cache, "aardvark", (1, 1))
        key_b = _put(cache, "badger", (1, 1))
        _put(cache, "fresh", (2, 2))
        cache.get(key_a, (1, 1))  # a is now hotter than b
        stale = cache.invalidate((2, 2), limit=8)
        assert [entry.key for entry in stale] == [key_a, key_b]
        assert [entry.key for entry in cache.invalidate((2, 2), limit=1)] == [
            key_a
        ]

    def test_invalidate_leaves_entries_in_place(self):
        cache = ResultCache(8)
        _put(cache, "aardvark", (1, 1))
        cache.invalidate((2, 2), limit=8)
        assert len(cache) == 1

    def test_refresh_overwrites_stale_entry(self):
        cache = ResultCache(8)
        key = _put(cache, "matilda", (1, 7))
        _put(cache, "matilda", (2, 9), result={"count": 5}, refresh=True)
        entry = cache.get(key, (2, 9))
        assert entry is not None and entry.result == {"count": 5}
        assert cache.stats()["refreshes"] == 1

    def test_refresh_of_evicted_entry_is_dropped(self):
        cache = ResultCache(8)
        _put(cache, "gone", (2, 2), refresh=True)
        assert len(cache) == 0

    def test_slow_refresh_never_clobbers_fresher_entry(self):
        cache = ResultCache(8)
        key = _put(cache, "matilda", (1, 1))
        _put(cache, "matilda", (3, 3), result={"count": 3})  # client recompute
        _put(cache, "matilda", (2, 2), result={"count": 2}, refresh=True)
        entry = cache.get(key, (3, 3))
        assert entry is not None and entry.result == {"count": 3}

    def test_refresh_keeps_lru_position(self):
        cache = ResultCache(2)
        key_a = _put(cache, "aardvark", (1, 1))
        key_b = _put(cache, "badger", (1, 1))
        # refreshing a is not a client touch: a must stay the coldest
        _put(cache, "aardvark", (2, 2), refresh=True)
        _put(cache, "cheetah", (2, 2))
        assert cache.get(key_a, (2, 2)) is None
        assert cache.get(key_b, (1, 1)) is not None

    def test_refresh_never_evicts(self):
        cache = ResultCache(1)
        key = _put(cache, "aardvark", (1, 1))
        _put(cache, "aardvark", (2, 2), refresh=True)
        assert len(cache) == 1
        assert cache.get(key, (2, 2)) is not None

    def test_disabled_cache_stores_nothing(self):
        cache = ResultCache(0)
        assert not cache.enabled
        key = _put(cache, "matilda", (1, 1))
        assert cache.get(key, (1, 1)) is None
        assert cache.invalidate((2, 2), limit=8) == []

    def test_stats_shape(self):
        stats = ResultCache(4).stats()
        assert set(stats) == {
            "entries",
            "max_entries",
            "hits",
            "misses",
            "stale_misses",
            "refreshes",
        }
