"""The ``sql`` serve op, the op registry as an extension surface, and the
protocol v1 compatibility goldens.

Three layers of the redesign are pinned here:

* ``sql`` over real sockets — results, watermark-keyed caching by canonical
  form, v2 negotiation (and v1 rejection), counters on the server's hub;
* one-entry extension: registering a single :class:`OpSpec` gives a new
  operation validation, caching, dispatch, and a generated client method
  with no other code;
* recorded v1 request/response pairs (``tests/data/serve_v1_golden.jsonl``)
  replayed byte-for-byte — the v2 server must answer v1 traffic with the
  exact bytes the v1 server produced.
"""

import json
import socket
import threading
from pathlib import Path

import pytest

from repro import DataTamer
from repro.config import ServeConfig
from repro.entity.consolidation import ConsolidatedEntity
from repro.errors import ProtocolError, ServeError
from repro.query.engine import QueryEngine
from repro.serve import (
    OpRegistry,
    OpSpec,
    QueryClient,
    QueryServer,
    evaluate_request,
    serve_in_background,
)
from repro.serve.ops import DEFAULT_REGISTRY
from repro.serve.protocol import QueryRequest, parse_request
from repro.workloads import DedupCorpusGenerator

GOLDEN_PATH = Path(__file__).parent / "data" / "serve_v1_golden.jsonl"

CURATED = [
    {"_id": 1, "_source": "ftable:00", "show_name": "Matilda",
     "theater": "Shubert", "cheapest_price": "$27"},
    {"_id": 2, "_source": "webtext", "show_name": "Matilda",
     "text_feed": "fragment...", "theater": ""},
    {"_id": 3, "_source": "ftable:00", "show_name": "Wicked",
     "theater": "Gershwin"},
]

INSTANCE = [
    {"entity": "Matilda", "entity_type": "Movie"},
    {"entity": "Matilda", "entity_type": "Movie"},
    {"entity": "Wicked", "entity_type": "Movie"},
]


def _entity(eid, attributes):
    return ConsolidatedEntity(
        entity_id=eid,
        member_record_ids=[eid],
        source_ids=["s"],
        attributes=attributes,
    )


def _engine():
    return QueryEngine(
        [
            _entity("e1", {"show_name": "Matilda", "theater": "Shubert",
                           "year": 1996}),
            _entity("e2", {"show_name": "Wicked", "theater": "Gershwin",
                           "year": 2003}),
        ],
        watermark=1,
    )


def _server(**kwargs):
    return QueryServer(
        _engine(),
        config=ServeConfig(),
        curated_documents=lambda: list(CURATED),
        instance_documents=lambda: list(INSTANCE),
        prefer_sources=["ftable:00"],
        **kwargs,
    )


@pytest.fixture
def handle():
    with serve_in_background(_server()) as running:
        yield running


def _client(handle, **kwargs):
    return QueryClient("127.0.0.1", handle.port, **kwargs)


class TestSqlOverTheWire:
    def test_sql_select_with_pushdown(self, handle):
        with _client(handle) as client:
            payload = client.sql(
                "SELECT show_name FROM entities WHERE theater = 'Shubert'"
            )
        assert payload["columns"] == ["show_name"]
        assert payload["rows"] == [["Matilda"]]
        assert payload["stats"]["pushdowns"] == 1
        assert payload["canonical"] == (
            "SELECT show_name FROM entities WHERE theater = 'Shubert'"
        )

    def test_respelled_query_hits_the_same_cache_entry(self, handle):
        with _client(handle) as client:
            first = client.call(
                "sql",
                {"query": "SELECT show_name FROM entities WHERE year = 2003"},
            )
            second = client.call(
                "sql",
                {"query": "select  show_name from entities where year=2003"},
            )
        assert first.cached is False
        assert second.cached is True
        assert first.result == second.result
        assert first.version == second.version

    def test_sql_response_stamps_snapshot(self, handle):
        with _client(handle) as client:
            envelope = client.call(
                "sql", {"query": "SELECT COUNT(*) FROM entities"}
            )
        assert envelope.result["rows"] == [[2]]
        assert (envelope.version, envelope.watermark) == (0, 1)

    def test_explain_over_the_wire(self, handle):
        with _client(handle) as client:
            payload = client.sql(
                "EXPLAIN SELECT show_name FROM entities WHERE year = 1996"
            )
        assert payload["explain"] == [
            "Project[show_name]",
            "  Scan[entities; eq: year = 1996]",
        ]

    def test_sql_requires_protocol_v2(self, handle):
        with _client(handle) as client:
            response = client.request(
                "sql", {"query": "SELECT * FROM entities"}, version=1
            )
        assert response["ok"] is False
        assert "requires protocol version >= 2" in response["error"]["message"]

    def test_invalid_sql_is_a_protocol_error(self, handle):
        with _client(handle) as client:
            with pytest.raises(ServeError, match="query is invalid"):
                client.sql("DELETE FROM entities")

    def test_curation_status_reflects_the_served_view(self, handle):
        with _client(handle) as client:
            payload = client.sql(
                "SELECT version, watermark, entity_count FROM curation_status"
            )
        assert payload["rows"] == [[0, 1, 2]]

    def test_status_v2_lists_ops_v1_does_not(self, handle):
        with _client(handle) as client:
            v1 = client.result("status")
            v2 = client.call("status", version=2).result
        assert "ops" not in v1 and v1["protocol"] == 1
        assert v2["protocol"] == 2
        assert "sql" in v2["ops"]
        assert v2["supported_protocols"] == [1, 2]

    def test_sql_counters_on_the_server_hub(self, handle):
        with _client(handle) as client:
            client.sql("SELECT show_name FROM entities WHERE year = 1996")
            metrics = client.metrics()["metrics"]
        assert metrics["sql_queries_total"]["series"][0]["value"] >= 1
        assert (
            metrics["sql_pushdown_conjuncts_total"]["series"][0]["value"] >= 1
        )


# -- registry as the extension surface --------------------------------------


def _eval_echo(view, request, ctx):
    return {
        "echo": request.params.get("value"),
        "entities": len(view.snapshot),
    }


def _validate_echo(params):
    if not isinstance(params.get("value"), str):
        raise ProtocolError("'echo' requires 'value' as str")


ECHO_SPEC = OpSpec(
    name="echo",
    summary="test-only echo over the pinned view",
    validate=_validate_echo,
    cache_key=lambda request, name_attribute: request.params["value"],
    evaluate=_eval_echo,
)


class TestRegistryExtension:
    def test_one_spec_extends_validation_dispatch_caching_and_client(self):
        registry = OpRegistry(tuple(DEFAULT_REGISTRY.specs()) + (ECHO_SPEC,))
        server = _server(registry=registry)
        with serve_in_background(server) as handle:
            with _client(handle, registry=registry) as client:
                # generated client method, no hand-written alias
                first = client.ops.echo(value="hello")
                second = client.ops.echo(value="hello")
                assert first.result == {"echo": "hello", "entities": 2}
                assert first.cached is False
                assert second.cached is True
                # the registry's validator runs client-side too
                with pytest.raises(ProtocolError, match="'echo' requires"):
                    client.ops.echo(value=7)

    def test_default_registry_still_rejects_the_custom_op(self, handle):
        with _client(handle) as client:
            response = client.request("echo", {"value": "x"})
        assert response["ok"] is False
        assert "unknown operation" in response["error"]["message"]

    def test_parse_request_honours_the_custom_registry(self):
        registry = OpRegistry(tuple(DEFAULT_REGISTRY.specs()) + (ECHO_SPEC,))
        line = '{"op": "echo", "params": {"value": "x"}}'
        with pytest.raises(ProtocolError, match="unknown operation"):
            parse_request(line)
        assert parse_request(line, registry).op == "echo"


# -- concurrent publishes vs. the sequential oracle --------------------------

N_CLIENTS = 3
REQUESTS_PER_CLIENT = 18
PUBLISH_ROUNDS = 4


def _canonical(payload):
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )


def _sql_workload(names):
    queries = []
    for i in range(REQUESTS_PER_CLIENT):
        name = names[i % len(names)].replace("'", "''")
        queries.append(
            [
                f"SELECT entity_id, name FROM entities WHERE name = '{name}'",
                "SELECT COUNT(*) AS n FROM entities",
                "SELECT name FROM entities ORDER BY name LIMIT 5",
                "SELECT version, watermark, entity_count FROM curation_status",
                f"EXPLAIN SELECT name FROM entities WHERE name = '{name}'",
                "SELECT size, COUNT(*) AS n FROM entities "
                "GROUP BY size ORDER BY n DESC, size",
            ][i % 6]
        )
    return queries


@pytest.fixture
def stack(small_config):
    tamer = DataTamer(small_config)
    corpus = DedupCorpusGenerator(seed=43).generate(n_entities=32)
    tamer.train_dedup_model(corpus.pairs)
    seed, updates = corpus.records[:12], corpus.records[12:]
    for record in seed:
        tamer.curated_collection.insert(dict(record.as_dict(), _source="seed"))
    stream = tamer.start_stream(key_attribute="name")
    server = tamer.create_server(key_attribute="name")
    yield tamer, stream, server, seed, updates
    tamer.close()


class TestConcurrentSqlServing:
    def test_sql_under_publishes_matches_sequential_oracle(self, stack):
        tamer, stream, server, seed, updates = stack
        views = {server.view.version: server.view}

        def record(_snapshot):
            view = server.view
            views[view.version] = view

        unsubscribe = stream.subscribe_snapshots(record)
        names = [record_.as_dict()["name"] for record_ in seed[:6]]
        start = threading.Barrier(N_CLIENTS + 1)
        responses = [[] for _ in range(N_CLIENTS)]
        errors = []

        def client_thread(idx):
            try:
                with QueryClient("127.0.0.1", handle.port) as client:
                    start.wait()
                    for query in _sql_workload(names):
                        responses[idx].append(
                            (
                                query,
                                client.request(
                                    "sql", {"query": query}, version=2
                                ),
                            )
                        )
            except Exception as exc:  # surfaced by the main assertion
                errors.append((idx, repr(exc)))

        with serve_in_background(server) as handle:
            threads = [
                threading.Thread(target=client_thread, args=(i,))
                for i in range(N_CLIENTS)
            ]
            for thread in threads:
                thread.start()
            start.wait()
            chunk = max(1, len(updates) // PUBLISH_ROUNDS)
            for round_ in range(PUBLISH_ROUNDS):
                for record_ in updates[round_ * chunk : (round_ + 1) * chunk]:
                    tamer.curated_collection.insert(
                        dict(record_.as_dict(), _source=f"u{round_}")
                    )
                stream.query_engine()
            for thread in threads:
                thread.join(timeout=60)
        unsubscribe()

        assert errors == []
        assert all(not t.is_alive() for t in threads)
        assert len(views) > 1, "no publish landed during traffic"

        oracle_cache = {}
        for idx, client_log in enumerate(responses):
            assert len(client_log) == REQUESTS_PER_CLIENT
            last_version = -1
            for query, response in client_log:
                assert response["ok"], (idx, query, response)
                version = response["version"]
                assert version in views, (idx, query, version, sorted(views))
                view = views[version]
                assert response["watermark"] == view.watermark
                assert version >= last_version
                last_version = version
                cache_key = (version, query)
                if cache_key not in oracle_cache:
                    oracle_cache[cache_key] = _canonical(
                        evaluate_request(
                            view,
                            QueryRequest(
                                op="sql", params={"query": query}, version=2
                            ),
                            "name",
                        )
                    )
                assert (
                    _canonical(response["result"]) == oracle_cache[cache_key]
                ), (idx, query, version)

        # pushdown observable end-to-end: the equality workload must have
        # been served by indexes, not scans alone
        registry = server._hub.registry
        assert registry.counter("sql_queries_total").value > 0
        assert registry.counter("sql_pushdown_conjuncts_total").value > 0


# -- v1 golden pairs ---------------------------------------------------------


class TestV1Goldens:
    def test_recorded_v1_traffic_replays_byte_for_byte(self, handle):
        pairs = [
            json.loads(line)
            for line in GOLDEN_PATH.read_text().splitlines()
            if line.strip()
        ]
        assert pairs, "golden fixture is empty"
        with socket.create_connection(
            ("127.0.0.1", handle.port), timeout=30
        ) as sock:
            stream = sock.makefile("rwb")
            for pair in pairs:
                stream.write(pair["request"].encode("utf-8") + b"\n")
                stream.flush()
                line = stream.readline().decode("utf-8").rstrip("\n")
                assert line == pair["response"], pair["request"]

    def test_goldens_cover_every_v1_operation_shape(self):
        ops = {
            json.loads(json.loads(line)["request"]).get("op")
            for line in GOLDEN_PATH.read_text().splitlines()
            if line.strip()
        }
        # every snapshot-pinned v1 op, the live ping, and two error shapes
        assert {
            "ping", "find_equal", "search", "lookup_show", "top_k", "fuse",
            "sql", "drop_tables",
        } <= ops
