"""Resilience policies of the serving tier, end to end over real sockets.

Covers admission control (load shedding with ``retry_after``), per-request
deadlines, degraded stale-cache reads, graceful drain on stop and SIGTERM,
and the client's reconnect/retry/backoff behaviour — including the
regression where a killed server leaked raw ``ConnectionError`` out of
:class:`QueryClient`.
"""

import os
import signal
import threading
import time

import pytest

from repro.config import ServeConfig
from repro.entity.consolidation import ConsolidatedEntity
from repro.errors import ConfigError, ServeError
from repro.fault import FaultPlan, FaultRule
from repro.obs import TelemetryHub
from repro.query.engine import QueryEngine
from repro.serve import QueryClient, QueryServer, serve_in_background

CURATED = [
    {"_id": 1, "_source": "ftable:00", "show_name": "Matilda",
     "theater": "Shubert", "cheapest_price": "$27"},
    {"_id": 2, "_source": "ftable:00", "show_name": "Wicked",
     "theater": "Gershwin"},
]


def _engine():
    return QueryEngine(
        [
            ConsolidatedEntity(
                entity_id="e1",
                member_record_ids=["e1"],
                source_ids=["s"],
                attributes={"show_name": "Matilda", "theater": "Shubert"},
            ),
            ConsolidatedEntity(
                entity_id="e2",
                member_record_ids=["e2"],
                source_ids=["s"],
                attributes={"show_name": "Wicked", "theater": "Gershwin"},
            ),
        ],
        watermark=1,
    )


class _StubStream:
    """Just enough stream surface for the degraded-read predicate."""

    def __init__(self, pending=0):
        self.pending_events = pending

    def subscribe_snapshots(self, callback):
        return lambda: None


def _server(stream=None, hub=None, **config_kwargs):
    return QueryServer(
        _engine(),
        config=ServeConfig(**config_kwargs),
        stream=stream,
        curated_documents=lambda: list(CURATED),
        hub=hub,
    )


def _delay_plan(seconds, times=None):
    return FaultPlan(
        seed=5,
        rules=(
            FaultRule("serve.evaluate", "delay", seconds=seconds, times=times),
        ),
    )


class TestConfigKnobs:
    def test_resilience_knobs_validate(self):
        ServeConfig(
            max_inflight=2,
            request_deadline=0.5,
            retry_after_seconds=0.1,
            degraded_after_seconds=1.0,
            drain_timeout=2.0,
        ).validate()
        for bad in (
            {"max_inflight": -1},
            {"request_deadline": -0.1},
            {"retry_after_seconds": 0.0},
            {"degraded_after_seconds": -1.0},
            {"drain_timeout": -1.0},
        ):
            with pytest.raises(ConfigError):
                ServeConfig(**bad).validate()


class TestClientResilience:
    def test_killed_server_surfaces_serve_error_not_connection_error(self):
        # the regression: a dead server must not leak raw socket errors
        handle = serve_in_background(_server())
        client = QueryClient("127.0.0.1", handle.port).connect()
        assert client.ping() == {"pong": True, "protocol": 1}
        handle.stop()
        with pytest.raises(ServeError):
            for _ in range(3):  # first send may land in a dying buffer
                client.request("ping")
        client.close()
        client.close()  # idempotent, even against a dead peer

    def test_close_is_idempotent_without_connect(self):
        client = QueryClient("127.0.0.1", 1)
        client.close()
        client.close()
        with pytest.raises(ServeError, match="not connected"):
            client.request("ping")

    def test_client_reconnects_to_restarted_server(self):
        first = serve_in_background(_server())
        port = first.port
        client = QueryClient(
            "127.0.0.1", port, retries=4, backoff_base=0.02, jitter_seed=11
        ).connect()
        assert client.ping()["pong"] is True
        first.stop()
        second = serve_in_background(_server(port=port))
        try:
            assert client.ping()["pong"] is True
            assert client.reconnects >= 1
            assert client.retries_used >= 1
        finally:
            client.close()
            second.stop()

    def test_retry_budget_exhaustion_chains_the_cause(self):
        handle = serve_in_background(_server())
        client = QueryClient(
            "127.0.0.1", handle.port, retries=1, backoff_base=0.01
        ).connect()
        # one served request first: a connection still sitting un-accepted
        # in the listen backlog when the server stops gets no FIN at all
        assert client.ping()["pong"] is True
        handle.stop()
        with pytest.raises(ServeError, match="after 2 attempt"):
            for _ in range(3):
                client.request("ping")
        client.close()


class TestAdmissionControl:
    def test_overload_is_shed_with_retry_after(self):
        hub = TelemetryHub()
        server = _server(
            hub=hub,
            max_inflight=1,
            retry_after_seconds=0.07,
            cache_size=0,  # force every request through the workers
            fault_plan=_delay_plan(0.4, times=1),
        )
        handle = serve_in_background(server)
        slow = QueryClient("127.0.0.1", handle.port).connect()
        fast = QueryClient("127.0.0.1", handle.port).connect()
        try:
            done = []
            worker = threading.Thread(
                target=lambda: done.append(slow.search("matilda"))
            )
            worker.start()
            time.sleep(0.1)  # the slow evaluation now owns the only slot
            response = fast.request("search", {"phrase": "wicked"})
            worker.join()
            assert response["ok"] is False
            assert response["error"]["type"] == "Overloaded"
            assert response["error"]["retry_after"] == 0.07
            assert done and done[0]["count"] == 1
            status = fast.status()
            assert status["resilience"]["shed"] == 1
        finally:
            slow.close()
            fast.close()
            handle.stop()

    def test_client_retries_through_a_shed(self):
        server = _server(
            max_inflight=1,
            retry_after_seconds=0.05,
            cache_size=0,
            fault_plan=_delay_plan(0.3, times=1),
        )
        handle = serve_in_background(server)
        slow = QueryClient("127.0.0.1", handle.port).connect()
        patient = QueryClient(
            "127.0.0.1", handle.port, retries=8, backoff_base=0.05,
            jitter_seed=3,
        ).connect()
        try:
            worker = threading.Thread(target=lambda: slow.search("matilda"))
            worker.start()
            time.sleep(0.1)
            result = patient.search("wicked")  # shed, backs off, then lands
            worker.join()
            assert result["count"] == 1
            assert patient.retries_used >= 1
        finally:
            slow.close()
            patient.close()
            handle.stop()


class TestRequestDeadline:
    def test_slow_evaluation_is_cut_off(self):
        hub = TelemetryHub()
        server = _server(
            hub=hub,
            request_deadline=0.1,
            cache_size=0,
            fault_plan=_delay_plan(0.6, times=1),
        )
        handle = serve_in_background(server)
        try:
            with QueryClient("127.0.0.1", handle.port) as client:
                start = time.perf_counter()
                response = client.request("search", {"phrase": "matilda"})
                elapsed = time.perf_counter() - start
                assert response["ok"] is False
                assert response["error"]["type"] == "DeadlineExceeded"
                assert elapsed < 0.5  # answered by deadline, not by evaluate
                # the next (fault-free) request works and is fast
                assert client.search("matilda")["count"] == 1
                assert client.status()["resilience"]["deadline_misses"] == 1
        finally:
            handle.stop()


class TestDegradedReads:
    def test_stale_entry_served_flagged_when_publishing_stalls(self):
        # refresh_limit=0: the background refresh would re-prime the stale
        # entry to fresh and race the degraded read out of existence
        server = _server(
            stream=_StubStream(pending=5),
            degraded_after_seconds=0.05,
            refresh_limit=0,
        )
        handle = serve_in_background(server)
        try:
            with QueryClient("127.0.0.1", handle.port) as client:
                fresh = client.request("search", {"phrase": "matilda"})
                assert fresh["ok"] is True and "degraded" not in fresh
                # a mention refresh rotates the view token, so the cached
                # entry goes stale; then backdate the last publish so the
                # degraded predicate sees a wedged pipeline
                server.refresh_mentions()
                server._last_publish = time.monotonic() - 60.0
                stale = client.request("search", {"phrase": "matilda"})
                assert stale["ok"] is True
                assert stale["degraded"] is True
                assert stale["cached"] is True
                assert stale["result"] == fresh["result"]
                status = client.status()
                assert status["degraded"] is True
                assert status["resilience"]["degraded_served"] >= 1
        finally:
            handle.stop()

    def test_no_degraded_flag_while_publishing_is_healthy(self):
        server = _server(
            stream=_StubStream(pending=5), degraded_after_seconds=30.0
        )
        handle = serve_in_background(server)
        try:
            with QueryClient("127.0.0.1", handle.port) as client:
                server.refresh_mentions()
                response = client.request("search", {"phrase": "matilda"})
                assert response["ok"] is True
                assert "degraded" not in response
                assert client.status()["degraded"] is False
        finally:
            handle.stop()


class TestGracefulShutdown:
    def test_inflight_request_completes_before_sockets_close(self):
        server = _server(fault_plan=_delay_plan(0.3, times=1))
        handle = serve_in_background(server)
        client = QueryClient("127.0.0.1", handle.port).connect()
        try:
            responses = []
            worker = threading.Thread(
                target=lambda: responses.append(client.search("matilda"))
            )
            worker.start()
            time.sleep(0.1)  # the slow request is now in flight
            handle.stop()  # drain: the response must still arrive intact
            worker.join(timeout=5.0)
            assert responses and responses[0]["count"] == 1
        finally:
            client.close()

    def test_concurrent_client_never_sees_a_reset(self):
        server = _server()
        handle = serve_in_background(server)
        client = QueryClient("127.0.0.1", handle.port).connect()
        failures = []
        stop_seen = threading.Event()

        def hammer():
            try:
                while not stop_seen.is_set():
                    client.ping()
            except ServeError:
                pass  # clean EOF maps here; that is the graceful outcome
            except Exception as exc:  # raw resets are the bug
                failures.append(exc)

        worker = threading.Thread(target=hammer)
        worker.start()
        time.sleep(0.15)
        handle.stop()
        stop_seen.set()
        worker.join(timeout=5.0)
        client.close()
        assert failures == []

    def test_sigterm_triggers_graceful_drain(self):
        server = _server()
        handle = serve_in_background(server, handle_sigterm=True)
        with QueryClient("127.0.0.1", handle.port) as client:
            assert client.ping()["pong"] is True
        os.kill(os.getpid(), signal.SIGTERM)
        handle.thread.join(timeout=5.0)
        assert not handle.thread.is_alive()
        handle.stop()  # restores the previous SIGTERM disposition
        assert signal.getsignal(signal.SIGTERM) is signal.SIG_DFL

    def test_handle_sigterm_outside_main_thread_is_rejected(self):
        caught = []

        def run():
            try:
                serve_in_background(_server(), handle_sigterm=True)
            except ServeError as exc:
                caught.append(exc)

        thread = threading.Thread(target=run)
        thread.start()
        thread.join()
        assert caught
