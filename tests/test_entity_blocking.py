"""Tests for repro.entity.blocking."""

import pytest

from repro.entity.blocking import (
    NGramBlocker,
    SortedNeighborhoodBlocker,
    TokenBlocker,
    full_pairs,
    make_blocker,
)
from repro.entity.record import Record
from repro.errors import EntityResolutionError


def _records(names):
    return [
        Record.from_dict(f"r{i}", "s", {"name": name}) for i, name in enumerate(names)
    ]


NAMES = [
    "Matilda the Musical",
    "Matilda",
    "Wicked",
    "Wicked the Untold Story",
    "Chicago",
    "Once",
]


class TestFullPairs:
    def test_counts(self):
        records = _records(NAMES)
        pairs = full_pairs(records)
        assert len(pairs) == len(NAMES) * (len(NAMES) - 1) // 2

    def test_pairs_are_canonical_order(self):
        pairs = full_pairs(_records(["a", "b"]))
        assert all(a <= b for a, b in pairs)


class TestTokenBlocker:
    def test_shared_token_records_paired(self):
        result = TokenBlocker(key_attribute="name").block(_records(NAMES))
        assert ("r0", "r1") in result.pairs  # both contain "matilda"
        assert ("r2", "r3") in result.pairs  # both contain "wicked"

    def test_disjoint_records_not_paired(self):
        result = TokenBlocker(key_attribute="name").block(_records(NAMES))
        assert ("r4", "r5") not in result.pairs

    def test_reduction_ratio_positive(self):
        result = TokenBlocker(key_attribute="name").block(_records(NAMES))
        assert 0.0 < result.reduction_ratio <= 1.0
        assert result.candidate_count < result.full_pair_count

    def test_pair_completeness(self):
        result = TokenBlocker(key_attribute="name").block(_records(NAMES))
        assert result.pair_completeness([("r0", "r1")]) == 1.0
        assert result.pair_completeness([("r4", "r5")]) == 0.0
        assert result.pair_completeness([]) == 1.0

    def test_oversized_blocks_dropped(self):
        records = _records(["common token"] * 20)
        result = TokenBlocker(key_attribute="name", max_block_size=5).block(records)
        assert result.pairs == set()

    def test_min_token_length_filters_short_tokens(self):
        records = _records(["a x", "a y"])
        result = TokenBlocker(key_attribute="name", min_token_length=2).block(records)
        assert result.pairs == set()

    def test_whole_record_blob_used_without_key(self):
        records = [
            Record.from_dict("r0", "s", {"a": "Matilda", "b": "ignored"}),
            Record.from_dict("r1", "s", {"c": "matilda show"}),
        ]
        result = TokenBlocker().block(records)
        assert ("r0", "r1") in result.pairs

    def test_invalid_max_block_size(self):
        with pytest.raises(EntityResolutionError):
            TokenBlocker(max_block_size=1)


class TestNGramBlocker:
    def test_typos_still_blocked_together(self):
        records = _records(["Shubert Theatre", "Shubert Theatr", "Palace"])
        result = NGramBlocker(key_attribute="name", n=4).block(records)
        assert ("r0", "r1") in result.pairs

    def test_invalid_n(self):
        with pytest.raises(EntityResolutionError):
            NGramBlocker(n=1)

    def test_blocks_recorded(self):
        result = NGramBlocker(key_attribute="name").block(_records(NAMES))
        assert result.blocks  # at least one surviving block


class TestSortedNeighborhoodBlocker:
    def test_window_pairs_neighbors(self):
        records = _records(["aaa", "aab", "zzz"])
        result = SortedNeighborhoodBlocker(key_attribute="name", window=2).block(
            records
        )
        assert ("r0", "r1") in result.pairs
        assert ("r0", "r2") not in result.pairs

    def test_window_of_full_length_pairs_everything(self):
        records = _records(NAMES)
        result = SortedNeighborhoodBlocker(
            key_attribute="name", window=len(NAMES)
        ).block(records)
        assert result.candidate_count == result.full_pair_count

    def test_invalid_window(self):
        with pytest.raises(EntityResolutionError):
            SortedNeighborhoodBlocker(window=1)


class TestMakeBlocker:
    def test_factory_strategies(self):
        assert isinstance(make_blocker("token"), TokenBlocker)
        assert isinstance(make_blocker("ngram"), NGramBlocker)
        assert isinstance(make_blocker("sorted"), SortedNeighborhoodBlocker)
        assert make_blocker("none") is None

    def test_unknown_strategy(self):
        with pytest.raises(EntityResolutionError):
            make_blocker("magic")
