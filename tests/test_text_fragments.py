"""Tests for repro.text.fragments."""

import pytest

from repro.text.fragments import FragmentExtractor


TEXT = (
    "The season opened quietly. Matilda grossed 960,998 this week. "
    "Critics were surprised. Other shows struggled badly."
)


def _mention(text, needle, canonical="Matilda", entity_type="Movie"):
    start = text.index(needle)
    return (canonical, entity_type, start, start + len(needle))


class TestFragmentExtractor:
    def test_fragment_contains_mention_sentence(self):
        extractor = FragmentExtractor(context_sentences=0)
        frags = extractor.extract(TEXT, "doc1", [_mention(TEXT, "Matilda")])
        assert len(frags) == 1
        assert "Matilda grossed" in frags[0].text
        assert "season opened" not in frags[0].text

    def test_context_sentences_extend_window(self):
        extractor = FragmentExtractor(context_sentences=1)
        frags = extractor.extract(TEXT, "doc1", [_mention(TEXT, "Matilda")])
        assert "season opened" in frags[0].text
        assert "Critics were surprised" in frags[0].text

    def test_one_fragment_per_mention(self):
        extractor = FragmentExtractor()
        mentions = [
            _mention(TEXT, "Matilda"),
            _mention(TEXT, "Critics", "Critics", "Person"),
        ]
        frags = extractor.extract(TEXT, "doc1", mentions)
        assert len(frags) == 2

    def test_fragment_records_source_and_entity(self):
        extractor = FragmentExtractor()
        frag = extractor.extract(TEXT, "docX", [_mention(TEXT, "Matilda")])[0]
        assert frag.source_id == "docX"
        assert frag.entity_canonical == "Matilda"
        assert frag.entity_type == "Movie"

    def test_max_fragment_chars_truncates(self):
        extractor = FragmentExtractor(context_sentences=0, max_fragment_chars=20)
        frags = extractor.extract(TEXT, "doc1", [_mention(TEXT, "Matilda")])
        assert len(frags[0].text) <= 24  # 20 + ellipsis
        assert frags[0].text.endswith("...")

    def test_empty_inputs(self):
        extractor = FragmentExtractor()
        assert extractor.extract("", "d", [_mention(TEXT, "Matilda")]) == []
        assert extractor.extract(TEXT, "d", []) == []

    def test_text_without_terminal_punctuation(self):
        text = "Matilda is playing downtown"
        extractor = FragmentExtractor()
        frags = extractor.extract(text, "d", [_mention(text, "Matilda")])
        assert frags[0].text == text

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FragmentExtractor(context_sentences=-1)
        with pytest.raises(ValueError):
            FragmentExtractor(max_fragment_chars=0)

    def test_as_document_shape(self):
        extractor = FragmentExtractor()
        frag = extractor.extract(TEXT, "doc1", [_mention(TEXT, "Matilda")])[0]
        doc = frag.as_document()
        assert set(doc) == {
            "text_feed", "source_id", "entity", "entity_type", "char_start", "char_end",
        }

    def test_char_span_points_into_original_text(self):
        extractor = FragmentExtractor(context_sentences=0)
        frag = extractor.extract(TEXT, "doc1", [_mention(TEXT, "Matilda")])[0]
        assert TEXT[frag.char_start:frag.char_end].strip() == frag.text
