"""Tests for repro.query.topk."""

import pytest

from repro.query.topk import MentionCounter, top_k_discussed


def _fragment(entity, entity_type="Movie"):
    return {"entity": entity, "entity_type": entity_type, "text_feed": "..."}


class TestMentionCounter:
    def test_counts_mentions(self):
        counter = MentionCounter()
        counter.add_fragments([_fragment("Matilda")] * 3 + [_fragment("Wicked")])
        assert counter.count_for("Matilda") == 3
        assert counter.count_for("Wicked") == 1
        assert counter.count_for("Absent") == 0

    def test_top_ordering(self):
        counter = MentionCounter()
        counter.add_fragments(
            [_fragment("A")] * 5 + [_fragment("B")] * 3 + [_fragment("C")] * 1
        )
        top = counter.top(2)
        assert [m.entity for m in top] == ["A", "B"]
        assert top[0].mentions == 5

    def test_type_filter(self):
        counter = MentionCounter()
        counter.add_fragments(
            [_fragment("Matilda", "Movie")] * 2 + [_fragment("Shubert", "Facility")] * 5
        )
        top = counter.top(10, entity_types=["Movie"])
        assert [m.entity for m in top] == ["Matilda"]

    def test_fragments_without_entity_ignored(self):
        counter = MentionCounter()
        counter.add_fragment({"text_feed": "no entity field"})
        assert counter.top(5) == []

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            MentionCounter().top(0)

    def test_unknown_type_label(self):
        counter = MentionCounter()
        counter.add_fragment({"entity": "X"})
        assert counter.top(1)[0].entity_type == "unknown"


class TestTopKDiscussed:
    def test_against_collection(self, document_store):
        collection = document_store.create_collection("instance")
        collection.insert_many(
            [_fragment("Matilda")] * 4
            + [_fragment("The Walking Dead")] * 7
            + [_fragment("Shubert", "Facility")] * 10
        )
        ranking = top_k_discussed(collection, k=2, entity_types=("Movie",))
        assert [m.entity for m in ranking] == ["The Walking Dead", "Matilda"]
        assert ranking[0].mentions == 7

    def test_k_limits_results(self, document_store):
        collection = document_store.create_collection("instance")
        collection.insert_many([_fragment(f"Show {i}") for i in range(20)])
        assert len(top_k_discussed(collection, k=10)) == 10
