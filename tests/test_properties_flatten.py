"""Property-based tests for hierarchical flattening (round-trip invariant)."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ingest.flatten import flatten_document, unflatten_document

# Keys must not contain the separator or look like list indices.
_keys = st.text(alphabet=string.ascii_lowercase + "_", min_size=1, max_size=8)
_scalars = st.one_of(
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(alphabet=string.printable, max_size=20),
    st.booleans(),
    st.none(),
)


def _documents(max_depth=3):
    return st.recursive(
        _scalars,
        lambda children: st.one_of(
            st.dictionaries(_keys, children, min_size=1, max_size=4),
            st.lists(children, min_size=1, max_size=4),
        ),
        max_leaves=12,
    )


_nonempty_docs = st.dictionaries(_keys, _documents(), min_size=1, max_size=5)


@given(_nonempty_docs)
@settings(max_examples=120, deadline=None)
def test_flatten_unflatten_roundtrip(document):
    """unflatten(flatten(d)) == d for documents without empty containers."""
    flat = flatten_document(document)
    assert unflatten_document(flat) == document


@given(_nonempty_docs)
@settings(max_examples=120, deadline=None)
def test_flatten_produces_only_scalars(document):
    flat = flatten_document(document)
    for value in flat.values():
        assert not isinstance(value, (dict, list, tuple))


@given(_nonempty_docs)
@settings(max_examples=80, deadline=None)
def test_flatten_is_deterministic(document):
    assert flatten_document(document) == flatten_document(document)


@given(st.dictionaries(_keys, _scalars, min_size=1, max_size=8))
@settings(max_examples=80, deadline=None)
def test_flat_documents_are_fixed_points(document):
    """Already-flat documents are unchanged by flattening."""
    assert flatten_document(document) == document
