"""Chaos suite: seeded fault schedules against the live stack.

Each test arms a deterministic :class:`~repro.fault.FaultPlan` (seed taken
from the ``CHAOS_SEED`` environment variable, default 7 — CI runs a small
seed matrix) and drives a real workload through it:

* concurrent retrying clients against a live server while a writer keeps
  publishing, with socket reads aborted and evaluations delayed at random;
* the persistent process pool with a hung worker and seeded compute
  crashes, racing the dispatch-deadline watchdog;
* a changelog whose writer dies mid-line (a torn write), then recovery.

The assertions are the stack's standing invariants — responses
bit-identical to the sequential oracle, monotonic reads per connection,
recovery reproducing the last durable state — which must hold under every
schedule, not just the happy path.  When an invariant breaks, the fired
fault schedule is dumped to ``chaos_artifacts/`` so CI can upload it and
the failure replays exactly (same seed, same schedule).
"""

import contextlib
import json
import os
import threading
from pathlib import Path

import pytest

from repro import DataTamer, TamerConfig
from repro.config import EntityConfig, ExecConfig, ServeConfig
from repro.errors import InjectedFault
from repro.exec import PersistentWorkerPool
from repro.fault import FaultInjector, FaultPlan, FaultRule
from repro.serve import QueryClient, serve_in_background
from repro.serve.protocol import QueryRequest
from repro.serve.server import evaluate_request
from repro.storage.persistence import ChangelogWriter, recover_collection
from repro.stream import tail_collection
from repro.stream.changelog import Changelog
from repro.workloads import DedupCorpusGenerator

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "7"))
ARTIFACT_DIR = Path(__file__).resolve().parent.parent / "chaos_artifacts"

N_CLIENTS = 3
REQUESTS_PER_CLIENT = 30
PUBLISH_ROUNDS = 5


def _canonical(payload):
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )


@contextlib.contextmanager
def _schedule_artifact(name, *injector_sources):
    """Dump the fired fault schedules if the block fails, then re-raise.

    ``injector_sources`` are zero-arg callables resolved at failure time
    (the injector may live on an object that is rebuilt mid-test).
    """
    try:
        yield
    except BaseException:
        ARTIFACT_DIR.mkdir(exist_ok=True)
        schedules = []
        for source in injector_sources:
            injector = source()
            dump = getattr(injector, "schedule_dump", None)
            if dump is not None:
                schedules.append(dump())
        path = ARTIFACT_DIR / f"{name}-seed{CHAOS_SEED}.json"
        path.write_text(
            json.dumps(
                {"seed": CHAOS_SEED, "test": name, "schedules": schedules},
                indent=2,
                default=str,
            ),
            encoding="utf-8",
        )
        raise


# -- serving under connection and evaluation faults -------------------------


def _serve_chaos_plan() -> FaultPlan:
    return FaultPlan(
        seed=CHAOS_SEED,
        rules=(
            # aborted reads force client reconnects mid-traffic
            FaultRule("serve.socket_read", "error", p=0.08),
            # slow evaluations shuffle response interleavings
            FaultRule("serve.evaluate", "delay", seconds=0.02, p=0.15),
        ),
    )


def _chaos_stack(backend):
    config = TamerConfig.small()
    config.entity = EntityConfig(blocking_strategy="token")
    config.execution = ExecConfig(
        parallelism=2, backend=backend, dispatch_deadline=10.0
    )
    tamer = DataTamer(config.validate())
    corpus = DedupCorpusGenerator(seed=41).generate(n_entities=40)
    tamer.train_dedup_model(corpus.pairs)
    seed, updates = corpus.records[:16], corpus.records[16:]
    for record in seed:
        tamer.curated_collection.insert(dict(record.as_dict(), _source="seed"))
    stream = tamer.start_stream(key_attribute="name")
    server = tamer.create_server(
        key_attribute="name",
        serve_config=ServeConfig(fault_plan=_serve_chaos_plan()),
    )
    return tamer, stream, server, seed, updates


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_serving_invariants_hold_under_connection_chaos(backend):
    tamer, stream, server, seed, updates = _chaos_stack(backend)
    try:
        with _schedule_artifact(f"serve-{backend}", lambda: server._faults):
            views = {server.view.version: server.view}

            def record(_snapshot):
                view = server.view
                views[view.version] = view

            unsubscribe = stream.subscribe_snapshots(record)
            names = [record_.as_dict()["name"] for record_ in seed[:8]]
            start = threading.Barrier(N_CLIENTS + 1)
            logs = [[] for _ in range(N_CLIENTS)]
            errors = []

            def client_thread(idx):
                try:
                    client = QueryClient(
                        "127.0.0.1",
                        handle.port,
                        retries=8,
                        backoff_base=0.01,
                        jitter_seed=idx,
                    ).connect()
                    start.wait()
                    for i in range(REQUESTS_PER_CLIENT):
                        name = names[(idx + i) % len(names)]
                        op, params = [
                            ("find_equal", {"attribute": "name", "value": name}),
                            ("search", {"phrase": name}),
                            ("lookup_show", {"show_name": name}),
                            ("top_k", {"k": 5}),
                            ("fuse", {"show_name": name}),
                        ][i % 5]
                        response = client.request(op, dict(params))
                        # tag with the connection epoch: a reconnect opens
                        # a new session, restarting the monotonic guarantee
                        logs[idx].append(
                            (op, params, response, client.reconnects)
                        )
                    client.close()
                except Exception as exc:
                    errors.append((idx, repr(exc)))

            with serve_in_background(server) as handle:
                threads = [
                    threading.Thread(target=client_thread, args=(i,))
                    for i in range(N_CLIENTS)
                ]
                for thread in threads:
                    thread.start()
                start.wait()
                chunk = max(1, len(updates) // PUBLISH_ROUNDS)
                for round_ in range(PUBLISH_ROUNDS):
                    for record_ in updates[
                        round_ * chunk : (round_ + 1) * chunk
                    ]:
                        tamer.curated_collection.insert(
                            dict(record_.as_dict(), _source=f"u{round_}")
                        )
                    stream.query_engine()
                for thread in threads:
                    thread.join(timeout=120)
            unsubscribe()

            assert errors == []
            assert all(not t.is_alive() for t in threads)
            # the schedule actually did something: reads were aborted
            assert server._faults.fired("serve.socket_read") > 0

            oracle_cache = {}
            for idx, client_log in enumerate(logs):
                assert len(client_log) == REQUESTS_PER_CLIENT
                last = (-1, -1)  # (connection epoch, version)
                for op, params, response, epoch in client_log:
                    assert response["ok"], (idx, op, params, response)
                    version = response["version"]
                    assert version in views, (idx, op, version, sorted(views))
                    view = views[version]
                    assert response["watermark"] == view.watermark
                    # monotonic reads within each connection epoch
                    if epoch == last[0]:
                        assert version >= last[1], (idx, op, epoch, version)
                    last = (epoch, version)
                    cache_key = (version, op, _canonical(params))
                    if cache_key not in oracle_cache:
                        oracle_cache[cache_key] = _canonical(
                            evaluate_request(
                                view,
                                QueryRequest(op=op, params=params),
                                "name",
                            )
                        )
                    assert (
                        _canonical(response["result"])
                        == oracle_cache[cache_key]
                    ), (idx, op, params, version)
    finally:
        tamer.close()


# -- the pool under hangs and crashes ---------------------------------------


def _square(value):
    return value * value


def test_pool_chaos_hangs_and_crashes_stay_bit_identical():
    # one guaranteed hang (task 2, first attempt) races the watchdog; on
    # top, seeded compute crashes (re-dispatch gets a fresh attempt key,
    # so a crashed task's retry draws again and eventually lands)
    plan = FaultPlan(
        seed=CHAOS_SEED,
        rules=(
            FaultRule(
                "pool.worker_hang", "hang", seconds=30.0, keys=((2, 1),)
            ),
            FaultRule("pool.worker_compute", "crash", p=0.05, times=3),
        ),
    )
    pool = PersistentWorkerPool(
        workers=2, dispatch_deadline=0.5, fault_plan=plan
    )
    with _schedule_artifact("pool", lambda: pool._faults):
        with pool:
            results, _ = pool.run_tasks([(_square, n) for n in range(24)])
            assert results == [n * n for n in range(24)]
            assert pool.hung_respawn_count == 1
            # every crash the schedule fired forced a detected respawn
            crashes = pool._faults.fired("pool.worker_compute")
            assert pool.respawn_count >= crashes + 1


# -- torn changelog writes and recovery -------------------------------------


def test_torn_changelog_write_recovers_last_durable_state(
    document_store, tmp_path
):
    # the op index that tears varies with the seed but is deterministic
    tear_at = 8 + CHAOS_SEED % 13
    plan = FaultPlan(
        seed=CHAOS_SEED,
        rules=(
            FaultRule("changelog.write", "torn", start=tear_at, times=1),
        ),
    )
    injector = FaultInjector(plan)
    path = tmp_path / "chaos.jsonl"
    writer = ChangelogWriter(path, faults=injector)
    source = document_store.create_collection("src")
    tail_collection(source, changelog=Changelog(sink=writer.append))

    with _schedule_artifact("torn-changelog", lambda: injector):
        durable = []
        torn = False
        for step in range(tear_at + 5):
            durable = [dict(doc) for doc in source.scan()]
            try:
                if step % 4 == 3 and durable:
                    source.update(
                        durable[step % len(durable)]["_id"],
                        {"price": step},
                    )
                else:
                    source.insert(
                        {"_id": f"d{step}", "name": f"doc {step}",
                         "_source": "chaos"}
                    )
            except InjectedFault:
                torn = True
                break
        assert torn, "the torn-write schedule never fired"
        assert writer.closed  # the writer died with the torn line

        # the file ends in half a line; recovery must absorb it and land
        # exactly on the state every *completed* op had persisted
        raw = path.read_text(encoding="utf-8")
        assert not raw.endswith("\n")
        target = document_store.create_collection("dst")
        recover_collection(target, path)
        assert [dict(d) for d in target.scan()] == durable
