"""Equivalence and soundness tests for the vectorized scoring kernel.

Two guarantees are enforced here, both **exact** (no tolerances):

1. :class:`repro.entity.kernel.ScoringKernel` produces feature rows that
   are bit-for-bit identical to the scalar reference implementation
   :func:`repro.entity.similarity.pair_features` — for randomized corpora,
   hypothesis-generated records, ``compare_attributes`` restrictions,
   empty/None/numeric/boolean values, and regardless of interning order or
   chunking.

2. :class:`repro.entity.kernel.CandidateFilter` never prunes a pair the
   classifier would have labeled a match at the configured threshold, so
   consolidation output (entities, clusters, matched pairs, scores of
   surviving pairs) is identical with filtering on or off.
"""

import math
import random
import string

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import EntityConfig
from repro.entity.blocking import TokenBlocker, full_pair_count, full_pairs
from repro.entity.consolidation import EntityConsolidator
from repro.entity.dedup import DedupModel
from repro.entity.kernel import CandidateFilter, ScoringKernel, TokenVocabulary
from repro.entity.record import Record
from repro.entity.similarity import FEATURE_NAMES, PairFeatureExtractor, pair_features
from repro.exec import ShardedExecutor
from repro.exec.batch import BatchScorer
from repro.config import ExecConfig
from repro.stream.delta_curation import DeltaCurator
from repro.workloads import DedupCorpusGenerator


def _random_records(seed: int, n: int, max_attrs: int = 6):
    """Messy random records: text, numerics, bools, None, empty strings."""
    rng = random.Random(seed)
    alphabet = string.ascii_letters + "  ,.$&0123456789"

    def value():
        roll = rng.random()
        if roll < 0.15:
            return None
        if roll < 0.25:
            return ""
        if roll < 0.40:
            return rng.randint(-500, 500)
        if roll < 0.50:
            return rng.random() * 100
        if roll < 0.55:
            return rng.random() < 0.5
        return "".join(
            rng.choice(alphabet) for _ in range(rng.randint(0, 28))
        )

    records = []
    for index in range(n):
        attrs = {}
        for _ in range(rng.randint(0, max_attrs)):
            name = "".join(
                rng.choice(string.ascii_lowercase) for _ in range(rng.randint(1, 5))
            )
            attrs[name] = value()
        records.append(Record.from_dict(f"r{index}", "s", attrs))
    return records


def _all_pairs(records):
    ids = [r.record_id for r in records]
    return [(a, b) for i, a in enumerate(ids) for b in ids[i + 1 :]]


def _scalar_matrix(by_id, pairs, compare=None):
    return np.vstack(
        [pair_features(by_id[a], by_id[b], compare) for a, b in pairs]
    )


class TestKernelBitEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
    def test_random_corpora_exact(self, seed):
        records = _random_records(seed, n=14)
        by_id = {r.record_id: r for r in records}
        pairs = _all_pairs(records)
        kernel = ScoringKernel()
        assert np.array_equal(
            kernel.features_for_pairs(by_id, pairs), _scalar_matrix(by_id, pairs)
        )

    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_compare_attributes_restriction_exact(self, seed):
        records = _random_records(seed, n=12)
        by_id = {r.record_id: r for r in records}
        pairs = _all_pairs(records)
        # restrict to a mix of present and absent attribute names
        present = sorted({k for r in records for k in r.as_dict()})[:3]
        compare = present + ["definitely_absent"]
        kernel = ScoringKernel(compare_attributes=compare)
        assert np.array_equal(
            kernel.features_for_pairs(by_id, pairs),
            _scalar_matrix(by_id, pairs, compare),
        )

    def test_dedup_corpus_exact(self):
        corpus = DedupCorpusGenerator(seed=31).generate(
            n_entities=40, variants_per_entity=2
        )
        by_id = {r.record_id: r for r in corpus.records}
        pairs = sorted(TokenBlocker(max_block_size=100).block(corpus.records).pairs)
        kernel = ScoringKernel()
        assert np.array_equal(
            kernel.features_for_pairs(by_id, pairs), _scalar_matrix(by_id, pairs)
        )

    def test_empty_and_degenerate_records(self):
        records = [
            Record.from_dict("a", "s", {}),
            Record.from_dict("b", "s", {"x": None, "y": ""}),
            Record.from_dict("c", "s", {"x": "...", "y": "$$$"}),  # normalizes empty
            Record.from_dict("d", "s", {"x": "hello world", "n": 0}),
            Record.from_dict("e", "s", {"x": "hello world", "n": False}),
        ]
        by_id = {r.record_id: r for r in records}
        pairs = _all_pairs(records)
        kernel = ScoringKernel()
        assert np.array_equal(
            kernel.features_for_pairs(by_id, pairs), _scalar_matrix(by_id, pairs)
        )

    def test_independent_of_interning_order_and_chunking(self):
        records = _random_records(21, n=12)
        by_id = {r.record_id: r for r in records}
        pairs = _all_pairs(records)
        # kernel A interns through featurization in pair order; kernel B
        # pre-interns in reverse, then featurizes pair chunks of 3
        kernel_a = ScoringKernel()
        full = kernel_a.features_for_pairs(by_id, pairs)
        kernel_b = ScoringKernel()
        kernel_b.intern_all(reversed(records))
        chunked = np.vstack(
            [
                kernel_b.features_for_pairs(by_id, pairs[i : i + 3])
                for i in range(0, len(pairs), 3)
            ]
        )
        assert np.array_equal(full, chunked)

    def test_reinterning_updated_record(self):
        kernel = ScoringKernel()
        before = Record.from_dict("x", "s", {"name": "Matilda"})
        after = Record.from_dict("x", "s", {"name": "Wicked", "price": 10})
        other = Record.from_dict("y", "s", {"name": "Wicked", "price": 10})
        by_id = {"x": before, "y": other}
        row_before = kernel.features_for_pairs(by_id, [("x", "y")])
        by_id["x"] = after
        row_after = kernel.features_for_pairs(by_id, [("x", "y")])
        assert not np.array_equal(row_before, row_after)
        assert np.array_equal(
            row_after, _scalar_matrix(by_id, [("x", "y")])
        )
        kernel.discard("x")
        assert np.array_equal(
            kernel.features_for_pairs(by_id, [("x", "y")]),
            row_after,
        )

    @given(
        st.lists(
            st.dictionaries(
                st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6),
                st.one_of(
                    st.text(alphabet=string.ascii_letters + " .,&$0123456789",
                            max_size=24),
                    st.integers(min_value=-10**6, max_value=10**6),
                    st.floats(allow_nan=False, allow_infinity=False, width=32),
                    st.booleans(),
                    st.none(),
                ),
                max_size=6,
            ),
            min_size=2,
            max_size=6,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_hypothesis_records_exact(self, field_dicts):
        records = [
            Record.from_dict(f"h{i}", "s", values)
            for i, values in enumerate(field_dicts)
        ]
        by_id = {r.record_id: r for r in records}
        pairs = _all_pairs(records)
        kernel = ScoringKernel()
        assert np.array_equal(
            kernel.features_for_pairs(by_id, pairs), _scalar_matrix(by_id, pairs)
        )


class TestRewiredCallersExact:
    @pytest.fixture(scope="class")
    def corpus(self):
        return DedupCorpusGenerator(seed=32).generate(
            n_entities=40, variants_per_entity=2
        )

    @pytest.fixture(scope="class")
    def model(self, corpus):
        return DedupModel(seed=0).fit(corpus.pairs)

    def test_extractor_batch_equals_single_pair(self, corpus):
        records = corpus.records[:30]
        extractor = PairFeatureExtractor(records)
        pairs = _all_pairs(records)[:120]
        batched = extractor.features_for_pairs(pairs)
        stacked = np.vstack(
            [extractor.features_for_pair(a, b) for a, b in pairs]
        )
        assert np.array_equal(batched, stacked)

    def test_model_score_pairs_matches_scalar_loop(self, corpus, model):
        records = corpus.records[:40]
        by_id = {r.record_id: r for r in records}
        pairs = sorted(TokenBlocker(max_block_size=60).block(records).pairs)
        scored = model.score_pairs(by_id, pairs)
        X = _scalar_matrix(by_id, pairs)
        expected = {
            pair: float(p)
            for pair, p in zip(pairs, model.predict_proba_features(X))
        }
        assert scored == expected

    def test_batch_scorer_matches_model_across_backends(self, corpus, model):
        records = corpus.records[:40]
        by_id = {r.record_id: r for r in records}
        pairs = sorted(TokenBlocker(max_block_size=60).block(records).pairs)
        expected = model.score_pairs(by_id, pairs)
        for backend, workers in (("thread", 4), ("serial", 4), ("thread", 1)):
            executor = ShardedExecutor(
                ExecConfig(parallelism=workers, batch_size=17, backend=backend)
            )
            scorer = BatchScorer(model, executor=executor)
            assert scorer.score_pairs(by_id, pairs) == expected

    def test_model_featurize_matches_scalar(self, corpus):
        model = DedupModel(seed=0)
        X, y = model.featurize(corpus.pairs[:80])
        expected = np.vstack(
            [
                pair_features(p.record_a, p.record_b)
                for p in corpus.pairs[:80]
            ]
        )
        assert np.array_equal(X, expected)
        assert y.tolist() == [
            1 if p.is_duplicate else 0 for p in corpus.pairs[:80]
        ]


class TestCandidateFilterSoundness:
    @pytest.fixture(scope="class")
    def model(self):
        train = DedupCorpusGenerator(seed=103).generate(n_entities=60)
        return DedupModel(seed=0).fit(train.pairs)

    @pytest.fixture(scope="class")
    def corpus(self):
        return DedupCorpusGenerator(seed=33).generate(
            n_entities=50, variants_per_entity=3
        )

    def test_never_prunes_a_classifier_match(self, model, corpus):
        records = corpus.records
        by_id = {r.record_id: r for r in records}
        pairs = sorted(TokenBlocker(max_block_size=200).block(records).pairs)
        kernel = ScoringKernel()
        candidate_filter = CandidateFilter.from_model(model)
        assert candidate_filter is not None
        survivors, pruned, stats = candidate_filter.split(kernel, by_id, pairs)
        # exact partition of the input
        assert set(survivors) | pruned == set(pairs)
        assert not (set(survivors) & pruned)
        assert stats.examined == len(pairs)
        assert stats.pruned == len(pruned)
        # every pruned pair scores strictly below threshold on the scalar path
        if pruned:
            X = _scalar_matrix(by_id, sorted(pruned))
            probabilities = model.predict_proba_features(X)
            assert float(np.max(probabilities)) < model.threshold
        # the filter actually prunes on this corpus (the perf claim)
        assert len(pruned) > 0

    def test_never_prunes_on_random_corpora(self, model):
        for seed in (41, 42, 43):
            records = _random_records(seed, n=25)
            by_id = {r.record_id: r for r in records}
            pairs = _all_pairs(records)
            kernel = ScoringKernel()
            candidate_filter = CandidateFilter.from_model(model)
            survivors, pruned, _ = candidate_filter.split(kernel, by_id, pairs)
            if not pruned:
                continue
            X = _scalar_matrix(by_id, sorted(pruned))
            assert float(np.max(model.predict_proba_features(X))) < model.threshold

    def test_consolidation_identical_with_and_without_filter(self, model, corpus):
        records = corpus.records
        with_filter = EntityConsolidator(
            model=model, config=EntityConfig(candidate_filtering=True)
        )
        entities_on = with_filter.consolidate(records)
        without_filter = EntityConsolidator(
            model=model, config=EntityConfig(candidate_filtering=False)
        )
        entities_off = without_filter.consolidate(records)
        assert entities_on == entities_off
        report_on = with_filter.last_report
        report_off = without_filter.last_report
        assert report_on.pruned_pairs > 0
        assert report_off.pruned_pairs == 0
        # pre-filter candidate accounting is unchanged
        assert report_on.candidate_pairs == report_off.candidate_pairs
        assert report_on.matched_pairs == report_off.matched_pairs
        assert report_on.clusters == report_off.clusters

    def test_scores_of_surviving_pairs_identical(self, model, corpus):
        records = corpus.records[:60]
        by_id = {r.record_id: r for r in records}
        pairs = sorted(TokenBlocker(max_block_size=200).block(records).pairs)
        kernel = ScoringKernel()
        candidate_filter = CandidateFilter.from_model(model)
        survivors, _, _ = candidate_filter.split(kernel, by_id, pairs)
        # the survivor FEATURE rows are bit-identical to the full run's —
        # probabilities are predicted over a smaller matrix, where BLAS
        # summation may flip the last ulp, so those are bounded instead
        full_matrix = kernel.features_for_pairs(by_id, pairs)
        survivor_matrix = kernel.features_for_pairs(by_id, survivors)
        index_of = {pair: row for row, pair in enumerate(pairs)}
        rows = [index_of[pair] for pair in survivors]
        assert np.array_equal(survivor_matrix, full_matrix[rows])
        all_scores = model.score_pairs(by_id, pairs)
        survivor_scores = model.score_pairs(by_id, survivors)
        assert set(survivor_scores) == set(survivors)
        assert all(
            abs(survivor_scores[p] - all_scores[p]) <= 1e-12 for p in survivors
        )
        matched_full = {
            p for p in survivors if all_scores[p] >= model.threshold
        }
        matched_filtered = {
            p for p, prob in survivor_scores.items() if prob >= model.threshold
        }
        assert matched_filtered == matched_full

    def test_naive_bayes_disables_filtering(self, corpus):
        model = DedupModel(config=EntityConfig(classifier="naive_bayes"), seed=0)
        model.fit(corpus.pairs)
        assert model.linear_decision() is None
        assert CandidateFilter.from_model(model) is None
        # consolidation still runs (filter silently off)
        consolidator = EntityConsolidator(model=model)
        consolidator.consolidate(corpus.records[:30])
        assert consolidator.last_report.pruned_pairs == 0

    def test_extreme_thresholds_disable_filtering(self, model, corpus):
        for threshold in (0.0, 1.0):
            clamped = DedupModel(
                config=EntityConfig(match_threshold=threshold), seed=0
            )
            clamped.fit(corpus.pairs)
            assert CandidateFilter.from_model(clamped) is None


class _LinearStub:
    """A hand-weighted linear 'model' for exercising the prefix filter."""

    def __init__(self, weights, bias, threshold):
        self.weights = np.asarray(weights, dtype=float)
        self.bias = bias
        self.threshold = threshold

    def linear_decision(self):
        return (
            self.weights,
            self.bias,
            math.log(self.threshold / (1.0 - self.threshold)),
        )

    def probability(self, features):
        z = float(features @ self.weights + self.bias)
        return 1.0 / (1.0 + math.exp(-z))


class TestPrefixLengthFilters:
    def _token_heavy_stub(self):
        # only token_jaccard matters: matching needs jaccard >= ~0.5, so the
        # derived min_token_jaccard is positive and the PPJoin-style
        # length/prefix filters activate
        weights = np.zeros(len(FEATURE_NAMES))
        weights[FEATURE_NAMES.index("token_jaccard")] = 8.0
        return _LinearStub(weights, bias=-4.0, threshold=0.5)

    def test_min_token_jaccard_positive(self):
        stub = self._token_heavy_stub()
        candidate_filter = CandidateFilter.from_model(stub)
        assert candidate_filter.min_token_jaccard > 0.4

    @pytest.mark.parametrize("seed", [51, 52, 53])
    def test_prefix_filter_never_drops_a_match(self, seed):
        stub = self._token_heavy_stub()
        candidate_filter = CandidateFilter.from_model(stub)
        records = _random_records(seed, n=30)
        by_id = {r.record_id: r for r in records}
        pairs = _all_pairs(records)
        kernel = ScoringKernel()
        survivors, pruned, stats = candidate_filter.split(kernel, by_id, pairs)
        assert set(survivors) | pruned == set(pairs)
        X = _scalar_matrix(by_id, sorted(pruned)) if pruned else None
        if X is not None:
            for row in X:
                assert stub.probability(row) < stub.threshold

    def test_prefix_filter_prunes_disjoint_token_sets(self):
        stub = self._token_heavy_stub()
        candidate_filter = CandidateFilter.from_model(stub)
        records = [
            Record.from_dict("a", "s", {"name": "alpha beta gamma delta"}),
            Record.from_dict("b", "s", {"name": "epsilon zeta eta theta"}),
            Record.from_dict("c", "s", {"name": "alpha beta gamma delta"}),
        ]
        by_id = {r.record_id: r for r in records}
        kernel = ScoringKernel()
        survivors, pruned, stats = candidate_filter.split(
            kernel, by_id, [("a", "b"), ("a", "c")]
        )
        assert ("a", "c") in survivors
        assert ("a", "b") in pruned
        assert stats.pruned_by_prefix >= 1


class TestStreamingFilterConsistency:
    @pytest.fixture(scope="class")
    def model(self):
        train = DedupCorpusGenerator(seed=103).generate(n_entities=60)
        return DedupModel(seed=0).fit(train.pairs)

    def _documents(self, corpus, count):
        documents = []
        for index, record in enumerate(corpus.records[:count]):
            documents.append(dict(record.as_dict(), _id=f"doc:{index}"))
        return documents

    def test_incremental_matches_batch_with_filter(self, model):
        corpus = DedupCorpusGenerator(seed=34).generate(
            n_entities=30, variants_per_entity=2
        )
        documents = self._documents(corpus, 60)
        curator = DeltaCurator(model)
        curator.bootstrap(documents[:40])
        assert curator.entities() == curator.batch_reference()
        assert curator.pruned_count > 0

        # apply inserts, updates and deletes; equivalence must hold throughout
        from repro.stream.changelog import ChangeEvent

        curator.apply_events(
            [
                ChangeEvent(seq=1, op="insert", doc_id=d["_id"], document=d)
                for d in documents[40:55]
            ]
        )
        assert curator.entities() == curator.batch_reference()

        update = dict(documents[3])
        update["name"] = "Completely Renamed Entity"
        curator.apply_events(
            [ChangeEvent(seq=2, op="update", doc_id=update["_id"], document=update)]
        )
        curator.apply_events(
            [
                ChangeEvent(
                    seq=3, op="delete", doc_id=documents[10]["_id"], document=None
                )
            ]
        )
        assert curator.entities() == curator.batch_reference()

    def test_pruned_pair_revives_when_record_updated_to_match(self, model):
        from repro.stream.changelog import ChangeEvent

        base = {"_id": "p:0", "name": "Shubert Theatre", "type": "Theater",
                "city": "New York"}
        far = {"_id": "p:1", "name": "zzz qqq", "type": "Venue"}
        curator = DeltaCurator(model)
        curator.bootstrap([base, far])
        curator.entities()
        # the dissimilar pair should be pruned (never featurized)
        assert curator.pruned_count >= 0  # may or may not share a block
        # now make p:1 identical to p:0 — they must merge
        twin = dict(base)
        twin["_id"] = "p:1"
        curator.apply_events(
            [ChangeEvent(seq=5, op="update", doc_id="p:1", document=twin)]
        )
        entities = curator.entities()
        assert entities == curator.batch_reference()
        merged = [e for e in entities if e.size == 2]
        assert len(merged) == 1
        assert sorted(merged[0].member_record_ids) == ["p:0", "p:1"]


class TestFullPairAccounting:
    def test_full_pair_count_matches_materialized(self):
        records = _random_records(61, n=17)
        assert full_pair_count(len(records)) == len(full_pairs(records))
        assert full_pair_count(0) == 0
        assert full_pair_count(1) == 0


class TestTokenVocabulary:
    def test_interning_is_stable_and_lex_ranks_consistent(self):
        vocab = TokenVocabulary()
        first = vocab.intern("walking")
        second = vocab.intern("dead")
        assert vocab.intern("walking") == first
        assert vocab.string(first) == "walking"
        assert len(vocab) == 2
        ranks = vocab.lex_ranks()
        assert ranks[second] < ranks[first]  # "dead" < "walking"
        # growing the vocabulary preserves pairwise order relations
        vocab.intern("aardvark")
        grown = vocab.lex_ranks()
        assert (grown[second] < grown[first]) == (ranks[second] < ranks[first])


class TestCheapFeatureStash:
    """The filter's already-computed cheap columns are threaded through to
    featurization for survivors — and the rows stay bit-identical."""

    @pytest.fixture(scope="class")
    def model(self):
        train = DedupCorpusGenerator(seed=103).generate(n_entities=60)
        return DedupModel(seed=0).fit(train.pairs)

    def test_stash_assisted_rows_are_bit_identical(self, model):
        corpus = DedupCorpusGenerator(seed=41).generate(
            n_entities=15, variants_per_entity=3
        )
        records = corpus.records
        by_id = {r.record_id: r for r in records}
        pairs = _all_pairs(records)
        candidate_filter = CandidateFilter.from_model(model)
        assert candidate_filter is not None

        kernel = ScoringKernel()
        survivors, pruned, _ = candidate_filter.split(kernel, by_id, pairs)
        assert survivors and pruned  # both paths exercised
        assert kernel.cheap_stash_size == len(survivors)
        assisted = kernel.features_for_pairs(by_id, survivors)
        assert kernel.cheap_stash_size == 0  # consumed

        fresh = ScoringKernel().features_for_pairs(by_id, survivors)
        assert np.array_equal(assisted, fresh)
        assert np.array_equal(assisted, _scalar_matrix(by_id, survivors))

    def test_stash_invalidated_when_record_reinterned(self, model):
        corpus = DedupCorpusGenerator(seed=42).generate(
            n_entities=8, variants_per_entity=3
        )
        records = corpus.records
        by_id = {r.record_id: r for r in records}
        pairs = _all_pairs(records)
        candidate_filter = CandidateFilter.from_model(model)
        kernel = ScoringKernel()
        survivors, _, _ = candidate_filter.split(kernel, by_id, pairs)
        assert survivors
        # change one record behind the filter's back: its stash entries
        # must be ignored (identity validation), not served stale
        victim = survivors[0][0]
        by_id[victim] = Record.from_dict(
            victim, "s", {"name": "entirely different content now"}
        )
        rows = kernel.features_for_pairs(by_id, survivors)
        assert np.array_equal(rows, _scalar_matrix(by_id, survivors))

    def test_mixed_stashed_and_fresh_rows_assemble_identically(self, model):
        records = _random_records(73, n=30)
        by_id = {r.record_id: r for r in records}
        pairs = _all_pairs(records)
        candidate_filter = CandidateFilter.from_model(model)
        kernel = ScoringKernel()
        survivors, pruned, _ = candidate_filter.split(kernel, by_id, pairs)
        # featurize survivors AND pruned pairs together: survivors come from
        # the stash, pruned rows take the fresh columnar path
        mixed = sorted(pairs)
        rows = kernel.features_for_pairs(by_id, mixed)
        assert np.array_equal(rows, _scalar_matrix(by_id, mixed))


class TestStringSimMemoRotation:
    """The string-sim memo rotates generations instead of clearing.

    Regression: the memo used to be wiped outright when it hit the size
    limit, so a steady-state workload alternated between a full cache and an
    empty one — every wipe triggered a recompute storm whose hit rate
    dropped to exactly zero until the memo refilled.  The two-generation
    scheme demotes the full generation instead, so recently used keys stay
    findable (and get promoted back) across the boundary.
    """

    def test_keys_survive_the_rotation_boundary(self):
        kernel = ScoringKernel()
        kernel._memo_limit = 8
        for index in range(8):
            kernel._memo_insert((index, index + 1000), float(index))
        # crossing the limit rotates; with the old clear() this lost every key
        kernel._memo_insert((99, 1099), 0.5)
        assert kernel._memo_lookup((3, 1003)) == 3.0
        assert kernel.memo_hits == 1
        # the promoted key is back in the live generation, not just the old one
        assert (3, 1003) in kernel._string_sim_new

    def test_memo_stays_bounded_across_many_rotations(self):
        kernel = ScoringKernel()
        kernel._memo_limit = 16
        for index in range(500):
            kernel._memo_insert((index, index + 10_000), 0.0)
        assert kernel.memo_size <= 2 * kernel._memo_limit

    def test_hit_rate_stays_positive_across_rotation(self):
        # every record shares the "name" attribute with a distinct value, so
        # all 45 pairs produce distinct memo keys — more than the limit
        # (forcing a rotation mid-workload) but fewer than two generations
        # hold, the steady state the rotation scheme is built for
        records = [
            Record.from_dict(f"r{i}", "s", {"name": f"entity number {i} inc"})
            for i in range(10)
        ]
        by_id = {r.record_id: r for r in records}
        pairs = _all_pairs(records)
        kernel = ScoringKernel()
        kernel._memo_limit = 30
        first = kernel.features_for_pairs(by_id, pairs)
        assert kernel.memo_misses > kernel._memo_limit  # rotation happened
        hits_before = kernel.memo_hits
        second = kernel.features_for_pairs(by_id, pairs)
        # repeated keys keep hitting even though the memo rotated mid-stream;
        # the old clear()-at-limit behaviour threw the whole working set away
        assert kernel.memo_hits > hits_before
        assert np.array_equal(first, second)
        assert np.array_equal(first, _scalar_matrix(by_id, pairs))
