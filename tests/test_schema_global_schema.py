"""Tests for repro.schema.global_schema."""

import pytest

from repro.errors import SchemaError, UnknownAttribute
from repro.schema.attribute import profile_values
from repro.schema.global_schema import GlobalSchema


class TestGlobalSchema:
    def test_starts_empty(self):
        schema = GlobalSchema()
        assert len(schema) == 0
        assert schema.attribute_names() == []

    def test_add_attribute(self):
        schema = GlobalSchema()
        schema.add_attribute("show_name", source_of_origin="seed")
        assert "show_name" in schema
        assert schema.attribute("show_name").source_of_origin == "seed"

    def test_duplicate_add_rejected(self):
        schema = GlobalSchema()
        schema.add_attribute("x")
        with pytest.raises(SchemaError):
            schema.add_attribute("x")

    def test_get_or_add_idempotent(self):
        schema = GlobalSchema()
        first = schema.get_or_add("x")
        second = schema.get_or_add("x")
        assert first is second
        assert len(schema) == 1

    def test_unknown_attribute_raises(self):
        with pytest.raises(UnknownAttribute):
            GlobalSchema().attribute("absent")

    def test_record_mapping_adds_alias_and_merges_profile(self):
        schema = GlobalSchema()
        schema.add_attribute("show_name", profile=profile_values(["Matilda"]))
        schema.record_mapping(
            "show_name", "SHOW", "src2", profile=profile_values(["Wicked"])
        )
        attr = schema.attribute("show_name")
        assert "SHOW" in attr.aliases
        assert attr.profile.non_null_count == 2

    def test_lookup_alias(self):
        schema = GlobalSchema()
        schema.add_attribute("show_name")
        schema.record_mapping("show_name", "SHOW", "src2")
        assert schema.lookup_alias("SHOW") == "show_name"
        assert schema.lookup_alias("show_name") == "show_name"
        assert schema.lookup_alias("unrelated") is None

    def test_history_records_adds_and_maps(self):
        schema = GlobalSchema()
        schema.add_attribute("a", source_of_origin="s1")
        schema.record_mapping("a", "A", "s2")
        actions = [action for _, action, _ in schema.history]
        assert actions == ["add", "map"]

    def test_attribute_names_in_insertion_order(self):
        schema = GlobalSchema()
        for name in ("c", "a", "b"):
            schema.add_attribute(name)
        assert schema.attribute_names() == ["c", "a", "b"]

    def test_summary_shape(self):
        schema = GlobalSchema("demo")
        schema.add_attribute("x", profile=profile_values([1, 2]), source_of_origin="s1")
        summary = schema.summary()
        assert summary["name"] == "demo"
        assert summary["attribute_count"] == 1
        assert summary["attributes"]["x"]["type"] == "integer"
        assert summary["attributes"]["x"]["origin"] == "s1"
