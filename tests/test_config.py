"""Tests for repro.config."""

import pytest

from repro.config import (
    EntityConfig,
    ExpertConfig,
    ObsConfig,
    SchemaConfig,
    StorageConfig,
    TamerConfig,
)
from repro.errors import ConfigError


class TestStorageConfig:
    def test_defaults_validate(self):
        StorageConfig().validate()

    def test_rejects_non_positive_extent(self):
        with pytest.raises(ConfigError):
            StorageConfig(extent_size_bytes=0).validate()

    def test_rejects_non_positive_shards(self):
        with pytest.raises(ConfigError):
            StorageConfig(num_shards=0).validate()

    def test_rejects_negative_extent(self):
        with pytest.raises(ConfigError):
            StorageConfig(extent_size_bytes=-5).validate()


class TestSchemaConfig:
    def test_defaults_validate(self):
        SchemaConfig().validate()

    def test_accept_threshold_bounds(self):
        with pytest.raises(ConfigError):
            SchemaConfig(accept_threshold=1.5).validate()
        with pytest.raises(ConfigError):
            SchemaConfig(accept_threshold=-0.1).validate()

    def test_new_attribute_threshold_bounds(self):
        with pytest.raises(ConfigError):
            SchemaConfig(new_attribute_threshold=2.0).validate()

    def test_new_threshold_must_not_exceed_accept(self):
        with pytest.raises(ConfigError):
            SchemaConfig(accept_threshold=0.4, new_attribute_threshold=0.6).validate()

    def test_empty_weights_rejected(self):
        with pytest.raises(ConfigError):
            SchemaConfig(matcher_weights={}).validate()

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigError):
            SchemaConfig(matcher_weights={"name": -1.0}).validate()

    def test_zero_sum_weights_rejected(self):
        with pytest.raises(ConfigError):
            SchemaConfig(matcher_weights={"name": 0.0, "value": 0.0}).validate()

    def test_custom_weights_accepted(self):
        cfg = SchemaConfig(matcher_weights={"name": 1.0, "value": 2.0})
        cfg.validate()
        assert cfg.matcher_weights["value"] == 2.0


class TestEntityConfig:
    def test_defaults_validate(self):
        EntityConfig().validate()

    def test_match_threshold_bounds(self):
        with pytest.raises(ConfigError):
            EntityConfig(match_threshold=1.2).validate()

    def test_unknown_blocking_strategy(self):
        with pytest.raises(ConfigError):
            EntityConfig(blocking_strategy="magic").validate()

    @pytest.mark.parametrize("strategy", ["token", "ngram", "sorted", "none"])
    def test_known_blocking_strategies(self, strategy):
        EntityConfig(blocking_strategy=strategy).validate()

    def test_max_block_size_must_exceed_one(self):
        with pytest.raises(ConfigError):
            EntityConfig(max_block_size=1).validate()

    def test_unknown_classifier(self):
        with pytest.raises(ConfigError):
            EntityConfig(classifier="svm").validate()

    def test_crossval_folds_minimum(self):
        with pytest.raises(ConfigError):
            EntityConfig(crossval_folds=1).validate()


class TestExpertConfig:
    def test_defaults_validate(self):
        ExpertConfig().validate()

    def test_max_tasks_positive(self):
        with pytest.raises(ConfigError):
            ExpertConfig(max_tasks_per_expert=0).validate()

    def test_min_answers_positive(self):
        with pytest.raises(ConfigError):
            ExpertConfig(min_answers_per_task=0).validate()

    def test_accuracy_bounds(self):
        with pytest.raises(ConfigError):
            ExpertConfig(default_expert_accuracy=1.5).validate()


class TestObsConfig:
    def test_defaults_validate(self):
        ObsConfig().validate()

    def test_trace_buffer_minimum(self):
        with pytest.raises(ConfigError):
            ObsConfig(trace_buffer=0).validate()

    def test_trace_sample_every_minimum(self):
        with pytest.raises(ConfigError):
            ObsConfig(trace_sample_every=0).validate()
        ObsConfig(trace_sample_every=1).validate()

    def test_snapshot_path_must_be_non_empty_or_none(self):
        with pytest.raises(ConfigError):
            ObsConfig(snapshot_path="").validate()
        ObsConfig(snapshot_path="obs/snapshots.jsonl").validate()

    def test_snapshot_interval_positive(self):
        with pytest.raises(ConfigError):
            ObsConfig(snapshot_interval_seconds=0.0).validate()

    def test_disabled_hub_from_config_is_inert(self):
        from repro.obs import TelemetryHub

        hub = TelemetryHub.from_config(ObsConfig(enabled=False))
        assert hub.registry.counter("c_total").value == 0.0
        assert not hub.tracer.enabled

    def test_alert_knobs_validate(self):
        ObsConfig(
            alert_watermark_age_seconds=0.0,  # 0 disables the rule
            alert_respawn_rate_per_minute=10.0,
            alert_window_seconds=30.0,
        ).validate()
        with pytest.raises(ConfigError):
            ObsConfig(alert_watermark_age_seconds=-1.0).validate()
        with pytest.raises(ConfigError):
            ObsConfig(alert_respawn_rate_per_minute=-1.0).validate()
        with pytest.raises(ConfigError):
            ObsConfig(alert_window_seconds=0.0).validate()


class TestTamerConfig:
    def test_default_factory_validates(self):
        cfg = TamerConfig.default()
        assert cfg.schema.accept_threshold == 0.75

    def test_small_factory_uses_tiny_extents(self):
        cfg = TamerConfig.small()
        assert cfg.storage.extent_size_bytes < 1024 * 1024
        assert cfg.storage.num_shards == 2

    def test_validate_returns_self(self):
        cfg = TamerConfig()
        assert cfg.validate() is cfg

    def test_with_seed_copies(self):
        cfg = TamerConfig.default()
        other = cfg.with_seed(99)
        assert other.seed == 99
        assert cfg.seed == 0
        assert other.storage is cfg.storage  # shallow copy by design

    def test_invalid_subsection_propagates(self):
        cfg = TamerConfig(entity=EntityConfig(match_threshold=5.0))
        with pytest.raises(ConfigError):
            cfg.validate()
