"""Tests for repro.schema.matchers."""

import pytest

from repro.schema.attribute import profile_values
from repro.schema.matchers import (
    CompositeMatcher,
    canonical_attribute_name,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler,
    levenshtein_distance,
    levenshtein_ratio,
    name_similarity,
    ngram_similarity,
    normalize_attribute_name,
    numeric_profile_similarity,
    type_compatibility,
    value_overlap_similarity,
)


class TestNormalizeAttributeName:
    def test_snake_case(self):
        assert normalize_attribute_name("SHOW_NAME") == "show name"

    def test_camel_case(self):
        assert normalize_attribute_name("showName") == "show name"
        assert normalize_attribute_name("cheapestPrice2") == "cheapest price2"

    def test_dashes_and_dots(self):
        assert normalize_attribute_name("show-name.full") == "show name full"

    def test_none(self):
        assert normalize_attribute_name(None) == ""

    def test_canonical_form(self):
        assert canonical_attribute_name("SHOW_NAME") == "show_name"
        assert canonical_attribute_name("Performance Times") == "performance_times"
        assert canonical_attribute_name("showName") == "show_name"


class TestLevenshtein:
    def test_distance_known_values(self):
        assert levenshtein_distance("kitten", "sitting") == 3
        assert levenshtein_distance("abc", "abc") == 0
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("abc", "") == 3

    def test_ratio_bounds(self):
        assert levenshtein_ratio("abc", "abc") == 1.0
        assert levenshtein_ratio("abc", "xyz") == 0.0
        assert 0 < levenshtein_ratio("theater", "theatre") < 1

    def test_ratio_empty_strings(self):
        assert levenshtein_ratio("", "") == 1.0


class TestJaro:
    def test_identical(self):
        assert jaro_similarity("abc", "abc") == 1.0
        assert jaro_winkler("abc", "abc") == 1.0

    def test_empty(self):
        assert jaro_similarity("", "abc") == 0.0

    def test_known_pair(self):
        # classic example: MARTHA / MARHTA
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_winkler_boosts_common_prefix(self):
        plain = jaro_similarity("theater", "theatre")
        winkler = jaro_winkler("theater", "theatre")
        assert winkler >= plain

    def test_symmetry(self):
        assert jaro_winkler("show", "shows") == pytest.approx(
            jaro_winkler("shows", "show")
        )


class TestSetSimilarities:
    def test_jaccard(self):
        assert jaccard_similarity({1, 2}, {2, 3}) == pytest.approx(1 / 3)
        assert jaccard_similarity(set(), set()) == 1.0
        assert jaccard_similarity({1}, set()) == 0.0

    def test_ngram_similarity(self):
        assert ngram_similarity("theater", "theater") == 1.0
        assert ngram_similarity("theater", "theatre") > 0.3
        assert ngram_similarity("abc", "xyz") == 0.0


class TestNameSimilarity:
    def test_identical_names(self):
        assert name_similarity("show_name", "show_name") == 1.0

    def test_convention_variants_score_high(self):
        assert name_similarity("SHOW_NAME", "showName") == 1.0
        assert name_similarity("Performance Times", "performance_times") == 1.0

    def test_synonym_like_partial_overlap(self):
        assert name_similarity("show_name", "show") > 0.4

    def test_unrelated_names_score_low(self):
        assert name_similarity("cheapest_price", "neighborhood") < 0.5

    def test_empty_names(self):
        assert name_similarity("", "") == 1.0
        assert name_similarity("x", "") == 0.0


class TestProfileSimilarities:
    def test_value_overlap_detects_shared_domain(self):
        shows_a = profile_values(["Matilda", "Wicked", "Chicago"])
        shows_b = profile_values(["Matilda", "Once", "Wicked"])
        prices = profile_values(["$27", "$89", "$120"])
        assert value_overlap_similarity(shows_a, shows_b) > value_overlap_similarity(
            shows_a, prices
        )

    def test_value_overlap_empty_profiles(self):
        empty = profile_values([])
        assert value_overlap_similarity(empty, empty) == 0.0

    def test_type_compatibility(self):
        ints = profile_values([1, 2, 3])
        floats = profile_values([1.5, 2.5])
        strings = profile_values(["a", "b"])
        unknown = profile_values([])
        assert type_compatibility(ints, ints) == 1.0
        assert type_compatibility(ints, floats) == pytest.approx(0.7)
        assert type_compatibility(ints, strings) == 0.0
        assert type_compatibility(ints, unknown) == 0.5

    def test_numeric_profile_similarity(self):
        a = profile_values([100, 110, 90])
        b = profile_values([105, 95, 100])
        c = profile_values([10000, 9000])
        assert numeric_profile_similarity(a, b) > numeric_profile_similarity(a, c)

    def test_numeric_profile_falls_back_to_length(self):
        a = profile_values(["abcd", "efgh"])
        b = profile_values(["ijkl", "mnop"])
        assert numeric_profile_similarity(a, b) == 1.0


class TestCompositeMatcher:
    def test_score_fields_present(self):
        matcher = CompositeMatcher()
        score = matcher.score(
            "SHOW_NAME", profile_values(["Matilda"]),
            "show_name", profile_values(["Matilda", "Wicked"]),
        )
        assert set(score.as_dict()) == {"name", "value", "type", "stats", "composite"}
        assert 0.0 <= score.composite <= 1.0

    def test_same_attribute_scores_near_one(self):
        matcher = CompositeMatcher()
        profile = profile_values(["Matilda", "Wicked", "Chicago"])
        score = matcher.score("show_name", profile, "show_name", profile)
        assert score.composite > 0.9

    def test_unrelated_attributes_score_low(self):
        matcher = CompositeMatcher()
        score = matcher.score(
            "cheapest_price", profile_values(["$27", "$89"]),
            "neighborhood", profile_values(["Midtown", "Chelsea"]),
        )
        assert score.composite < 0.5

    def test_weights_are_normalized(self):
        matcher = CompositeMatcher({"name": 2.0, "value": 2.0})
        assert sum(matcher.weights.values()) == pytest.approx(1.0)

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            CompositeMatcher({"name": 0.0})

    def test_name_weight_dominates_when_configured(self):
        name_only = CompositeMatcher({"name": 1.0})
        score = name_only.score(
            "show_name", profile_values(["a"]), "show_name", profile_values(["zzz"])
        )
        assert score.composite == pytest.approx(score.name)
