"""Streaming/batch equivalence for incremental schema integration.

The schema operator's contract mirrors the entity operator's: after any
sequence of insert/update/delete events, :meth:`DeltaIntegrator.snapshot`
— the global schema (attributes, exact merged profiles, aliases, history)
plus every per-source mapping report — is *bit-for-bit* what a fresh
:class:`SchemaIntegrator` produces by re-integrating every live source's
current records from scratch (:meth:`DeltaIntegrator.batch_reference`).

These tests drive seeded random event sequences through a
:class:`StreamingTamer` with the schema operator enabled and compare the
incremental state against the batch oracle at checkpoints — across delta
orders and batch groupings, same-attribute (and same-id) reinsertion,
stochastic expert escalation with deterministic replay, and 1/2/8-worker
fan-out including the persistent pool's warm context path.
"""

import random

import pytest

from repro import DataTamer, StreamConfig, TamerConfig
from repro.config import EntityConfig, ExecConfig, SchemaConfig
from repro.expert.experts import SimulatedExpert
from repro.expert.routing import ExpertRouter
from repro.workloads import DedupCorpusGenerator

SEEDS = (0, 1, 2)

#: Per-source attribute dialects: the same logical fields under different
#: naming conventions, plus source-unique fields — so integration exercises
#: aliasing, auto-accepts and new-attribute additions, not just identity.
_DIALECTS = {
    "alpha": {
        "name": "show_name",
        "city": "city",
        "price": "ticket_price",
        "venue": "venue",
        "extra": "alpha_only_notes",
    },
    "beta": {
        "name": "SHOW_NAME",
        "city": "CITY",
        "price": "PRICE_USD",
        "venue": "VENUE_NAME",
        "extra": "beta_rating",
    },
    "gamma": {
        "name": "showName",
        "city": "cityName",
        "price": "cheapestPrice",
        "venue": "theater",
        "extra": "gammaSchedule",
    },
}

_WORDS = (
    "matilda", "chicago", "wicked", "pippin", "cinderella", "annie",
    "broadway", "theater", "musical", "tickets", "show", "evening",
)
_CITIES = ("new york", "boston", "chicago", "london")


def _random_doc(rng: random.Random, source: str) -> dict:
    names = _DIALECTS[source]
    doc = {
        names["name"]: " ".join(rng.sample(_WORDS, rng.randint(1, 3))),
        names["city"]: rng.choice(_CITIES),
        names["price"]: rng.randint(20, 200),
        names["venue"]: rng.choice(_WORDS),
        names["extra"]: f"{source} {rng.randint(0, 9)}",
        "_source": source,
    }
    for field in ("city", "price", "venue", "extra"):
        if rng.random() < 0.3:
            del doc[names[field]]
    return doc


def _mutate(rng: random.Random, doc: dict) -> dict:
    changed = {k: v for k, v in doc.items() if k != "_id"}
    source = changed.get("_source", "alpha")
    names = _DIALECTS.get(source, _DIALECTS["alpha"])
    choice = rng.random()
    if choice < 0.4:
        changed[names["name"]] = " ".join(rng.sample(_WORDS, rng.randint(1, 3)))
    elif choice < 0.7:
        changed[names["price"]] = rng.randint(20, 200)
    else:
        changed[names["city"]] = rng.choice(_CITIES)
    return changed


def _build_tamer(
    workers: int = 1,
    backend: str = "thread",
    max_batch_size: int = 16,
    expert_router=None,
    true_mapping=None,
) -> DataTamer:
    config = TamerConfig.small()
    config.entity = EntityConfig(blocking_strategy="token")
    config.schema = SchemaConfig(
        accept_threshold=0.75, new_attribute_threshold=0.35
    )
    config.stream = StreamConfig(
        max_batch_size=max_batch_size,
        rebuild_threshold=0,
        schema_integration=True,
    )
    if workers > 1:
        config.execution = ExecConfig(
            parallelism=workers, backend=backend, batch_size=64
        )
    tamer = DataTamer(
        config.validate(),
        expert_router=expert_router,
        true_schema_mapping=true_mapping,
    )
    corpus = DedupCorpusGenerator(seed=13).generate(
        n_entities=40, variants_per_entity=2
    )
    tamer.train_dedup_model(corpus.pairs)
    return tamer


def _drive_and_check(
    tamer: DataTamer, seed: int, steps: int = 30, checkpoint: int = 6
):
    rng = random.Random(seed)
    collection = tamer.curated_collection
    for _ in range(18):
        collection.insert(_random_doc(rng, rng.choice(tuple(_DIALECTS))))
    stream = tamer.start_stream()
    integrator = stream.integrator
    assert integrator is not None
    assert integrator.snapshot() == integrator.batch_reference()

    for step in range(1, steps + 1):
        live = [doc["_id"] for doc in collection.scan()]
        op = rng.random()
        if op < 0.45 or len(live) < 8:
            collection.insert(_random_doc(rng, rng.choice(tuple(_DIALECTS))))
        elif op < 0.7:
            doc_id = rng.choice(live)
            collection.upsert(doc_id, _mutate(rng, collection.get(doc_id)))
        elif op < 0.85:
            # same-id, same-attribute reinsertion: the document (and every
            # column value it contributes) moves to the end of its source
            victim = rng.choice(live)
            doc = collection.get(victim)
            collection.delete(victim)
            collection.insert(doc)
        else:
            collection.delete(rng.choice(live))
        if step % checkpoint == 0:
            stream.apply_delta()
            assert integrator.snapshot() == integrator.batch_reference()
            # the entity operator stays equivalent on the shared chain
            assert stream.refresh() == stream.batch_reference()
    return stream


@pytest.mark.parametrize("seed", SEEDS)
def test_streaming_schema_matches_batch(seed):
    tamer = _build_tamer()
    _drive_and_check(tamer, seed)


@pytest.mark.parametrize("max_batch_size", (1, 4, 64))
def test_batch_grouping_lands_on_identical_state(max_batch_size):
    """The same write sequence drained as 1-event batches, small coalesced
    batches or one big batch must land on the identical snapshot."""
    reference = None
    for size in (max_batch_size, 256):
        tamer = _build_tamer(max_batch_size=size)
        rng = random.Random(7)
        collection = tamer.curated_collection
        for _ in range(12):
            collection.insert(_random_doc(rng, rng.choice(tuple(_DIALECTS))))
        stream = tamer.start_stream()
        # interleave writes so multi-event batches coalesce per document
        live = [doc["_id"] for doc in collection.scan()]
        for doc_id in live[:4]:
            collection.upsert(doc_id, _mutate(rng, collection.get(doc_id)))
            collection.upsert(doc_id, _mutate(rng, collection.get(doc_id)))
        collection.delete(live[5])
        doc = collection.get(live[6])
        collection.delete(live[6])
        collection.insert(doc)
        stream.apply_delta()
        snapshot = stream.integrator.snapshot()
        assert snapshot == stream.integrator.batch_reference()
        if reference is None:
            reference = snapshot
        else:
            assert snapshot == reference
        tamer.close()


def test_source_interleaving_shuffle_is_order_independent():
    """Shuffling the interleaving of *different* sources' writes (keeping
    each source's own sequence and the first-seen source order) lands on
    the identical snapshot: per-source mirrors only depend on per-source
    event order."""
    rng = random.Random(3)
    per_source = {
        source: [_random_doc(rng, source) for _ in range(6)]
        for source in _DIALECTS
    }
    snapshots = []
    for shuffle_seed in (None, 11, 23):
        tamer = _build_tamer()
        collection = tamer.curated_collection
        # pin first-seen source order with one doc each, in dialect order
        for source in _DIALECTS:
            collection.insert(dict(per_source[source][0]))
        remaining = [
            (source, dict(doc))
            for source in _DIALECTS
            for doc in per_source[source][1:]
        ]
        if shuffle_seed is not None:
            order = list(range(len(remaining)))
            random.Random(shuffle_seed).shuffle(order)
            # stable per-source subsequence: sort the shuffle back within
            # each source so each source's own order is preserved
            seen = {source: 0 for source in _DIALECTS}
            by_source = {
                source: [d for s, d in remaining if s == source]
                for source in _DIALECTS
            }
            shuffled = []
            for index in order:
                source = remaining[index][0]
                shuffled.append((source, by_source[source][seen[source]]))
                seen[source] += 1
            remaining = shuffled
        stream = tamer.start_stream()
        for _, doc in remaining:
            collection.insert(doc)
        stream.apply_delta()
        snapshot = stream.integrator.snapshot()
        assert snapshot == stream.integrator.batch_reference()
        snapshots.append(snapshot)
        tamer.close()
    assert snapshots[0] == snapshots[1] == snapshots[2]


@pytest.mark.parametrize("seed", SEEDS)
def test_expert_escalation_replay_is_deterministic(seed):
    """A stochastic simulated expert answers each distinct escalation once;
    cascade re-runs and the batch oracle replay the recorded answers —
    snapshots stay bit-identical and the expert is never re-asked."""
    router = ExpertRouter(
        [SimulatedExpert("expert-1", accuracy=0.8, seed=seed + 40)]
    )
    tamer = _build_tamer(expert_router=router)
    stream = _drive_and_check(tamer, seed, steps=18, checkpoint=6)
    integrator = stream.integrator
    assert integrator.expert_log_size > 0  # escalations actually happened
    asked_before = router.total_tasks_answered
    # a forced cascade re-run (rebuild) must replay, not re-ask
    integrator.rebuild(tamer.curated_collection.scan())
    rebuilt = integrator.snapshot()
    assert rebuilt == integrator.batch_reference()
    assert router.total_tasks_answered == asked_before
    stats = integrator.last_stats
    assert stats.escalations_replayed > 0 and stats.escalations_asked == 0


@pytest.mark.parametrize(
    "workers,backend",
    ((1, "thread"), (2, "thread"), (8, "process")),
)
def test_worker_fanout_is_bit_identical(workers, backend):
    """Matcher-scoring fan-out — including the 8-worker persistent pool's
    warm context path — never changes a score."""
    tamer = _build_tamer(workers=workers, backend=backend)
    try:
        stream = _drive_and_check(tamer, seed=1, steps=12, checkpoint=6)
        integrator = stream.integrator
        if workers > 1:
            # fan-out actually engaged at bootstrap scale
            assert integrator.last_stats is not None
    finally:
        tamer.close()


@pytest.mark.parametrize("seed", SEEDS)
def test_rebuild_fallback_lands_on_identical_schema_state(seed):
    """Re-bootstrapping from ``collection.scan()`` must land on the exact
    incremental state — including the *source integration order*, which is
    defined by each source's earliest live document and shifts when that
    document is deleted or re-inserted at the end."""
    tamer = _build_tamer()
    stream = _drive_and_check(tamer, seed=seed, steps=24, checkpoint=6)
    incremental = stream.integrator.snapshot()
    stream.full_rebuild()
    assert stream.rebuild_count == 1
    assert stream.integrator.snapshot() == incremental


def test_update_that_changes_source_keeps_global_position():
    """An update rewriting ``_source`` re-homes the document *mid-sequence*
    in the new source (collection updates never move documents)."""
    tamer = _build_tamer()
    rng = random.Random(21)
    collection = tamer.curated_collection
    for _ in range(6):
        collection.insert(_random_doc(rng, "alpha"))
    for _ in range(6):
        collection.insert(_random_doc(rng, "beta"))
    stream = tamer.start_stream()
    integrator = stream.integrator
    live = [doc["_id"] for doc in collection.scan()]
    # re-home an early alpha doc into beta: it must precede every beta doc
    moved = collection.get(live[1])
    moved = {k: v for k, v in moved.items() if k != "_id"}
    moved["_source"] = "beta"
    collection.upsert(live[1], moved)
    # and re-home a beta doc into a brand-new source
    fresh = collection.get(live[8])
    fresh = {k: v for k, v in fresh.items() if k != "_id"}
    fresh["_source"] = "gamma"
    collection.upsert(live[8], fresh)
    stream.apply_delta()
    assert integrator.snapshot() == integrator.batch_reference()
    incremental = integrator.snapshot()
    integrator.rebuild(collection.scan())
    assert integrator.snapshot() == incremental


def test_per_operator_watermarks_drive_query_invalidation():
    tamer = _build_tamer()
    rng = random.Random(9)
    for _ in range(10):
        tamer.curated_collection.insert(_random_doc(rng, "alpha"))
    stream = tamer.start_stream()
    marks = stream.watermarks()
    assert set(marks) == {"entity", "schema"}
    assert marks["entity"] == marks["schema"] == stream.watermark
    engine = stream.query_engine()
    assert engine.watermark == stream.curator.watermark
    tamer.curated_collection.insert(_random_doc(rng, "beta"))
    stream.apply_delta()
    marks = stream.watermarks()
    assert marks["entity"] == marks["schema"] > engine.watermark
    assert engine.is_stale(stream.curator.watermark)
    stream.query_engine()
    assert engine.watermark == stream.curator.watermark


def test_warm_context_keys_are_unique_across_integrator_lifetimes():
    """Context keys must never be reused after an integrator dies: a
    long-lived pool still holds the old context, and an id()-recycled key
    would make the new integrator's first sync a silent no-op."""
    from repro.stream.delta_schema import DeltaIntegrator

    seen = set()
    for _ in range(50):
        integrator = DeltaIntegrator()
        key = integrator._warm_context_key
        assert key not in seen
        seen.add(key)
        del integrator  # free the address for reuse; the key must not be


def test_warm_version_is_monotonic_across_rebuilds():
    """rebuild() must never reset the warm-context version: the pool parent
    still holds the last shipped (version, table) under our key, and a
    re-used version number would skip the ship and strand workers on a
    stale profile table."""
    from repro.stream.delta_schema import DeltaIntegrator

    integrator = DeltaIntegrator()
    integrator.bootstrap(
        [{"_id": "a", "name": "x", "_source": "s"}]
    )
    integrator._warm_version = 7  # as if the bootstrap fan-out shipped
    integrator.rebuild([{"_id": "a", "name": "x", "_source": "s"}])
    assert integrator._warm_version == 7


def test_pool_fanout_stays_identical_across_rebuild_and_restart():
    """The warm context survives the full lifecycle: bootstrap fan-out,
    rebuild fallback, a second stream on the same pool."""
    tamer = _build_tamer(workers=8, backend="process")
    try:
        stream = _drive_and_check(tamer, seed=3, steps=6, checkpoint=6)
        stream.full_rebuild()
        integrator = stream.integrator
        assert integrator.snapshot() == integrator.batch_reference()
        # second stream over the same executor/pool: fresh context key
        second = tamer.start_stream()
        assert (
            second.integrator._warm_context_key
            != integrator._warm_context_key
        )
        assert second.integrator.snapshot() == second.integrator.batch_reference()
    finally:
        tamer.close()


def test_key_reordered_records_defeat_the_profile_cache():
    """dict == ignores key order, but key order IS first-seen column order:
    a reordered repeat integration must re-profile from scratch."""
    from repro.schema.integrator import SchemaIntegrator

    integrator = SchemaIntegrator()
    integrator.integrate_source("s", [{"a": 1, "b": 2}])
    reordered = [{"b": 2, "a": 1}, {"a": 3, "b": 4}]
    profiles = integrator._profiles_for("s", reordered)
    assert list(profiles) == ["b", "a"]  # fresh first-seen order
    assert profiles == SchemaIntegrator.profile_source(reordered)


def test_operator_stage_shares_rebuild_accounting_and_closed_check():
    """Driving the stream through CurationPipeline.add_operator_stage must
    count toward the rebuild threshold and reject a closed stream."""
    from repro.core.pipeline import CurationPipeline
    from repro.errors import TamerError

    tamer = _build_tamer()
    from dataclasses import replace

    tamer.config.stream = replace(
        tamer.config.stream, rebuild_threshold=5, max_batch_size=4
    )
    rng = random.Random(2)
    for _ in range(6):
        tamer.curated_collection.insert(_random_doc(rng, "alpha"))
    stream = tamer.start_stream()
    for _ in range(6):
        tamer.curated_collection.insert(_random_doc(rng, "beta"))
    pipeline = CurationPipeline()
    pipeline.add_operator_stage("drain", stream)
    pipeline.run()
    assert stream.rebuild_count == 1  # the fallback fired through the stage
    assert stream.refresh() == stream.batch_reference()
    # events recorded before close must not be silently drained after it
    tamer.curated_collection.insert(_random_doc(rng, "alpha"))
    stream.close()
    assert stream.pending_events == 1
    with pytest.raises(TamerError):
        pipeline.run()
    tamer.close()
