"""Tests for repro.ml.vectorize."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.ml.vectorize import HashingVectorizer, TfIdfVectorizer

DOCS = [
    "matilda grossed strongly at the shubert",
    "wicked grossed well at the gershwin",
    "the walking dead is a television show",
    "matilda is an award winning import from london",
]


class TestTfIdfVectorizer:
    def test_fit_builds_vocabulary(self):
        vec = TfIdfVectorizer().fit(DOCS)
        assert "matilda" in vec.vocabulary
        assert vec.n_features == len(vec.vocabulary)

    def test_transform_shape(self):
        vec = TfIdfVectorizer().fit(DOCS)
        X = vec.transform(DOCS)
        assert X.shape == (len(DOCS), vec.n_features)

    def test_rows_are_l2_normalized(self):
        X = TfIdfVectorizer().fit_transform(DOCS)
        norms = np.linalg.norm(X, axis=1)
        assert np.allclose(norms[norms > 0], 1.0)

    def test_unknown_terms_ignored_at_transform(self):
        vec = TfIdfVectorizer().fit(DOCS)
        X = vec.transform(["zzz qqq completely unseen"])
        assert np.allclose(X, 0.0)

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            TfIdfVectorizer().transform(DOCS)
        with pytest.raises(NotFittedError):
            _ = TfIdfVectorizer().vocabulary

    def test_max_features_caps_vocabulary(self):
        vec = TfIdfVectorizer(max_features=3).fit(DOCS)
        assert vec.n_features == 3

    def test_min_df_drops_rare_terms(self):
        vec = TfIdfVectorizer(min_df=2).fit(DOCS)
        assert "matilda" in vec.vocabulary  # appears in 2 documents
        assert "television" not in vec.vocabulary  # appears once

    def test_similar_documents_have_higher_cosine(self):
        vec = TfIdfVectorizer().fit(DOCS)
        X = vec.transform(
            [
                "matilda grossed strongly",
                "matilda grossed very strongly indeed",
                "completely unrelated sentence about databases",
            ]
        )
        sim_close = float(X[0] @ X[1])
        sim_far = float(X[0] @ X[2])
        assert sim_close > sim_far

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TfIdfVectorizer(min_df=0)
        with pytest.raises(ValueError):
            TfIdfVectorizer(max_features=0)

    def test_deterministic(self):
        X1 = TfIdfVectorizer().fit_transform(DOCS)
        X2 = TfIdfVectorizer().fit_transform(DOCS)
        assert np.allclose(X1, X2)


class TestHashingVectorizer:
    def test_shape(self):
        X = HashingVectorizer(n_features=64).transform(DOCS)
        assert X.shape == (len(DOCS), 64)

    def test_stateless_fit_is_noop(self):
        vec = HashingVectorizer(n_features=32)
        assert vec.fit(DOCS) is vec
        assert np.allclose(vec.fit_transform(DOCS), vec.transform(DOCS))

    def test_deterministic_across_instances(self):
        X1 = HashingVectorizer(n_features=128).transform(DOCS)
        X2 = HashingVectorizer(n_features=128).transform(DOCS)
        assert np.allclose(X1, X2)

    def test_normalization(self):
        X = HashingVectorizer(n_features=128).transform(DOCS)
        norms = np.linalg.norm(X, axis=1)
        assert np.allclose(norms[norms > 0], 1.0)

    def test_without_normalization_counts_tokens(self):
        X = HashingVectorizer(n_features=8, normalize=False).transform(["a a a"])
        assert abs(X).sum() == pytest.approx(3.0)

    def test_empty_document_is_zero_vector(self):
        X = HashingVectorizer(n_features=16).transform([""])
        assert np.allclose(X, 0.0)

    def test_invalid_n_features(self):
        with pytest.raises(ValueError):
            HashingVectorizer(n_features=0)
