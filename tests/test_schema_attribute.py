"""Tests for repro.schema.attribute."""

import pytest

from repro.errors import SchemaError
from repro.schema.attribute import (
    Attribute,
    infer_type,
    profile_values,
)


class TestInferType:
    def test_integers(self):
        assert infer_type([1, 2, 3]) == "integer"
        assert infer_type(["1", "2", "30"]) == "integer"

    def test_floats(self):
        assert infer_type([1.5, 2.5]) == "float"
        assert infer_type(["1.5", "2.25"]) == "float"

    def test_booleans(self):
        assert infer_type([True, False, True]) == "boolean"
        assert infer_type(["true", "false"]) == "boolean"

    def test_dates(self):
        assert infer_type(["3/4/2013", "12/25/2014"]) == "date"
        assert infer_type(["2013-03-04", "2014-12-25"]) == "date"

    def test_money(self):
        assert infer_type(["$27", "$1,250.50"]) == "money"

    def test_strings(self):
        assert infer_type(["Matilda", "Wicked"]) == "string"

    def test_mixed_falls_back_to_string(self):
        assert infer_type(["1", "Matilda", "x", "y", "z"]) == "string"

    def test_majority_wins(self):
        assert infer_type(["1", "2", "3", "4", "oops"]) == "integer"

    def test_empty_is_unknown(self):
        assert infer_type([]) == "unknown"
        assert infer_type([None, ""]) == "unknown"


class TestProfileValues:
    def test_counts(self):
        profile = profile_values(["a", "b", "a", None, ""])
        assert profile.non_null_count == 3
        assert profile.null_count == 2
        assert profile.distinct_count == 2
        assert profile.total_count == 5

    def test_null_fraction(self):
        profile = profile_values(["a", None])
        assert profile.null_fraction == 0.5

    def test_distinct_fraction_key_like(self):
        profile = profile_values([f"id{i}" for i in range(50)])
        assert profile.distinct_fraction == 1.0

    def test_numeric_summaries(self):
        profile = profile_values([10, 20, 30])
        assert profile.numeric_mean == pytest.approx(20.0)
        assert profile.numeric_std == pytest.approx(8.1649, rel=1e-3)

    def test_money_strings_count_as_numeric(self):
        profile = profile_values(["$27", "$33"])
        assert profile.numeric_mean == pytest.approx(30.0)

    def test_token_set_built_from_values(self):
        profile = profile_values(["Matilda Show", "Wicked Show"])
        assert {"matilda", "wicked", "show"} <= set(profile.token_set)

    def test_sample_values_capped(self):
        profile = profile_values([f"v{i}" for i in range(100)], max_samples=10)
        assert len(profile.sample_values) == 10

    def test_empty_profile(self):
        profile = profile_values([None, None])
        assert profile.inferred_type == "unknown"
        assert profile.non_null_count == 0
        assert profile.null_fraction == 1.0
        assert profile.distinct_fraction == 0.0

    def test_mean_length(self):
        profile = profile_values(["ab", "abcd"])
        assert profile.mean_length == pytest.approx(3.0)


class TestAttribute:
    def test_requires_name(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_add_alias_skips_self_and_empty(self):
        attr = Attribute("show_name")
        attr.add_alias("show_name")
        attr.add_alias("")
        attr.add_alias("SHOW")
        assert attr.aliases == {"SHOW"}

    def test_merge_profile_accumulates_counts(self):
        attr = Attribute("price", profile=profile_values(["$10", "$20"]))
        attr.merge_profile(profile_values(["$30", "$40", "$50"]))
        assert attr.profile.non_null_count == 5

    def test_merge_profile_unions_tokens(self):
        attr = Attribute("name", profile=profile_values(["Matilda"]))
        attr.merge_profile(profile_values(["Wicked"]))
        assert {"matilda", "wicked"} <= set(attr.profile.token_set)

    def test_merge_profile_weighted_numeric_mean(self):
        attr = Attribute("n", profile=profile_values([10.0]))
        attr.merge_profile(profile_values([20.0, 20.0, 20.0]))
        assert attr.profile.numeric_mean == pytest.approx(17.5)

    def test_merge_profile_keeps_known_type(self):
        attr = Attribute("n", profile=profile_values([1, 2]))
        attr.merge_profile(profile_values([]))
        assert attr.profile.inferred_type == "integer"

    def test_merge_into_empty_profile_adopts_other(self):
        attr = Attribute("n")
        attr.merge_profile(profile_values(["$10"]))
        assert attr.profile.inferred_type == "money"

    def test_merge_two_empty_profiles(self):
        attr = Attribute("n", profile=profile_values([None]))
        attr.merge_profile(profile_values([None, None]))
        assert attr.profile.non_null_count == 0
        assert attr.profile.null_count == 3
