"""Tests for repro.storage.sharding."""

import pytest

from repro.errors import StorageError
from repro.storage.sharding import Extent, ExtentAllocator, ShardRouter, _stable_hash


class TestStableHash:
    def test_deterministic(self):
        assert _stable_hash("abc") == _stable_hash("abc")

    def test_different_values_differ(self):
        assert _stable_hash("abc") != _stable_hash("abd")

    def test_handles_non_strings(self):
        assert isinstance(_stable_hash(("a", 1)), int)


class TestShardRouter:
    def test_rejects_zero_shards(self):
        with pytest.raises(StorageError):
            ShardRouter(0)

    def test_shard_in_range(self):
        router = ShardRouter(4)
        for i in range(100):
            assert 0 <= router.shard_for(f"doc{i}") < 4

    def test_same_id_same_shard(self):
        router = ShardRouter(8)
        assert router.shard_for("x") == router.shard_for("x")

    def test_distribution_counts_all_ids(self):
        router = ShardRouter(4)
        ids = [f"doc{i}" for i in range(200)]
        dist = router.distribution(ids)
        assert sum(dist) == 200
        assert len(dist) == 4

    def test_distribution_is_reasonably_balanced(self):
        router = ShardRouter(4)
        dist = router.distribution(f"doc{i}" for i in range(2000))
        # hash sharding should keep every shard within 2x of the mean
        assert min(dist) > 2000 / 4 / 2
        assert max(dist) < 2000 / 4 * 2

    def test_single_shard_gets_everything(self):
        router = ShardRouter(1)
        assert router.distribution(range(50)) == [50]


class TestExtent:
    def test_fits_and_add(self):
        extent = Extent(shard=0, capacity_bytes=100)
        assert extent.fits(100)
        extent.add(60)
        assert extent.free_bytes == 40
        assert not extent.fits(41)
        assert extent.doc_count == 1


class TestExtentAllocator:
    def test_rejects_bad_parameters(self):
        with pytest.raises(StorageError):
            ExtentAllocator(extent_size_bytes=0, num_shards=1)
        with pytest.raises(StorageError):
            ExtentAllocator(extent_size_bytes=10, num_shards=0)

    def test_allocates_first_extent_lazily(self):
        alloc = ExtentAllocator(extent_size_bytes=100, num_shards=2)
        assert alloc.num_extents == 0
        alloc.allocate(0, 10)
        assert alloc.num_extents == 1

    def test_new_extent_when_full(self):
        alloc = ExtentAllocator(extent_size_bytes=100, num_shards=1)
        alloc.allocate(0, 60)
        alloc.allocate(0, 60)  # does not fit in the first extent
        assert alloc.num_extents == 2

    def test_oversized_document_gets_own_extent(self):
        alloc = ExtentAllocator(extent_size_bytes=100, num_shards=1)
        alloc.allocate(0, 250)
        assert alloc.num_extents == 1
        assert alloc.last_extent_size == 250

    def test_extents_are_per_shard(self):
        alloc = ExtentAllocator(extent_size_bytes=100, num_shards=2)
        alloc.allocate(0, 50)
        alloc.allocate(1, 50)
        assert alloc.num_extents == 2
        assert alloc.extents_per_shard() == [1, 1]

    def test_last_extent_size_tracks_most_recent(self):
        alloc = ExtentAllocator(extent_size_bytes=100, num_shards=1)
        alloc.allocate(0, 30)
        assert alloc.last_extent_size == 30
        alloc.allocate(0, 30)
        assert alloc.last_extent_size == 60

    def test_total_used_bytes(self):
        alloc = ExtentAllocator(extent_size_bytes=100, num_shards=2)
        alloc.allocate(0, 40)
        alloc.allocate(1, 25)
        assert alloc.total_used_bytes == 65

    def test_shard_out_of_range_rejected(self):
        alloc = ExtentAllocator(extent_size_bytes=100, num_shards=2)
        with pytest.raises(StorageError):
            alloc.allocate(5, 10)

    def test_negative_size_rejected(self):
        alloc = ExtentAllocator(extent_size_bytes=100, num_shards=2)
        with pytest.raises(StorageError):
            alloc.allocate(0, -1)

    def test_extent_count_grows_linearly_with_volume(self):
        alloc = ExtentAllocator(extent_size_bytes=1000, num_shards=1)
        for _ in range(100):
            alloc.allocate(0, 100)
        assert alloc.num_extents == 10
