"""Tests for repro.cleaning.corrector (ML-assisted value correction)."""

import numpy as np
import pytest

from repro.cleaning.corrector import (
    VALUE_FEATURE_NAMES,
    ColumnContext,
    ValueCorrector,
)
from repro.errors import CleaningError, NotFittedError

PRICES = ["$27", "$30", "$29", "$31", "$28", "$9999", "$27", "$30", "$26", "$32"]
GENRES = ["Musical"] * 10 + ["Play"] * 6 + ["xq9!#"]


class TestColumnContext:
    def test_featurize_length_matches_names(self):
        context = ColumnContext.from_values(PRICES)
        assert context.featurize("$27").shape == (len(VALUE_FEATURE_NAMES),)

    def test_features_bounded(self):
        context = ColumnContext.from_values(PRICES)
        for value in PRICES + [None, "", "garbage!!"]:
            features = context.featurize(value)
            assert np.all(features >= 0.0) and np.all(features <= 1.0)

    def test_outlier_value_more_anomalous_than_typical(self):
        context = ColumnContext.from_values(PRICES)
        typical = context.featurize("$29")
        outlier = context.featurize("$9999")
        assert outlier.sum() > typical.sum()

    def test_robust_to_masking(self):
        # the gross error must not hide itself by inflating the column scale
        context = ColumnContext.from_values(PRICES)
        named = dict(zip(VALUE_FEATURE_NAMES, context.featurize("$9999")))
        assert named["numeric_zscore"] > 0.5

    def test_type_mismatch_feature(self):
        context = ColumnContext.from_values(["10", "20", "30", "40"])
        named = dict(zip(VALUE_FEATURE_NAMES, context.featurize("hello")))
        assert named["type_mismatch"] == 1.0

    def test_null_like_feature(self):
        context = ColumnContext.from_values(["a", "b", "c"])
        named = dict(zip(VALUE_FEATURE_NAMES, context.featurize("N/A")))
        assert named["null_like"] == 1.0


class TestValueCorrectorSupervised:
    def _labels(self):
        return {
            "price": [0, 0, 0, 0, 0, 1, 0, 0, 0, 0],
            "genre": [0] * 16 + [1],
        }

    def test_fit_and_score(self):
        corrector = ValueCorrector().fit(
            {"price": PRICES, "genre": GENRES}, self._labels()
        )
        scores = corrector.score_column(PRICES)
        assert scores[5] == max(scores)

    def test_flag_records(self):
        corrector = ValueCorrector(threshold=0.5).fit(
            {"price": PRICES, "genre": GENRES}, self._labels()
        )
        records = [{"price": p} for p in PRICES]
        flags = corrector.flag_records(records, columns=["price"])
        assert [f.value for f in flags] == ["$9999"]
        assert flags[0].row_index == 5

    def test_repair_suggestion_for_dominant_category(self):
        corrector = ValueCorrector(threshold=0.5).fit(
            {"price": PRICES, "genre": GENRES}, self._labels()
        )
        records = [{"genre": g} for g in GENRES]
        flags = corrector.flag_records(records, columns=["genre"])
        assert flags, "the junk genre should be flagged"
        assert flags[0].value == "xq9!#"
        assert flags[0].suggestion == "Musical"

    def test_misaligned_labels_rejected(self):
        with pytest.raises(CleaningError):
            ValueCorrector().fit({"price": PRICES}, {"price": [0, 1]})

    def test_single_class_rejected(self):
        with pytest.raises(CleaningError):
            ValueCorrector().fit({"price": PRICES}, {"price": [0] * len(PRICES)})

    def test_empty_training_rejected(self):
        with pytest.raises(CleaningError):
            ValueCorrector().fit({}, {})

    def test_invalid_threshold(self):
        with pytest.raises(CleaningError):
            ValueCorrector(threshold=2.0)

    def test_score_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            ValueCorrector().score_column(PRICES)
        with pytest.raises(NotFittedError):
            ValueCorrector().flag_records([{"a": 1}])


class TestValueCorrectorUnsupervised:
    def test_bootstrap_flags_gross_numeric_error(self):
        corrector = ValueCorrector(threshold=0.5).fit_unsupervised(
            {"price": PRICES, "genre": GENRES}
        )
        flags = corrector.flag_records(
            [{"price": p} for p in PRICES], columns=["price"]
        )
        assert [f.value for f in flags] == ["$9999"]

    def test_bootstrap_without_outliers_rejected(self):
        with pytest.raises(CleaningError):
            ValueCorrector().fit_unsupervised({"constant": ["x"] * 20})

    def test_null_values_never_flagged(self):
        corrector = ValueCorrector(threshold=0.1).fit_unsupervised(
            {"price": PRICES + [None, ""]}
        )
        flags = corrector.flag_records(
            [{"price": p} for p in PRICES + [None, ""]], columns=["price"]
        )
        assert all(f.value not in (None, "") for f in flags)

    def test_flags_sorted_by_probability(self):
        corrector = ValueCorrector(threshold=0.3).fit_unsupervised(
            {"price": PRICES, "genre": GENRES}
        )
        flags = corrector.flag_records(
            [{"price": p, "genre": g} for p, g in zip(PRICES, GENRES)]
        )
        probabilities = [f.probability_erroneous for f in flags]
        assert probabilities == sorted(probabilities, reverse=True)
