"""Tests for repro.text.parser (the domain-specific parser)."""

import pytest

from repro.errors import ParserError
from repro.text.gazetteer import Gazetteer
from repro.text.parser import DomainParser, EntityMention


class TestGazetteerMatching:
    def test_finds_single_word_entity(self, parser):
        parsed = parser.parse("Everyone is talking about Matilda this season.")
        shows = [m for m in parsed.mentions if m.entity_type == "Movie"]
        assert any(m.canonical == "Matilda" for m in shows)

    def test_finds_multiword_entity_longest_match(self, parser):
        parsed = parser.parse("Tickets for The Walking Dead are sold out.")
        movies = [m for m in parsed.mentions if m.entity_type == "Movie"]
        assert any(m.canonical == "The Walking Dead" for m in movies)

    def test_mention_span_points_at_surface(self, parser):
        text = "I loved Matilda a lot"
        parsed = parser.parse(text)
        mention = next(m for m in parsed.mentions if m.canonical == "Matilda")
        assert text[mention.char_start:mention.char_end].startswith("Matilda")

    def test_case_and_punctuation_insensitive(self, parser):
        parsed = parser.parse("matilda, obviously, is great")
        assert any(m.canonical == "Matilda" for m in parsed.mentions)

    def test_multiple_entity_types_in_one_text(self, parser):
        parsed = parser.parse(
            "Matilda at the Shubert Theatre impressed Michael Stonebraker."
        )
        types = {m.entity_type for m in parsed.mentions}
        assert {"Movie", "Facility", "Person"} <= types

    def test_no_gazetteer_still_parses_with_rules(self):
        parser = DomainParser(gazetteer=None)
        parsed = parser.parse("Visit http://example.com for $25 tickets")
        types = {m.entity_type for m in parsed.mentions}
        assert "URL" in types


class TestPatternRules:
    def test_url_rule(self, parser):
        parsed = parser.parse("Read more at http://broadway.example.com/matilda today")
        urls = [m for m in parsed.mentions if m.entity_type == "URL"]
        assert len(urls) == 1

    def test_money_rule(self, parser):
        parsed = parser.parse("Tickets from $27 this weekend")
        money = [
            m for m in parsed.mentions
            if m.attributes.get("kind") == "money"
        ]
        assert len(money) == 1
        assert money[0].canonical == "$27"

    def test_date_rule(self, parser):
        parsed = parser.parse("Previews started 3/4/2013 downtown")
        dates = [m for m in parsed.mentions if m.attributes.get("kind") == "date"]
        assert len(dates) == 1

    def test_capitalized_sequence_rule_skips_sentence_start(self):
        parser = DomainParser(gazetteer=None)
        parsed = parser.parse("Great Acting wins awards")
        persons = [m for m in parsed.mentions if m.entity_type == "Person"]
        assert persons == []

    def test_capitalized_sequence_detects_names(self):
        parser = DomainParser(gazetteer=None)
        parsed = parser.parse("the director praised Jane Doe after the show")
        persons = [m for m in parsed.mentions if m.entity_type == "Person"]
        assert any(m.canonical == "Jane Doe" for m in persons)

    def test_rules_can_be_disabled(self):
        gaz = Gazetteer()
        gaz.add("Matilda", entity_type="Movie")
        parser = DomainParser(gazetteer=gaz, enable_pattern_rules=False)
        parsed = parser.parse("Matilda tickets from $27 at http://x.com")
        types = {m.entity_type for m in parsed.mentions}
        assert types == {"Movie"}

    def test_gazetteer_mention_not_duplicated_by_rules(self, parser):
        parsed = parser.parse("a chat with Michael Stonebraker yesterday")
        stonebraker = [
            m for m in parsed.mentions if m.canonical == "Michael Stonebraker"
        ]
        assert len(stonebraker) == 1


class TestParsedDocument:
    def test_mentions_sorted_by_position(self, parser):
        parsed = parser.parse("Goodfellas then Matilda then Wicked")
        starts = [m.char_start for m in parsed.mentions]
        assert starts == sorted(starts)

    def test_entities_by_type_groups(self, parser):
        parsed = parser.parse("Matilda at the Shubert Theatre")
        grouped = parsed.entities_by_type()
        assert "Movie" in grouped and "Facility" in grouped

    def test_entity_documents_are_hierarchical(self, parser):
        parsed = parser.parse("Matilda was great", source_id="doc7")
        docs = parsed.entity_documents()
        assert docs
        assert docs[0]["entity"]["name"] == "Matilda"
        assert docs[0]["mention"]["span"]["start"] >= 0
        assert docs[0]["source_id"] == "doc7"

    def test_fragment_documents_reference_entity(self, parser):
        parsed = parser.parse("Matilda was great. A second sentence.", source_id="doc7")
        frags = parsed.fragment_documents()
        assert frags[0]["entity"] == "Matilda"
        assert "Matilda" in frags[0]["text_feed"]

    def test_one_fragment_per_mention(self, parser):
        parsed = parser.parse("Matilda and Wicked and Goodfellas")
        assert len(parsed.fragments) == len(parsed.mentions)


class TestErrors:
    def test_none_input_raises(self, parser):
        with pytest.raises(ParserError):
            parser.parse(None)

    def test_empty_text_yields_no_mentions(self, parser):
        parsed = parser.parse("")
        assert parsed.mentions == [] and parsed.fragments == []

    def test_parse_many(self, parser):
        results = parser.parse_many([("a", "Matilda rocks"), ("b", "Wicked rules")])
        assert [r.source_id for r in results] == ["a", "b"]


class TestEntityMention:
    def test_as_hierarchical_shape(self):
        mention = EntityMention(
            canonical="Matilda",
            entity_type="Movie",
            surface="matilda",
            char_start=3,
            char_end=10,
            attributes={"origin": "London"},
        )
        doc = mention.as_hierarchical()
        assert doc["entity"]["type"] == "Movie"
        assert doc["entity"]["attributes"]["origin"] == "London"
        assert doc["mention"]["span"] == {"start": 3, "end": 10}
