"""Tests for repro.ml.metrics."""

import pytest

from repro.ml.metrics import (
    ClassificationReport,
    accuracy,
    confusion_matrix,
    f1_score,
    precision,
    recall,
)


class TestConfusionMatrix:
    def test_counts(self):
        y_true = [1, 1, 0, 0, 1]
        y_pred = [1, 0, 0, 1, 1]
        assert confusion_matrix(y_true, y_pred) == (2, 1, 1, 1)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix([1, 0], [1])


class TestPrecisionRecall:
    def test_perfect(self):
        assert precision([1, 0, 1], [1, 0, 1]) == 1.0
        assert recall([1, 0, 1], [1, 0, 1]) == 1.0

    def test_known_values(self):
        y_true = [1, 1, 1, 0, 0]
        y_pred = [1, 1, 0, 1, 0]
        assert precision(y_true, y_pred) == pytest.approx(2 / 3)
        assert recall(y_true, y_pred) == pytest.approx(2 / 3)

    def test_no_predicted_positives(self):
        assert precision([1, 1], [0, 0]) == 0.0

    def test_no_actual_positives(self):
        assert recall([0, 0], [1, 0]) == 0.0

    def test_precision_ignores_missed_positives(self):
        # one confident correct prediction: precision 1, recall low
        y_true = [1, 1, 1, 1]
        y_pred = [1, 0, 0, 0]
        assert precision(y_true, y_pred) == 1.0
        assert recall(y_true, y_pred) == 0.25


class TestF1Accuracy:
    def test_f1_harmonic_mean(self):
        y_true = [1, 1, 1, 0, 0]
        y_pred = [1, 1, 0, 1, 0]
        p, r = precision(y_true, y_pred), recall(y_true, y_pred)
        assert f1_score(y_true, y_pred) == pytest.approx(2 * p * r / (p + r))

    def test_f1_zero_when_nothing_right(self):
        assert f1_score([1, 1], [0, 0]) == 0.0

    def test_accuracy(self):
        assert accuracy([1, 0, 1, 0], [1, 0, 0, 0]) == 0.75

    def test_accuracy_empty(self):
        assert accuracy([], []) == 0.0


class TestClassificationReport:
    def test_from_predictions(self):
        report = ClassificationReport.from_predictions([1, 1, 0, 0], [1, 0, 0, 0])
        assert report.support_positive == 2
        assert report.support_negative == 2
        assert report.precision == 1.0
        assert report.recall == 0.5

    def test_as_dict_keys(self):
        report = ClassificationReport.from_predictions([1, 0], [1, 0])
        assert set(report.as_dict()) == {
            "precision", "recall", "f1", "accuracy",
            "support_positive", "support_negative",
        }
