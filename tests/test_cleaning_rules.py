"""Tests for repro.cleaning.rules."""

import pytest

from repro.cleaning.rules import (
    CleaningRule,
    RuleEngine,
    collapse_whitespace,
    fix_mojibake_dashes,
    normalize_nulls,
    standard_rules,
    strip_surrounding_quotes,
    titlecase_names,
    trim_whitespace,
)
from repro.errors import CleaningError


class TestRuleFunctions:
    def test_trim_whitespace(self):
        assert trim_whitespace("  x  ") == "x"
        assert trim_whitespace(5) == 5

    def test_collapse_whitespace(self):
        assert collapse_whitespace("a   b\t c") == "a b c"

    def test_normalize_nulls(self):
        for token in ("", "N/A", "null", "-", "unknown", "?"):
            assert normalize_nulls(token) is None
        assert normalize_nulls("Matilda") == "Matilda"
        assert normalize_nulls(0) == 0

    def test_strip_surrounding_quotes(self):
        assert strip_surrounding_quotes('"Matilda"') == "Matilda"
        assert strip_surrounding_quotes("'x'") == "x"
        assert strip_surrounding_quotes('"unbalanced') == '"unbalanced'

    def test_fix_mojibake(self):
        assert fix_mojibake_dashes("7pm – 9pm") == "7pm - 9pm"
        assert fix_mojibake_dashes("it’s") == "it's"

    def test_titlecase_names(self):
        assert titlecase_names("MATILDA") == "Matilda"
        assert titlecase_names("matilda") == "Matilda"
        assert titlecase_names("McDonald") == "McDonald"  # mixed case untouched


class TestCleaningRule:
    def test_applies_to_restriction(self):
        rule = CleaningRule("upper", str.upper, applies_to=("name",))
        assert rule.applies("name")
        assert not rule.applies("price")

    def test_empty_applies_to_means_everything(self):
        rule = CleaningRule("upper", str.upper)
        assert rule.applies("anything")


class TestRuleEngine:
    def test_standard_rules_clean_dirty_record(self):
        engine = RuleEngine()
        cleaned = engine.clean_record(
            {"name": "  Matilda  ", "price": "N/A", "venue": '"Shubert"'}
        )
        assert cleaned == {"name": "Matilda", "price": None, "venue": "Shubert"}

    def test_applied_counts_increment(self):
        engine = RuleEngine()
        engine.clean_record({"a": "  x  "})
        assert engine.applied_counts["trim_whitespace"] == 1

    def test_add_custom_rule(self):
        engine = RuleEngine(rules=[])
        engine.add_rule(
            CleaningRule("upper", lambda v: v.upper() if isinstance(v, str) else v)
        )
        assert engine.clean_value("x", "abc") == "ABC"

    def test_rule_restricted_to_attribute(self):
        rule = CleaningRule(
            "strip_dollar",
            lambda v: v.lstrip("$") if isinstance(v, str) else v,
            applies_to=("price",),
        )
        engine = RuleEngine(rules=[rule])
        record = engine.clean_record({"price": "$27", "name": "$weird"})
        assert record == {"price": "27", "name": "$weird"}

    def test_failing_rule_raises_cleaning_error(self):
        engine = RuleEngine(rules=[CleaningRule("bad", lambda v: 1 / 0)])
        with pytest.raises(CleaningError):
            engine.clean_value("x", "anything")

    def test_clean_records_batch(self):
        engine = RuleEngine()
        out = engine.clean_records([{"a": " x "}, {"a": "n/a"}])
        assert out == [{"a": "x"}, {"a": None}]

    def test_as_loader_transform(self, document_store):
        from repro.ingest.connectors import DictSource
        from repro.ingest.loader import BatchLoader

        collection = document_store.create_collection("c")
        engine = RuleEngine()
        BatchLoader().load(
            DictSource("s", [{"name": "  Matilda  "}]),
            collection,
            transform=engine.as_loader_transform(),
        )
        assert collection.find_one()["name"] == "Matilda"

    def test_standard_rules_are_ordered_and_named(self):
        names = [rule.name for rule in standard_rules()]
        assert names.index("trim_whitespace") < names.index("normalize_nulls")
        assert len(names) == len(set(names))
