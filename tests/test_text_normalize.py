"""Tests for repro.text.normalize."""

from repro.text.normalize import (
    TextNormalizer,
    normalize_whitespace,
    strip_accents,
    strip_html,
    strip_punctuation,
    strip_urls,
)


class TestHelpers:
    def test_normalize_whitespace(self):
        assert normalize_whitespace("  a   b \t c \n") == "a b c"

    def test_strip_punctuation(self):
        assert strip_punctuation("a,b.c!").replace(" ", "") == "abc"

    def test_strip_accents(self):
        assert strip_accents("café résumé") == "cafe resume"

    def test_strip_html(self):
        assert "bold" in strip_html("<b>bold</b> text")
        assert "<b>" not in strip_html("<b>bold</b> text")

    def test_strip_urls(self):
        cleaned = strip_urls("see http://example.com/page and www.other.org now")
        assert "http" not in cleaned and "www" not in cleaned


class TestTextNormalizer:
    def test_default_pipeline(self):
        normalizer = TextNormalizer()
        assert normalizer.normalize("  The Shubert THEATRE, Inc. ") == (
            "the shubert theater incorporated"
        )

    def test_handles_none(self):
        assert TextNormalizer().normalize(None) == ""

    def test_handles_non_string(self):
        assert TextNormalizer().normalize(27) == "27"

    def test_abbreviation_expansion(self):
        normalizer = TextNormalizer()
        assert normalizer.normalize("44th St") == "44th street"
        assert normalizer.normalize("Acme Corp") == "acme corporation"

    def test_custom_abbreviations(self):
        normalizer = TextNormalizer(abbreviations={"bway": "broadway"})
        assert normalizer.normalize("bway shows") == "broadway shows"
        # defaults are replaced, not merged
        assert normalizer.normalize("Acme Corp") == "acme corp"

    def test_disable_lowercase(self):
        normalizer = TextNormalizer(lowercase=False, abbreviations={})
        assert normalizer.normalize("Matilda Show") == "Matilda Show"

    def test_disable_punctuation_removal(self):
        normalizer = TextNormalizer(remove_punctuation=False, abbreviations={})
        assert "," in normalizer.normalize("a, b")

    def test_html_and_urls_removed(self):
        normalizer = TextNormalizer()
        result = normalizer.normalize("<p>Visit http://tickets.example.com today</p>")
        assert "http" not in result and "<p>" not in result

    def test_callable_interface(self):
        normalizer = TextNormalizer()
        assert normalizer("ABC") == normalizer.normalize("ABC")

    def test_normalize_many_preserves_order(self):
        normalizer = TextNormalizer()
        assert normalizer.normalize_many(["A", "B"]) == ["a", "b"]

    def test_idempotent(self):
        normalizer = TextNormalizer()
        once = normalizer.normalize("The Shubert Theatre, Inc.")
        assert normalizer.normalize(once) == once
