"""Unit suite for the metrics half of the observability layer.

The registry's contract: registration is idempotent (same name + same
shape returns the same family; a conflicting re-registration is an
error), the disabled path is a shared no-op, and histogram quantile
estimates always land in the same bucket as the true sample percentile —
that last property is what lets the serve benchmark cross-check the
server's own latency histogram against independently measured client
percentiles.
"""

import json
import math
import random

import pytest

from repro.errors import ObsError
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    NOOP,
    Histogram,
    MetricsRegistry,
    TelemetryHub,
)
from repro.obs.metrics import NoopInstrument


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ObsError):
            counter.inc(-1)

    def test_labeled_series_are_independent(self):
        family = MetricsRegistry().counter("ops_total", labels=("op",))
        family.labels(op="ping").inc()
        family.labels(op="ping").inc()
        family.labels(op="status").inc()
        values = {
            labels["op"]: instrument.value
            for labels, instrument in family.series()
        }
        assert values == {"ping": 2.0, "status": 1.0}

    def test_wrong_label_names_rejected(self):
        family = MetricsRegistry().counter("ops_total", labels=("op",))
        with pytest.raises(ObsError):
            family.labels(operation="ping")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_callback_gauge_reads_at_observation_time(self):
        state = {"value": 1.0}
        gauge = MetricsRegistry().gauge(
            "lag_seconds", callback=lambda: state["value"]
        )
        assert gauge.value == 1.0
        state["value"] = 7.5
        assert gauge.value == 7.5

    def test_callback_gauge_exception_reads_nan(self):
        def broken():
            raise RuntimeError("source went away")

        gauge = MetricsRegistry().gauge("lag_seconds", callback=broken)
        assert math.isnan(gauge.value)

    def test_callback_gauge_rejects_set(self):
        gauge = MetricsRegistry().gauge("lag", callback=lambda: 0.0)
        with pytest.raises(ObsError):
            gauge.set(1.0)


class TestHistogram:
    def test_count_sum_min_max(self):
        histogram = Histogram(buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.5, 4.0, 9.0):
            histogram.observe(value)
        payload = histogram.as_dict()
        assert payload["count"] == 4
        assert payload["sum"] == pytest.approx(15.0)
        assert payload["min"] == 0.5
        assert payload["max"] == 9.0

    def test_buckets_are_cumulative_with_inf(self):
        histogram = Histogram(buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 3.0, 4.0):
            histogram.observe(value)
        buckets = histogram.as_dict()["buckets"]
        assert buckets == [
            {"le": 1.0, "count": 1},
            {"le": 2.0, "count": 2},
            {"le": "+Inf", "count": 4},
        ]

    def test_non_ascending_buckets_rejected(self):
        with pytest.raises(ObsError):
            Histogram(buckets=(1.0, 1.0, 2.0))

    def test_empty_histogram_quantile_is_zero(self):
        assert Histogram().quantile(0.5) == 0.0

    @pytest.mark.parametrize("seed", [3, 17, 92])
    @pytest.mark.parametrize("q", [0.5, 0.95, 0.99])
    def test_quantile_lands_in_true_sample_bucket(self, seed, q):
        """The estimate and the true percentile share a bucket.

        This is the oracle the serve benchmark relies on: record every
        sample on the side, compute the exact percentile from the sorted
        samples, and require the histogram's interpolated estimate to
        fall inside the same bucket interval.
        """
        rng = random.Random(seed)
        histogram = Histogram(buckets=DEFAULT_LATENCY_BUCKETS)
        samples = [rng.lognormvariate(-6.0, 1.5) for _ in range(500)]
        for sample in samples:
            histogram.observe(sample)
        ordered = sorted(samples)
        true_value = ordered[min(len(ordered) - 1, int(q * len(ordered)))]
        estimate = histogram.quantile(q)
        edges = (0.0,) + DEFAULT_LATENCY_BUCKETS + (math.inf,)
        for low, high in zip(edges, edges[1:]):
            if low < true_value <= high:
                assert low <= estimate <= high
                break

    def test_quantile_clamped_to_observed_range(self):
        histogram = Histogram(buckets=(1.0, 10.0))
        histogram.observe(2.0)
        histogram.observe(3.0)
        assert 2.0 <= histogram.quantile(0.99) <= 3.0


class TestRegistry:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("hits_total", "help", labels=("op",))
        second = registry.counter("hits_total", "help", labels=("op",))
        assert first is second

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ObsError):
            registry.gauge("thing")

    def test_label_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing_total", labels=("op",))
        with pytest.raises(ObsError):
            registry.counter("thing_total", labels=("operation",))

    def test_invalid_name_rejected(self):
        with pytest.raises(ObsError):
            MetricsRegistry().counter("bad name!")

    def test_disabled_registry_returns_shared_noop(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c_total", labels=("op",))
        assert counter is NOOP
        assert isinstance(counter.labels(op="x"), NoopInstrument)
        counter.inc()
        counter.labels(op="x").observe(3)
        assert counter.value == 0.0
        assert registry.snapshot() == {}

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", "cache hits").inc(3)
        registry.histogram("lat_seconds", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["hits_total"]["type"] == "counter"
        assert snapshot["hits_total"]["series"][0]["value"] == 3.0
        histogram = snapshot["lat_seconds"]["series"][0]
        assert histogram["count"] == 1
        assert "p95" in histogram
        json.dumps(snapshot)  # wire-safe


class TestPrometheusRender:
    def test_render_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", "Cache hits", labels=("op",)).labels(
            op="search"
        ).inc(2)
        registry.gauge("depth", "Queue depth").set(4)
        registry.histogram("lat_seconds", buckets=(0.1, 1.0)).observe(0.05)
        text = registry.render_prometheus()
        assert "# TYPE hits_total counter" in text
        assert 'hits_total{op="search"} 2' in text
        assert "depth 4" in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labels=("q",)).labels(
            q='say "hi"\nplease\\now'
        ).inc()
        text = registry.render_prometheus()
        assert '\\"hi\\"' in text
        assert "\\n" in text


class TestTelemetryHub:
    def test_disabled_hub_is_inert(self):
        hub = TelemetryHub(enabled=False)
        hub.registry.counter("c_total").inc()
        with hub.tracer.span("x"):
            pass
        snapshot = hub.snapshot()
        assert snapshot["enabled"] is False
        assert snapshot["metrics"] == {}
        assert hub.tracer.export() == []

    def test_snapshot_writer_appends_jsonl(self, tmp_path):
        path = tmp_path / "obs" / "snapshots.jsonl"
        hub = TelemetryHub(
            snapshot_path=str(path), snapshot_interval_seconds=60.0
        )
        hub.registry.counter("c_total").inc(2)
        hub.close()  # forces the final flush
        lines = path.read_text().strip().splitlines()
        assert len(lines) >= 1
        record = json.loads(lines[-1])
        assert record["metrics"]["c_total"]["series"][0]["value"] == 2.0
