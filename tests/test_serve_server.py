"""End-to-end tests for the query server over real sockets."""

import json
import socket
import time

import pytest

from repro import DataTamer
from repro.config import ServeConfig
from repro.entity.consolidation import ConsolidatedEntity
from repro.errors import ServeError
from repro.query.engine import QueryEngine
from repro.serve import QueryClient, QueryServer, serve_in_background
from repro.workloads import DedupCorpusGenerator

CURATED = [
    {"_id": 1, "_source": "ftable:00", "show_name": "Matilda",
     "theater": "Shubert", "cheapest_price": "$27"},
    {"_id": 2, "_source": "webtext", "show_name": "Matilda",
     "text_feed": "fragment...", "theater": ""},
    {"_id": 3, "_source": "ftable:00", "show_name": "Wicked",
     "theater": "Gershwin"},
]

INSTANCE = [
    {"entity": "Matilda", "entity_type": "Movie"},
    {"entity": "Matilda", "entity_type": "Movie"},
    {"entity": "Wicked", "entity_type": "Movie"},
]


def _entity(eid, attributes):
    return ConsolidatedEntity(
        entity_id=eid,
        member_record_ids=[eid],
        source_ids=["s"],
        attributes=attributes,
    )


def _engine():
    return QueryEngine(
        [
            _entity("e1", {"show_name": "Matilda", "theater": "Shubert"}),
            _entity("e2", {"show_name": "Wicked", "theater": "Gershwin"}),
        ],
        watermark=1,
    )


def _server(**config_kwargs):
    return QueryServer(
        _engine(),
        config=ServeConfig(**config_kwargs),
        curated_documents=lambda: list(CURATED),
        instance_documents=lambda: list(INSTANCE),
        prefer_sources=["ftable:00"],
    )


@pytest.fixture
def handle():
    with serve_in_background(_server()) as running:
        yield running


def _client(handle):
    return QueryClient("127.0.0.1", handle.port)


class TestServerOperations:
    def test_ping(self, handle):
        with _client(handle) as client:
            assert client.ping() == {"pong": True, "protocol": 1}

    def test_find_equal_stamps_snapshot(self, handle):
        with _client(handle) as client:
            response = client.request(
                "find_equal", {"attribute": "show_name", "value": "MATILDA"}
            )
        assert response["ok"] is True
        assert response["cached"] is False
        assert (response["version"], response["watermark"]) == (0, 1)
        assert response["result"]["count"] == 1
        entity = response["result"]["entities"][0]
        assert entity["attributes"]["theater"] == "Shubert"

    def test_search_with_attribute_restriction(self, handle):
        with _client(handle) as client:
            assert client.search("gershwin")["count"] == 1
            assert (
                client.search("gershwin", attributes=["show_name"])["count"]
                == 0
            )

    def test_lookup_show_punctuation_only_is_empty_not_an_error(self, handle):
        # the satellite fix, observed through the wire protocol
        with _client(handle) as client:
            assert client.lookup_show("!!!")["count"] == 0

    def test_top_k_uses_captured_mentions(self, handle):
        with _client(handle) as client:
            ranking = client.top_k(k=2)
        assert ranking[0] == {
            "entity": "Matilda",
            "entity_type": "Movie",
            "mentions": 2,
        }

    def test_fuse_serves_fused_record(self, handle):
        with _client(handle) as client:
            fused = client.fuse("matilda")
        assert fused["attributes"]["theater"] == "Shubert"
        assert fused["provenance"]["theater"] == "ftable:00"
        # the empty-valued webtext theater must not list webtext twice
        assert fused["contributing_sources"] == ["ftable:00", "webtext"]

    def test_status_payload(self, handle):
        with _client(handle) as client:
            status = client.status()
        assert status["protocol"] == 1
        assert status["entities"] == 2
        assert status["watermark"] == 1
        assert status["sessions"]["active"] == 1
        assert "hits" in status["cache"]


class TestServerErrors:
    def test_query_error_reply_keeps_connection_usable(self, handle):
        with _client(handle) as client:
            response = client.request("search", {"phrase": "!!!"})
            assert response["ok"] is False
            assert response["error"]["type"] == "QueryError"
            assert client.ping() == {"pong": True, "protocol": 1}

    def test_unknown_op_reply_keeps_connection_usable(self, handle):
        with _client(handle) as client:
            response = client.request("explode", {})
            assert response["ok"] is False
            assert response["error"]["type"] == "ProtocolError"
            assert client.ping()["pong"] is True

    def test_malformed_json_line(self, handle):
        with socket.create_connection(("127.0.0.1", handle.port)) as sock:
            stream = sock.makefile("rwb")
            stream.write(b"{nope\n")
            stream.flush()
            body = json.loads(stream.readline())
            assert body["ok"] is False and body["id"] is None

    def test_oversize_line_hangs_up_but_server_survives(self):
        with serve_in_background(_server(max_request_bytes=1024)) as running:
            with _client(running) as client:
                client.connect()
                # the server refuses the desynced stream: we either read its
                # ProtocolError reply or the connection drops mid-flight
                try:
                    response = client.request(
                        "search", {"phrase": "x " * 4096}
                    )
                except (ServeError, ConnectionError):
                    pass
                else:
                    assert response["ok"] is False
                    assert (
                        "max_request_bytes" in response["error"]["message"]
                    )
                with pytest.raises((ServeError, ConnectionError)):
                    client.ping()
            # fresh connections keep working
            with _client(running) as probe:
                assert probe.ping()["pong"] is True

    def test_blank_lines_are_ignored(self, handle):
        with socket.create_connection(("127.0.0.1", handle.port)) as sock:
            stream = sock.makefile("rwb")
            stream.write(b"\n\n" + b'{"op": "ping", "id": 1}\n')
            stream.flush()
            assert json.loads(stream.readline())["ok"] is True


class TestServerCache:
    def test_equivalent_requests_share_a_cache_entry(self, handle):
        with _client(handle) as client:
            first = client.request("search", {"phrase": "walking matilda"})
            second = client.request("search", {"phrase": "MATILDA walking"})
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["result"] == first["result"]

    def test_cache_disabled(self):
        with serve_in_background(_server(cache_size=0)) as running:
            with _client(running) as client:
                client.search("matilda")
                response = client.request("search", {"phrase": "matilda"})
        assert response["cached"] is False

    def test_sessions_close_when_clients_disconnect(self, handle):
        client = _client(handle).connect()
        client.ping()
        assert client.status()["sessions"]["active"] == 1
        client.close()
        with _client(handle) as probe:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                stats = probe.status()["sessions"]
                if stats["active"] == 1:  # just the probe itself
                    break
                time.sleep(0.01)
        assert stats["active"] == 1
        assert stats["opened"] >= 2


class TestStreamingInvalidation:
    @pytest.fixture
    def stack(self, small_config):
        tamer = DataTamer(small_config)
        corpus = DedupCorpusGenerator(seed=29).generate(n_entities=24)
        tamer.train_dedup_model(corpus.pairs)
        for record in corpus.records[:12]:
            tamer.curated_collection.insert(
                dict(record.as_dict(), _source="seed")
            )
        stream = tamer.start_stream(key_attribute="name")
        server = tamer.create_server(key_attribute="name")
        extra = [
            dict(record.as_dict(), _source="late")
            for record in corpus.records[12:]
        ]
        with serve_in_background(server) as handle:
            yield tamer, stream, server, handle, extra
        tamer.close()

    def test_publish_swaps_version_and_refreshes_cache(self, stack):
        tamer, stream, server, handle, extra = stack
        with _client(handle) as client:
            first = client.request("search", {"phrase": "the"})
            assert first["ok"] and first["cached"] is False
            warm = client.request("search", {"phrase": "the"})
            assert warm["cached"] is True

            for doc in extra:
                tamer.curated_collection.insert(doc)
            stream.query_engine()  # drives the publish

            after = client.request("search", {"phrase": "the"})
            assert after["version"] > first["version"]

            # the hottest stale entry is re-primed in the background:
            # soon the same query hits again at the *new* version
            deadline = time.monotonic() + 10.0
            cached_again = False
            while time.monotonic() < deadline:
                repeat = client.request("search", {"phrase": "the"})
                if repeat["cached"] and repeat["version"] == after["version"]:
                    cached_again = True
                    break
                time.sleep(0.02)
            assert cached_again
            # the stale entry was resolved one of the two ways: eagerly by
            # the background refresh or lazily by a client recompute
            stats = server.cache.stats()
            assert stats["refreshes"] + stats["stale_misses"] >= 1

    def test_responses_stay_coherent_across_publish(self, stack):
        tamer, stream, server, handle, extra = stack
        with _client(handle) as client:
            before = client.status()
            for doc in extra:
                tamer.curated_collection.insert(doc)
            stream.query_engine()
            after = client.status()
        assert after["version"] > before["version"]
        assert after["entities"] >= before["entities"]
        assert after["publishes"] > before["publishes"]
