"""Property-based tests for union-find and clustering invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.entity.clustering import UnionFind, cluster_pairs

_elements = st.integers(min_value=0, max_value=30)
_pairs = st.lists(st.tuples(_elements, _elements), max_size=40)


@given(_pairs)
@settings(max_examples=150, deadline=None)
def test_groups_partition_all_elements(pairs):
    uf = UnionFind(range(31))
    for a, b in pairs:
        uf.union(a, b)
    groups = uf.groups()
    seen = sorted(x for group in groups for x in group)
    assert seen == list(range(31))


@given(_pairs)
@settings(max_examples=150, deadline=None)
def test_connectivity_is_symmetric_and_transitive(pairs):
    uf = UnionFind(range(31))
    for a, b in pairs:
        uf.union(a, b)
    for a, b in pairs:
        assert uf.connected(a, b)
        assert uf.connected(b, a)
    # transitivity spot-check via roots: same root <=> connected
    for a, b in pairs[:10]:
        assert (uf.find(a) == uf.find(b)) == uf.connected(a, b)


@given(_pairs)
@settings(max_examples=100, deadline=None)
def test_group_count_decreases_monotonically(pairs):
    uf = UnionFind(range(31))
    previous = uf.group_count()
    for a, b in pairs:
        uf.union(a, b)
        current = uf.group_count()
        assert current <= previous
        previous = current


@given(_pairs)
@settings(max_examples=100, deadline=None)
def test_cluster_pairs_covers_every_id_once(pairs):
    ids = [str(i) for i in range(31)]
    str_pairs = [(str(a), str(b)) for a, b in pairs if a != b]
    clusters = cluster_pairs(ids, str_pairs)
    seen = sorted(x for cluster in clusters for x in cluster)
    assert seen == sorted(ids)


@given(_pairs, st.integers(min_value=2, max_value=6))
@settings(max_examples=100, deadline=None)
def test_max_cluster_size_respected(pairs, max_size):
    ids = [str(i) for i in range(31)]
    str_pairs = [(str(a), str(b)) for a, b in pairs if a != b]
    scores = {pair: 0.5 for pair in str_pairs}
    clusters = cluster_pairs(ids, str_pairs, scores=scores, max_cluster_size=max_size)
    assert all(len(cluster) <= max_size for cluster in clusters)
    seen = sorted(x for cluster in clusters for x in cluster)
    assert seen == sorted(ids)
