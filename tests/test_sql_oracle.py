"""Randomized SQL corpus checked bit-identically against a Python oracle.

Every query is generated as a structured *spec*, rendered to SQL text for
the engine, and independently evaluated by a plain-Python oracle that
reimplements the documented semantics (two-valued NULL logic, the shared
total order, first-seen grouping, stable multi-key sorts) without touching
any ``repro.sql`` machinery.  Engine rows must match oracle rows byte-for-
byte under canonical JSON.
"""

import json
import random

import pytest

from repro.entity.consolidation import ConsolidatedEntity
from repro.query.snapshot import EntitySnapshot
from repro.sql import SqlContext, run_sql

SEED = 20260808
N_ENTITIES = 60

GENRES = ("drama", "comedy", "scifi", "news", None)


# -- dataset ----------------------------------------------------------------


def _build_dataset(rng):
    """Plain row dicts (the oracle's world) + the matching entities."""
    entity_rows = []
    cluster_rows = []
    entities = []
    for i in range(N_ENTITIES):
        members = 1 + rng.randrange(3)
        sources = sorted({f"s{rng.randrange(4)}" for _ in range(members)})
        attributes = {
            "name": f"show {rng.randrange(40):03d}",
            "year": None if rng.random() < 0.15 else 1980 + rng.randrange(45),
            "rating": None if rng.random() < 0.2 else round(rng.uniform(1, 10), 1),
            "genre": rng.choice(GENRES),
            "code": (
                rng.randrange(100)
                if rng.random() < 0.5
                else f"c{rng.randrange(100)}"
            ),
        }
        entity_id = f"e{i:03d}"
        member_ids = [f"{entity_id}-r{j}" for j in range(members)]
        entities.append(
            ConsolidatedEntity(
                entity_id=entity_id,
                member_record_ids=member_ids,
                source_ids=list(sources),
                attributes=dict(attributes),
            )
        )
        row = {
            "entity_id": entity_id,
            "size": members,
            "source_count": len(sources),
            "sources": ",".join(sources),
        }
        row.update(attributes)
        entity_rows.append(row)
        for j, record_id in enumerate(member_ids):
            cluster_rows.append(
                {
                    "entity_id": entity_id,
                    "record_id": record_id,
                    "member_index": j,
                    "cluster_size": members,
                }
            )
    return entity_rows, cluster_rows, entities


# -- oracle semantics (independent reimplementation) ------------------------


def _sort_key(value):
    if value is None:
        return (1, 0, 0)
    if isinstance(value, bool):
        return (0, 0, int(value))
    if isinstance(value, (int, float)):
        return (0, 0, value)
    if isinstance(value, str):
        return (0, 1, value)
    return (0, 2, repr(value))


def _cmp(op, left, right):
    if left is None or right is None:
        return False
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    lk, rk = _sort_key(left), _sort_key(right)
    if lk[1] != rk[1]:
        return False
    if op == "<":
        return lk < rk
    if op == "<=":
        return lk <= rk
    if op == ">":
        return lk > rk
    return lk >= rk


def _matches(row, conjunct):
    column, op, operand = conjunct
    value = row[column]
    if op == "IS NULL":
        return value is None
    if op == "IS NOT NULL":
        return value is not None
    if op == "IN":
        if value is None:
            return False
        return any(value == candidate for candidate in operand)
    return _cmp(op, value, operand)


def _filter(rows, conjuncts):
    return [
        row
        for row in rows
        if all(_matches(row, conjunct) for conjunct in conjuncts)
    ]


def _order(tuples, names, order_by):
    ordered = list(tuples)
    for name, descending in reversed(order_by):
        index = names.index(name)
        ordered.sort(key=lambda t: _sort_key(t[index]), reverse=descending)
    return ordered


def _distinct(tuples):
    seen = set()
    out = []
    for t in tuples:
        if t in seen:
            continue
        seen.add(t)
        out.append(t)
    return out


def _aggregate_value(func, column, rows):
    if func == "count_star":
        return len(rows)
    values = [row[column] for row in rows if row[column] is not None]
    if func == "count":
        return len(values)
    if not values:
        return None
    if func == "min":
        return min(values, key=_sort_key)
    if func == "max":
        return max(values, key=_sort_key)
    if func == "sum":
        return sum(values)
    if func == "avg":
        return sum(values) / len(values)
    raise AssertionError(func)


# -- spec → SQL text --------------------------------------------------------


def _literal(value):
    if value is None:
        return "NULL"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return repr(value)


def _conjunct_sql(conjunct, qualify=None):
    column, op, operand = conjunct
    name = f"{qualify}.{column}" if qualify else column
    if op in ("IS NULL", "IS NOT NULL"):
        return f"{name} {op}"
    if op == "IN":
        return f"{name} IN ({', '.join(_literal(v) for v in operand)})"
    return f"{name} {op} {_literal(operand)}"


def _order_sql(order_by):
    return ", ".join(
        f"{name} DESC" if descending else name for name, descending in order_by
    )


# -- corpus generation ------------------------------------------------------

_COLUMNS = ("entity_id", "name", "year", "rating", "genre", "code",
            "size", "source_count", "sources")
_OPS = ("=", "=", "!=", "<", "<=", ">", ">=", "IS NULL", "IS NOT NULL", "IN")


def _random_operand(rng, rows, column):
    pool = [row[column] for row in rows if row[column] is not None]
    if pool and rng.random() < 0.7:
        return rng.choice(pool)
    return rng.choice(
        [rng.randrange(2050), "zzz", round(rng.uniform(0, 12), 1), "c13"]
    )


def _random_conjunct(rng, rows, columns=_COLUMNS):
    column = rng.choice(columns)
    op = rng.choice(_OPS)
    if op in ("IS NULL", "IS NOT NULL"):
        return (column, op, None)
    if op == "IN":
        values = [
            _random_operand(rng, rows, column)
            for _ in range(1 + rng.randrange(4))
        ]
        if rng.random() < 0.2:
            values.append(None)
        return (column, op, tuple(values))
    return (column, op, _random_operand(rng, rows, column))


def _random_order_by(rng, names):
    count = rng.randrange(min(2, len(names))) + 1
    picked = rng.sample(list(names), count)
    return [(name, rng.random() < 0.5) for name in picked]


def _maybe_limit(rng):
    return rng.randrange(20) if rng.random() < 0.4 else None


# -- the corpus test --------------------------------------------------------


@pytest.fixture(scope="module")
def world():
    rng = random.Random(SEED)
    entity_rows, cluster_rows, entities = _build_dataset(rng)
    snapshot = EntitySnapshot(entities=tuple(entities), version=1)
    return {
        "entities": entity_rows,
        "clusters": cluster_rows,
        "context": SqlContext(snapshot),
    }


def _check(context, query, expected_names, expected_tuples):
    result = run_sql(context, query)
    assert result.columns == tuple(expected_names), query
    got = json.dumps(
        [list(row) for row in result.rows],
        sort_keys=True, separators=(",", ":"),
    )
    want = json.dumps(
        [list(row) for row in expected_tuples],
        sort_keys=True, separators=(",", ":"),
    )
    assert got == want, query


class TestRandomizedCorpus:
    def test_simple_selects(self, world):
        rng = random.Random(SEED + 1)
        rows = world["entities"]
        for _ in range(60):
            names = rng.sample(_COLUMNS, 1 + rng.randrange(4))
            conjuncts = [
                _random_conjunct(rng, rows) for _ in range(rng.randrange(3))
            ]
            order_by = (
                _random_order_by(rng, names) if rng.random() < 0.7 else []
            )
            limit = _maybe_limit(rng)

            query = f"SELECT {', '.join(names)} FROM entities"
            if conjuncts:
                query += " WHERE " + " AND ".join(
                    _conjunct_sql(c) for c in conjuncts
                )
            if order_by:
                query += " ORDER BY " + _order_sql(order_by)
            if limit is not None:
                query += f" LIMIT {limit}"

            expected = [
                tuple(row[name] for name in names)
                for row in _filter(rows, conjuncts)
            ]
            expected = _order(expected, names, order_by)
            if limit is not None:
                expected = expected[:limit]
            _check(world["context"], query, names, expected)

    def test_distinct_selects(self, world):
        rng = random.Random(SEED + 2)
        rows = world["entities"]
        for _ in range(25):
            names = rng.sample(["name", "year", "genre", "size"],
                               1 + rng.randrange(2))
            conjuncts = [
                _random_conjunct(rng, rows) for _ in range(rng.randrange(2))
            ]
            order_by = _random_order_by(rng, names)
            limit = _maybe_limit(rng)

            query = f"SELECT DISTINCT {', '.join(names)} FROM entities"
            if conjuncts:
                query += " WHERE " + " AND ".join(
                    _conjunct_sql(c) for c in conjuncts
                )
            query += " ORDER BY " + _order_sql(order_by)
            if limit is not None:
                query += f" LIMIT {limit}"

            expected = [
                tuple(row[name] for name in names)
                for row in _filter(rows, conjuncts)
            ]
            expected = _distinct(expected)
            expected = _order(expected, names, order_by)
            if limit is not None:
                expected = expected[:limit]
            _check(world["context"], query, names, expected)

    def test_aggregate_selects(self, world):
        rng = random.Random(SEED + 3)
        rows = world["entities"]
        agg_pool = (
            ("count_star", None),
            ("count", "rating"),
            ("count", "year"),
            ("min", "name"),
            ("min", "rating"),
            ("max", "year"),
            ("max", "code"),
            ("sum", "year"),
            ("avg", "rating"),
        )
        for _ in range(30):
            group = rng.choice(("genre", "year", "name", "size"))
            aggs = rng.sample(list(agg_pool), 1 + rng.randrange(3))
            conjuncts = [
                _random_conjunct(rng, rows) for _ in range(rng.randrange(2))
            ]
            names = [group] + [f"a{i}" for i in range(len(aggs))]
            order_by = _random_order_by(rng, names)
            limit = _maybe_limit(rng)

            rendered_aggs = []
            for i, (func, column) in enumerate(aggs):
                inner = "*" if func == "count_star" else column
                fname = "COUNT" if func == "count_star" else func.upper()
                rendered_aggs.append(f"{fname}({inner}) AS a{i}")
            query = (
                f"SELECT {group}, {', '.join(rendered_aggs)} FROM entities"
            )
            if conjuncts:
                query += " WHERE " + " AND ".join(
                    _conjunct_sql(c) for c in conjuncts
                )
            query += f" GROUP BY {group}"
            query += " ORDER BY " + _order_sql(order_by)
            if limit is not None:
                query += f" LIMIT {limit}"

            filtered = _filter(rows, conjuncts)
            groups = {}
            group_order = []
            for row in filtered:
                key = row[group]
                if key not in groups:
                    groups[key] = []
                    group_order.append(key)
                groups[key].append(row)
            expected = []
            for key in group_order:
                bucket = groups[key]
                values = [key]
                for func, column in aggs:
                    values.append(_aggregate_value(func, column, bucket))
                expected.append(tuple(values))
            expected = _order(expected, names, order_by)
            if limit is not None:
                expected = expected[:limit]
            _check(world["context"], query, names, expected)

    def test_join_selects(self, world):
        rng = random.Random(SEED + 4)
        entity_rows = world["entities"]
        cluster_rows = world["clusters"]
        entity_where_cols = ("name", "year", "rating", "genre", "code")
        cluster_where_cols = ("cluster_size", "member_index")
        for _ in range(25):
            entity_cols = rng.sample(("name", "year", "genre"),
                                     1 + rng.randrange(2))
            cluster_cols = rng.sample(("record_id", "member_index"),
                                      1 + rng.randrange(2))
            names = [f"n{i}" for i in range(len(entity_cols) + len(cluster_cols))]
            e_conjuncts = [
                _random_conjunct(rng, entity_rows, entity_where_cols)
                for _ in range(rng.randrange(2))
            ]
            c_conjuncts = [
                _random_conjunct(rng, cluster_rows, cluster_where_cols)
                for _ in range(rng.randrange(2))
            ]
            order_by = _random_order_by(rng, names)
            limit = _maybe_limit(rng)

            items = [
                f"e.{col} AS n{i}" for i, col in enumerate(entity_cols)
            ] + [
                f"c.{col} AS n{i + len(entity_cols)}"
                for i, col in enumerate(cluster_cols)
            ]
            query = (
                f"SELECT {', '.join(items)} FROM entities e "
                "JOIN clusters c ON e.entity_id = c.entity_id"
            )
            where_parts = [_conjunct_sql(c, "e") for c in e_conjuncts] + [
                _conjunct_sql(c, "c") for c in c_conjuncts
            ]
            if where_parts:
                query += " WHERE " + " AND ".join(where_parts)
            query += " ORDER BY " + _order_sql(order_by)
            if limit is not None:
                query += f" LIMIT {limit}"

            left = _filter(entity_rows, e_conjuncts)
            right = _filter(cluster_rows, c_conjuncts)
            buckets = {}
            for row in right:
                buckets.setdefault(row["entity_id"], []).append(row)
            expected = []
            for erow in left:
                for crow in buckets.get(erow["entity_id"], ()):
                    expected.append(
                        tuple(erow[col] for col in entity_cols)
                        + tuple(crow[col] for col in cluster_cols)
                    )
            expected = _order(expected, names, order_by)
            if limit is not None:
                expected = expected[:limit]
            _check(world["context"], query, names, expected)
