"""Property-based tests for string/set similarity measures."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schema.matchers import (
    jaccard_similarity,
    jaro_winkler,
    levenshtein_distance,
    levenshtein_ratio,
    name_similarity,
    ngram_similarity,
)

_words = st.text(alphabet=string.ascii_lowercase + "_ ", max_size=15)
_sets = st.sets(st.integers(min_value=0, max_value=50), max_size=15)


@given(_words, _words)
@settings(max_examples=200, deadline=None)
def test_levenshtein_symmetry_and_bounds(a, b):
    assert levenshtein_distance(a, b) == levenshtein_distance(b, a)
    assert 0.0 <= levenshtein_ratio(a, b) <= 1.0


@given(_words)
@settings(max_examples=100, deadline=None)
def test_levenshtein_identity(a):
    assert levenshtein_distance(a, a) == 0
    assert levenshtein_ratio(a, a) == 1.0


@given(_words, _words, _words)
@settings(max_examples=100, deadline=None)
def test_levenshtein_triangle_inequality(a, b, c):
    assert levenshtein_distance(a, c) <= (
        levenshtein_distance(a, b) + levenshtein_distance(b, c)
    )


@given(_words, _words)
@settings(max_examples=200, deadline=None)
def test_jaro_winkler_bounds_and_symmetry(a, b):
    score = jaro_winkler(a, b)
    assert 0.0 <= score <= 1.0 + 1e-9
    assert abs(score - jaro_winkler(b, a)) < 1e-9


@given(_words, _words)
@settings(max_examples=200, deadline=None)
def test_ngram_similarity_bounds(a, b):
    assert 0.0 <= ngram_similarity(a, b) <= 1.0


@given(_sets, _sets)
@settings(max_examples=200, deadline=None)
def test_jaccard_bounds_symmetry_identity(a, b):
    score = jaccard_similarity(a, b)
    assert 0.0 <= score <= 1.0
    assert score == jaccard_similarity(b, a)
    assert jaccard_similarity(a, a) == 1.0


@given(_words, _words)
@settings(max_examples=200, deadline=None)
def test_name_similarity_bounds_and_symmetry(a, b):
    score = name_similarity(a, b)
    assert 0.0 <= score <= 1.0 + 1e-9
    assert abs(score - name_similarity(b, a)) < 1e-9


@given(_words)
@settings(max_examples=100, deadline=None)
def test_name_similarity_identity(a):
    assert name_similarity(a, a) == 1.0
