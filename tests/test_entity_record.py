"""Tests for repro.entity.record."""

import pytest

from repro.entity.record import Record, records_from_dicts
from repro.errors import EntityResolutionError


class TestRecord:
    def test_from_dict_and_back(self):
        record = Record.from_dict("r1", "s1", {"name": "Matilda", "price": 27})
        assert record.as_dict() == {"name": "Matilda", "price": 27}
        assert record.record_id == "r1"
        assert record.source_id == "s1"

    def test_requires_record_id(self):
        with pytest.raises(EntityResolutionError):
            Record.from_dict("", "s", {"a": 1})

    def test_get_with_default(self):
        record = Record.from_dict("r1", "s1", {"name": "Matilda"})
        assert record.get("name") == "Matilda"
        assert record.get("missing", "x") == "x"

    def test_normalized(self):
        record = Record.from_dict("r1", "s1", {"name": "  The SHUBERT Theatre "})
        assert record.normalized("name") == "the shubert theater"
        assert record.normalized("missing") == ""

    def test_text_blob_joins_values(self):
        record = Record.from_dict("r1", "s1", {"name": "Matilda", "venue": "Shubert"})
        blob = record.text_blob()
        assert "matilda" in blob and "shubert" in blob

    def test_text_blob_restricted_to_attributes(self):
        record = Record.from_dict("r1", "s1", {"name": "Matilda", "venue": "Shubert"})
        assert "shubert" not in record.text_blob(["name"])

    def test_text_blob_skips_nulls(self):
        record = Record.from_dict("r1", "s1", {"name": "Matilda", "x": None, "y": ""})
        assert record.text_blob() == "matilda"

    def test_attribute_names_excludes_nulls(self):
        record = Record.from_dict("r1", "s1", {"a": 1, "b": None, "c": ""})
        assert record.attribute_names == ["a"]

    def test_hashable_and_frozen(self):
        record = Record.from_dict("r1", "s1", {"a": 1})
        assert hash(record)
        with pytest.raises(AttributeError):
            record.record_id = "other"


class TestRecordsFromDicts:
    def test_generated_ids_are_unique(self):
        records = records_from_dicts([{"a": 1}, {"a": 2}], "src")
        assert len({r.record_id for r in records}) == 2
        assert all(r.source_id == "src" for r in records)

    def test_id_attribute_used_when_present(self):
        records = records_from_dicts(
            [{"key": "k1", "a": 1}, {"a": 2}], "src", id_attribute="key"
        )
        assert records[0].record_id == "src:k1"
        assert records[1].record_id.startswith("src:r")

    def test_empty_input(self):
        assert records_from_dicts([], "src") == []
