"""Alert threshold rules over the metrics registry.

Unit-level: :class:`ThresholdRule` (gauge crossed a line),
:class:`RateRule` (counters climbing too fast over a sliding window), and
:class:`AlertManager` composition.  End-to-end coverage — ``alerts`` in
the serve ``status`` payload — lives in the serving tests; here a fake
clock makes the rate windows exact.
"""

from repro.config import ObsConfig
from repro.obs import (
    AlertManager,
    MetricsRegistry,
    RateRule,
    TelemetryHub,
    ThresholdRule,
    standard_rules,
)


class _Clock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestThresholdRule:
    def test_fires_at_or_past_the_bound(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("stream_watermark_age_seconds", "age")
        rule = ThresholdRule("stale", "stream_watermark_age_seconds", 300.0)
        gauge.set(299.9)
        assert rule.evaluate(registry, 0.0) is None
        gauge.set(300.0)
        alert = rule.evaluate(registry, 0.0)
        assert alert["rule"] == "stale"
        assert alert["kind"] == "threshold"
        assert alert["value"] == 300.0
        assert alert["threshold"] == 300.0

    def test_unregistered_metric_never_fires(self):
        rule = ThresholdRule("stale", "no_such_metric", 1.0)
        assert rule.evaluate(MetricsRegistry(), 0.0) is None

    def test_non_positive_threshold_disables(self):
        registry = MetricsRegistry()
        registry.gauge("g", "g").set(1e9)
        assert ThresholdRule("x", "g", 0.0).evaluate(registry, 0.0) is None
        assert ThresholdRule("x", "g", -1.0).evaluate(registry, 0.0) is None

    def test_max_over_labeled_series(self):
        registry = MetricsRegistry()
        family = registry.gauge("g", "g", labels=("shard",))
        family.labels(shard="0").set(5.0)
        family.labels(shard="1").set(50.0)
        alert = ThresholdRule("x", "g", 10.0).evaluate(registry, 0.0)
        assert alert["value"] == 50.0


class TestRateRule:
    def test_single_sample_never_fires(self):
        registry = MetricsRegistry()
        registry.counter("pool_respawns_total", "r").inc(1000)
        rule = RateRule("storm", ("pool_respawns_total",), per_minute=1.0)
        assert rule.evaluate(registry, 0.0) is None

    def test_fires_on_fast_climb_and_clears_on_slow(self):
        registry = MetricsRegistry()
        counter = registry.counter("pool_respawns_total", "r")
        rule = RateRule(
            "storm", ("pool_respawns_total",), per_minute=30.0,
            window_seconds=60.0,
        )
        assert rule.evaluate(registry, 0.0) is None  # first sample arms it
        counter.inc(10)  # 10 respawns in 10s = 60/min: past the bound
        alert = rule.evaluate(registry, 10.0)
        assert alert["kind"] == "rate"
        assert alert["value"] == 60.0
        # no further respawns: the rate decays below the bound
        assert rule.evaluate(registry, 50.0) is None

    def test_sums_multiple_counter_families(self):
        registry = MetricsRegistry()
        crashed = registry.counter("pool_respawns_total", "r")
        hung = registry.counter("pool_hung_respawns_total", "h")
        rule = RateRule(
            "storm",
            ("pool_respawns_total", "pool_hung_respawns_total"),
            per_minute=30.0,
        )
        rule.evaluate(registry, 0.0)
        crashed.inc(3)
        hung.inc(3)  # 6 combined in 10s = 36/min
        assert rule.evaluate(registry, 10.0)["value"] == 36.0

    def test_window_slides_old_samples_out(self):
        registry = MetricsRegistry()
        counter = registry.counter("c", "c")
        rule = RateRule("x", ("c",), per_minute=30.0, window_seconds=60.0)
        rule.evaluate(registry, 0.0)
        counter.inc(100)
        rule.evaluate(registry, 30.0)  # fires, and is a window sample
        # 200s later the burst is ancient history; rate since the oldest
        # *retained* sample is ~0
        assert rule.evaluate(registry, 230.0) is None

    def test_unregistered_metrics_never_fire(self):
        rule = RateRule("x", ("nope",), per_minute=1.0)
        registry = MetricsRegistry()
        assert rule.evaluate(registry, 0.0) is None
        assert rule.evaluate(registry, 10.0) is None


class TestAlertManager:
    def test_evaluate_returns_firing_rules_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.gauge("b_gauge", "b").set(10.0)
        registry.gauge("a_gauge", "a").set(10.0)
        clock = _Clock()
        manager = AlertManager(registry, clock=clock)
        manager.add(ThresholdRule("zeta", "b_gauge", 5.0)).add(
            ThresholdRule("alpha", "a_gauge", 5.0)
        )
        assert [a["rule"] for a in manager.evaluate()] == ["alpha", "zeta"]
        assert len(manager.rules) == 2

    def test_standard_rules_cover_the_standing_failure_modes(self):
        names = {rule.name for rule in standard_rules()}
        assert names == {"stream_watermark_stale", "pool_respawn_storm"}

    def test_hub_wires_rules_from_obs_config(self):
        hub = TelemetryHub.from_config(
            ObsConfig(alert_watermark_age_seconds=7.0)
        )
        thresholds = [
            rule
            for rule in hub.alerts.rules
            if isinstance(rule, ThresholdRule)
        ]
        assert thresholds and thresholds[0].threshold == 7.0
        hub.registry.gauge("stream_watermark_age_seconds", "age").set(8.0)
        assert [a["rule"] for a in hub.alerts.evaluate()] == [
            "stream_watermark_stale"
        ]
