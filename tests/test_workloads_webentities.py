"""Tests for repro.workloads.webentities."""

import pytest

from repro.text.gazetteer import ENTITY_TYPES
from repro.workloads.webentities import TABLE3_TYPE_COUNTS, WebEntitiesGenerator


class TestTable3Counts:
    def test_matches_paper_totals(self):
        assert TABLE3_TYPE_COUNTS["Person"] == 38_867_351
        assert TABLE3_TYPE_COUNTS["ProvinceOrState"] == 223_243
        assert len(TABLE3_TYPE_COUNTS) == 15

    def test_types_are_known_entity_types(self):
        assert set(TABLE3_TYPE_COUNTS) == set(ENTITY_TYPES)


class TestWebEntitiesGenerator:
    def test_generates_requested_count(self):
        assert len(WebEntitiesGenerator(seed=1).generate(500)) == 500

    def test_deterministic(self):
        a = WebEntitiesGenerator(seed=2).generate(100)
        b = WebEntitiesGenerator(seed=2).generate(100)
        assert [e.name for e in a] == [e.name for e in b]

    def test_entity_ids_unique(self):
        entities = WebEntitiesGenerator(seed=3).generate(300)
        assert len({e.entity_id for e in entities}) == 300

    def test_type_mixture_follows_table3(self):
        generator = WebEntitiesGenerator(seed=4)
        entities = generator.generate(20_000)
        histogram = generator.type_histogram(entities)
        total = sum(histogram.values())
        person_share = histogram["Person"] / total
        movie_share = histogram.get("Movie", 0) / total
        expected_person = TABLE3_TYPE_COUNTS["Person"] / sum(
            TABLE3_TYPE_COUNTS.values()
        )
        assert person_share == pytest.approx(expected_person, abs=0.02)
        assert movie_share < 0.01
        # the ordering of the two dominant types matches the paper
        ranked = list(histogram)
        assert ranked[0] == "Person"
        assert ranked[1] == "OrgEntity"

    def test_expected_counts_sum_close_to_n(self):
        generator = WebEntitiesGenerator(seed=0)
        expected = generator.expected_counts(10_000)
        assert abs(sum(expected.values()) - 10_000) < 20

    def test_as_document_shape(self):
        entity = WebEntitiesGenerator(seed=5).generate(1)[0]
        doc = entity.as_document()
        assert {"entity_id", "type", "name"} <= set(doc)

    def test_custom_type_counts(self):
        generator = WebEntitiesGenerator(seed=6, type_counts={"Movie": 1, "Person": 1})
        entities = generator.generate(100)
        assert {e.entity_type for e in entities} <= {"Movie", "Person"}

    def test_probabilities_sum_to_one(self):
        probs = WebEntitiesGenerator(seed=0).type_probabilities
        assert sum(probs.values()) == pytest.approx(1.0)

    def test_entities_have_names(self):
        entities = WebEntitiesGenerator(seed=7).generate(200)
        assert all(e.name for e in entities)
