"""Tests for repro.schema.integrator."""

import pytest

from repro.config import SchemaConfig
from repro.errors import SchemaError
from repro.schema.integrator import SchemaIntegrator
from repro.schema.mapping import MappingDecision


SEED_RECORDS = [
    {"show_name": "Matilda", "theater": "Shubert", "cheapest_price": "$27"},
    {"show_name": "Wicked", "theater": "Gershwin", "cheapest_price": "$89"},
    {"show_name": "Chicago", "theater": "Ambassador", "cheapest_price": "$49"},
]

VARIANT_RECORDS = [
    {"SHOW_NAME": "Matilda", "THEATER": "Shubert", "LOWEST_PRICE": "$27"},
    {"SHOW_NAME": "Once", "THEATER": "Jacobs", "LOWEST_PRICE": "$35"},
]

UNRELATED_RECORDS = [
    {"patient_id": "p1", "diagnosis": "influenza", "dosage_mg": 50},
    {"patient_id": "p2", "diagnosis": "asthma", "dosage_mg": 20},
]


class TestBootstrap:
    def test_initialize_from_source_seeds_schema(self):
        integrator = SchemaIntegrator()
        report = integrator.initialize_from_source("seed", SEED_RECORDS)
        assert len(integrator.global_schema) == 3
        assert all(
            m.decision == MappingDecision.ADDED_TO_GLOBAL for m in report.mappings
        )

    def test_initialize_uses_canonical_names(self):
        integrator = SchemaIntegrator()
        integrator.initialize_from_source("seed", VARIANT_RECORDS)
        assert "show_name" in integrator.global_schema
        assert "lowest_price" in integrator.global_schema

    def test_initialize_twice_rejected(self):
        integrator = SchemaIntegrator()
        integrator.initialize_from_source("seed", SEED_RECORDS)
        with pytest.raises(SchemaError):
            integrator.initialize_from_source("seed2", SEED_RECORDS)

    def test_integrate_on_empty_schema_bootstraps(self):
        integrator = SchemaIntegrator()
        integrator.integrate_source("first", SEED_RECORDS)
        assert len(integrator.global_schema) == 3


class TestIntegration:
    def test_naming_variants_map_onto_existing_attributes(self):
        integrator = SchemaIntegrator()
        integrator.initialize_from_source("seed", SEED_RECORDS)
        report = integrator.integrate_source("variant", VARIANT_RECORDS)
        translation = report.translation()
        assert translation["SHOW_NAME"] == "show_name"
        assert translation["THEATER"] == "theater"

    def test_unrelated_attributes_added_as_new(self):
        integrator = SchemaIntegrator()
        integrator.initialize_from_source("seed", SEED_RECORDS)
        report = integrator.integrate_source("medical", UNRELATED_RECORDS)
        added = [
            m for m in report.mappings
            if m.decision == MappingDecision.ADDED_TO_GLOBAL
        ]
        assert len(added) == 3
        assert "diagnosis" in integrator.global_schema

    def test_new_attributes_can_be_disallowed(self):
        integrator = SchemaIntegrator()
        integrator.initialize_from_source("seed", SEED_RECORDS)
        report = integrator.integrate_source(
            "medical", UNRELATED_RECORDS, allow_new_attributes=False
        )
        assert all(
            m.decision in (MappingDecision.IGNORED, MappingDecision.AUTO_ACCEPT)
            for m in report.mappings
        )
        assert "diagnosis" not in integrator.global_schema

    def test_alias_short_circuits_matching(self):
        integrator = SchemaIntegrator()
        integrator.initialize_from_source("seed", SEED_RECORDS)
        integrator.integrate_source("variant", VARIANT_RECORDS)
        # the second time the same local names arrive, they are known aliases
        report = integrator.integrate_source("variant2", VARIANT_RECORDS)
        mapping = report.mapping_for("SHOW_NAME")
        assert mapping.decision == MappingDecision.AUTO_ACCEPT
        assert mapping.global_attribute == "show_name"

    def test_candidates_are_sorted_best_first(self):
        integrator = SchemaIntegrator()
        integrator.initialize_from_source("seed", SEED_RECORDS)
        report = integrator.integrate_source("variant", VARIANT_RECORDS)
        for mapping in report.mappings:
            scores = [score for _, score in mapping.candidates]
            assert scores == sorted(scores, reverse=True)

    def test_reports_accumulate(self):
        integrator = SchemaIntegrator()
        integrator.initialize_from_source("seed", SEED_RECORDS)
        integrator.integrate_source("a", VARIANT_RECORDS)
        integrator.integrate_source("b", UNRELATED_RECORDS)
        assert [r.source_id for r in integrator.reports] == ["seed", "a", "b"]

    def test_score_against_schema_sorted(self):
        integrator = SchemaIntegrator()
        integrator.initialize_from_source("seed", SEED_RECORDS)
        profiles = integrator.profile_source(VARIANT_RECORDS)
        scored = integrator.score_against_schema("SHOW_NAME", profiles["SHOW_NAME"])
        assert scored[0][0] == "show_name"
        composites = [s.composite for _, s in scored]
        assert composites == sorted(composites, reverse=True)


class TestExpertEscalation:
    def _uncertain_config(self):
        # thresholds arranged so the variant names fall into the expert band
        return SchemaConfig(
            accept_threshold=0.97, new_attribute_threshold=0.2,
            matcher_weights={"name": 1.0},
        )

    def test_expert_confirmation_maps_attribute(self):
        calls = []

        def expert(source_attr, candidate, score):
            calls.append((source_attr, candidate))
            return True

        integrator = SchemaIntegrator(config=self._uncertain_config(), expert=expert)
        integrator.initialize_from_source("seed", SEED_RECORDS)
        report = integrator.integrate_source("variant", [{"THE_SHOW": "Matilda"}])
        mapping = report.mapping_for("THE_SHOW")
        assert calls, "expert should have been consulted"
        assert mapping.decision == MappingDecision.EXPERT_CONFIRMED

    def test_expert_rejection_adds_new_attribute(self):
        integrator = SchemaIntegrator(
            config=self._uncertain_config(), expert=lambda *a: False
        )
        integrator.initialize_from_source("seed", SEED_RECORDS)
        report = integrator.integrate_source("variant", [{"THE_SHOW": "Matilda"}])
        mapping = report.mapping_for("THE_SHOW")
        assert mapping.decision == MappingDecision.ADDED_TO_GLOBAL
        assert "the_show" in integrator.global_schema

    def test_expert_rejection_without_new_attributes_allowed(self):
        integrator = SchemaIntegrator(
            config=self._uncertain_config(), expert=lambda *a: False
        )
        integrator.initialize_from_source("seed", SEED_RECORDS)
        report = integrator.integrate_source(
            "variant", [{"THE_SHOW": "Matilda"}], allow_new_attributes=False
        )
        assert (
            report.mapping_for("THE_SHOW").decision == MappingDecision.EXPERT_REJECTED
        )

    def test_escalation_disabled_skips_expert(self):
        calls = []
        config = SchemaConfig(
            accept_threshold=0.97,
            new_attribute_threshold=0.2,
            matcher_weights={"name": 1.0},
            use_expert_escalation=False,
        )
        integrator = SchemaIntegrator(
            config=config, expert=lambda *a: calls.append(a) or True
        )
        integrator.initialize_from_source("seed", SEED_RECORDS)
        integrator.integrate_source("variant", [{"THE_SHOW": "Matilda"}])
        assert calls == []


class TestCanonicalCollisions:
    def test_same_canonical_name_from_two_sources_becomes_alias(self):
        integrator = SchemaIntegrator()
        integrator.initialize_from_source("seed", UNRELATED_RECORDS)
        # "Patient ID" canonicalizes to patient_id which already exists
        report = integrator.integrate_source(
            "other", [{"Patient ID": "p3", "blood_type": "A"}]
        )
        assert "patient_id" in integrator.global_schema
        assert len([n for n in integrator.global_schema.attribute_names()
                    if "patient" in n]) == 1


class TestIncrementalProfileReuse:
    """Repeat integrations of a growing source reuse the mergeable profile
    statistics instead of re-profiling every attribute from scratch — and
    the reused profiles are identical to fresh profiling."""

    def _records(self, n, start=0):
        return [
            {
                "show_name": f"show {i}",
                "price": 10 + i,
                "city": ("boston", "new york", "chicago")[i % 3],
            }
            for i in range(start, start + n)
        ]

    def test_growing_source_profiles_only_new_records(self):
        integrator = SchemaIntegrator()
        first = self._records(40)
        integrator.integrate_source("grow", first)
        profiler = integrator._profilers["grow"].profiler
        assert profiler.record_count == 40
        # the second call extends the first: only 10 new records consumed
        integrator.integrate_source("grow", first + self._records(10, start=40))
        assert integrator._profilers["grow"].profiler is profiler
        assert profiler.record_count == 50

    def test_cached_profiles_identical_to_fresh_profiling(self):
        integrator = SchemaIntegrator()
        first = self._records(25)
        second = self._records(13, start=25)
        integrator.integrate_source("grow", first)
        cached = integrator._profiles_for("grow", first + second)
        fresh = SchemaIntegrator.profile_source(first + second)
        assert list(cached) == list(fresh)  # first-seen attribute order
        assert cached == fresh  # bit-identical statistics

    def test_reordered_records_fall_back_to_fresh_profiler(self):
        integrator = SchemaIntegrator()
        records = self._records(12)
        integrator.integrate_source("grow", records)
        old = integrator._profilers["grow"].profiler
        reordered = list(reversed(records))
        cached = integrator._profiles_for("grow", reordered)
        assert integrator._profilers["grow"].profiler is not old
        assert cached == SchemaIntegrator.profile_source(reordered)

    def test_shrunk_source_falls_back_to_fresh_profiler(self):
        integrator = SchemaIntegrator()
        records = self._records(12)
        integrator.integrate_source("grow", records)
        cached = integrator._profiles_for("grow", records[:5])
        assert cached == SchemaIntegrator.profile_source(records[:5])

    def test_repeat_integration_reports_match_uncached_integrator(self):
        """End to end: a growing source integrated twice through the cache
        produces the same reports/schema as an integrator without reuse."""
        first = self._records(30)
        grown = first + self._records(12, start=30)

        cached = SchemaIntegrator()
        cached.integrate_source("grow", first)
        cached_report = cached.integrate_source("grow", grown)

        fresh = SchemaIntegrator()
        fresh.integrate_source("grow", first)
        fresh._profilers.clear()  # defeat the cache: full re-profiling
        fresh_report = fresh.integrate_source("grow", grown)

        assert [
            (m.source_attribute, m.global_attribute, m.decision)
            for m in cached_report.mappings
        ] == [
            (m.source_attribute, m.global_attribute, m.decision)
            for m in fresh_report.mappings
        ]
        assert (
            cached.global_schema.summary() == fresh.global_schema.summary()
        )
