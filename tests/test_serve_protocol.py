"""Tests for repro.serve.protocol."""

import json

import pytest

from repro.errors import ProtocolError
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    QueryRequest,
    encode_error,
    encode_response,
    parse_request,
    request_cache_key,
)


class TestParseRequest:
    def test_parses_a_valid_request(self):
        request = parse_request(
            '{"id": 7, "op": "search", "params": {"phrase": "walking dead"}}'
        )
        assert request.op == "search"
        assert request.params == {"phrase": "walking dead"}
        assert request.request_id == 7

    def test_accepts_bytes(self):
        request = parse_request(b'{"op": "ping"}')
        assert request.op == "ping"
        assert request.request_id is None

    def test_rejects_invalid_utf8(self):
        with pytest.raises(ProtocolError, match="UTF-8"):
            parse_request(b'{"op": "ping"\xff}')

    def test_rejects_invalid_json(self):
        with pytest.raises(ProtocolError, match="JSON"):
            parse_request("{nope")

    def test_rejects_non_object_body(self):
        with pytest.raises(ProtocolError, match="object"):
            parse_request('["ping"]')

    def test_rejects_missing_or_non_string_op(self):
        with pytest.raises(ProtocolError, match="op"):
            parse_request('{"params": {}}')
        with pytest.raises(ProtocolError, match="op"):
            parse_request('{"op": 3}')

    def test_rejects_unknown_op(self):
        with pytest.raises(ProtocolError, match="unknown operation"):
            parse_request('{"op": "drop_tables"}')

    def test_rejects_non_object_params(self):
        with pytest.raises(ProtocolError, match="params"):
            parse_request('{"op": "ping", "params": [1]}')

    def test_rejects_bad_id_type(self):
        with pytest.raises(ProtocolError, match="id"):
            parse_request('{"op": "ping", "id": [1]}')

    def test_find_equal_requires_attribute_and_value(self):
        with pytest.raises(ProtocolError):
            parse_request('{"op": "find_equal", "params": {"value": "x"}}')
        with pytest.raises(ProtocolError):
            parse_request(
                '{"op": "find_equal", "params": {"attribute": "show_name"}}'
            )

    def test_search_requires_string_phrase(self):
        with pytest.raises(ProtocolError):
            parse_request('{"op": "search", "params": {}}')
        with pytest.raises(ProtocolError):
            parse_request('{"op": "search", "params": {"phrase": 5}}')

    def test_search_attributes_must_be_string_list(self):
        with pytest.raises(ProtocolError):
            parse_request(
                '{"op": "search", "params": {"phrase": "x", "attributes": [1]}}'
            )

    def test_lookup_show_validates(self):
        with pytest.raises(ProtocolError):
            parse_request('{"op": "lookup_show", "params": {}}')
        with pytest.raises(ProtocolError):
            parse_request(
                '{"op": "lookup_show", '
                '"params": {"show_name": "x", "name_attribute": 1}}'
            )

    def test_top_k_requires_positive_integer_k(self):
        for bad in ("0", "-1", "true", '"ten"', "1.5"):
            with pytest.raises(ProtocolError):
                parse_request('{"op": "top_k", "params": {"k": %s}}' % bad)
        assert parse_request('{"op": "top_k", "params": {}}').op == "top_k"

    def test_fuse_requires_show_name(self):
        with pytest.raises(ProtocolError):
            parse_request('{"op": "fuse", "params": {}}')


def _key(op, params):
    return request_cache_key(QueryRequest(op=op, params=params))


class TestRequestCacheKey:
    def test_live_state_ops_are_not_cacheable(self):
        assert _key("ping", {}) is None
        assert _key("status", {}) is None

    def test_search_key_ignores_token_order_case_and_duplicates(self):
        base = _key("search", {"phrase": "walking dead"})
        assert _key("search", {"phrase": "DEAD   walking"}) == base
        assert _key("search", {"phrase": "dead walking dead"}) == base
        assert _key("search", {"phrase": "walking"}) != base

    def test_search_key_distinguishes_attribute_restriction(self):
        unrestricted = _key("search", {"phrase": "x"})
        restricted = _key("search", {"phrase": "x", "attributes": ["a", "b"]})
        assert restricted != unrestricted
        assert (
            _key("search", {"phrase": "x", "attributes": ["b", "a", "a"]})
            == restricted
        )

    def test_find_equal_key_normalizes_value(self):
        assert _key("find_equal", {"attribute": "n", "value": " MATILDA "}) == _key(
            "find_equal", {"attribute": "n", "value": "matilda"}
        )
        assert _key("find_equal", {"attribute": "m", "value": "matilda"}) != _key(
            "find_equal", {"attribute": "n", "value": "matilda"}
        )

    def test_lookup_key_folds_default_name_attribute(self):
        defaulted = _key("lookup_show", {"show_name": "Matilda"})
        explicit = _key(
            "lookup_show",
            {"show_name": "matilda", "name_attribute": "show_name"},
        )
        assert defaulted == explicit
        assert request_cache_key(
            QueryRequest(op="lookup_show", params={"show_name": "Matilda"}),
            name_attribute="name",
        ) != defaulted

    def test_top_k_key_folds_movie_default(self):
        assert _key("top_k", {}) == _key(
            "top_k", {"k": 10, "entity_types": ["Movie"]}
        )
        assert _key("top_k", {"k": 5}) != _key("top_k", {})

    def test_fuse_key_is_spelling_sensitive(self):
        # the fused record echoes the requested spelling as entity_key, so
        # differently-spelled equivalents must not share a cache entry
        assert _key("fuse", {"show_name": "MATILDA "}) != _key(
            "fuse", {"show_name": "matilda"}
        )
        assert _key("fuse", {"show_name": "Matilda"}) == _key(
            "fuse", {"show_name": "Matilda"}
        )

    def test_ops_never_share_keys(self):
        assert _key("fuse", {"show_name": "x"}) != _key(
            "lookup_show", {"show_name": "x"}
        )


class TestEncoding:
    def test_response_round_trips(self):
        line = encode_response(
            3,
            {"count": 0, "entities": []},
            cached=True,
            version=4,
            watermark=17,
            schema_watermark=None,
        )
        body = json.loads(line)
        assert body == {
            "id": 3,
            "ok": True,
            "cached": True,
            "version": 4,
            "watermark": 17,
            "schema_watermark": None,
            "result": {"count": 0, "entities": []},
        }
        assert "\n" not in line

    def test_error_round_trips(self):
        body = json.loads(encode_error("r1", ProtocolError("bad params")))
        assert body["ok"] is False
        assert body["id"] == "r1"
        assert body["error"] == {
            "type": "ProtocolError",
            "message": "bad params",
        }

    def test_protocol_version_is_stable(self):
        assert PROTOCOL_VERSION == 2

    def test_version_1_stays_supported(self):
        # the v1 compat shim: requests without a version field negotiate 1
        from repro.serve.protocol import SUPPORTED_PROTOCOL_VERSIONS

        assert 1 in SUPPORTED_PROTOCOL_VERSIONS
        assert PROTOCOL_VERSION in SUPPORTED_PROTOCOL_VERSIONS
