"""Tests for repro.query.engine."""

import pytest

from repro.entity.consolidation import ConsolidatedEntity
from repro.errors import QueryError
from repro.query.engine import QueryEngine


def _entity(eid, attributes):
    return ConsolidatedEntity(
        entity_id=eid,
        member_record_ids=[eid],
        source_ids=["s"],
        attributes=attributes,
    )


@pytest.fixture
def engine():
    return QueryEngine(
        [
            _entity("e1", {"show_name": "Matilda", "theater": "Shubert",
                           "cheapest_price": "$27"}),
            _entity("e2", {"show_name": "Wicked", "theater": "Gershwin",
                           "cheapest_price": "$89"}),
            _entity("e3", {"show_name": "The Walking Dead",
                           "text_feed": "heavily discussed on the web"}),
        ]
    )


class TestQueryEngine:
    def test_len_and_entities(self, engine):
        assert len(engine) == 3
        assert len(engine.entities) == 3

    def test_find_equal_normalizes(self, engine):
        assert (
            engine.find_equal("show_name", "MATILDA").first.attributes["theater"]
            == "Shubert"
        )
        assert len(engine.find_equal("show_name", "matilda ")) == 1

    def test_find_equal_no_match(self, engine):
        result = engine.find_equal("show_name", "Hamilton")
        assert len(result) == 0
        assert result.first is None

    def test_find_equal_ignores_missing_attribute(self, engine):
        assert len(engine.find_equal("text_feed", "")) == 0

    def test_find_where_predicate(self, engine):
        result = engine.find_where(lambda attrs: "theater" in attrs)
        assert len(result) == 2

    def test_search_requires_all_tokens(self, engine):
        assert len(engine.search("walking dead")) == 1
        assert len(engine.search("walking nonexistent")) == 0

    def test_search_restricted_to_attributes(self, engine):
        assert len(engine.search("discussed", attributes=["show_name"])) == 0
        assert len(engine.search("discussed", attributes=["text_feed"])) == 1

    def test_search_empty_phrase_rejected(self, engine):
        with pytest.raises(QueryError):
            engine.search("!!!")

    def test_lookup_show_exact(self, engine):
        result = engine.lookup_show("Matilda", name_attribute="show_name")
        assert len(result) == 1

    def test_lookup_show_falls_back_to_keyword(self, engine):
        result = engine.lookup_show("Walking Dead", name_attribute="show_name")
        assert len(result) == 1

    def test_project(self, engine):
        rows = engine.find_where(lambda a: True).project(["show_name"])
        assert all(set(r) == {"show_name"} for r in rows)

    def test_as_dicts(self, engine):
        dicts = engine.find_equal("show_name", "Matilda").as_dicts()
        assert dicts[0]["cheapest_price"] == "$27"

    def test_all_attributes_union(self, engine):
        assert "text_feed" in engine.all_attributes()
        assert "theater" in engine.all_attributes()

    def test_add_entities(self, engine):
        engine.add_entities([_entity("e4", {"show_name": "Once"})])
        assert len(engine) == 4

    def test_iteration(self, engine):
        result = engine.find_where(lambda a: True)
        assert len(list(result)) == 3

    def test_lookup_show_punctuation_only_returns_empty(self, engine):
        # regression: a name that tokenizes to nothing used to fall through
        # to search(), which raises QueryError on an empty token set
        result = engine.lookup_show("!!!", name_attribute="show_name")
        assert len(result) == 0
        assert result.first is None

    def test_search_still_rejects_tokenless_phrase(self, engine):
        # the lookup fix must not weaken search's own contract
        with pytest.raises(QueryError):
            engine.search("?!.")


class TestSnapshotIsolation:
    def _engines(self):
        return QueryEngine(
            [_entity("e1", {"show_name": "Matilda"})], watermark=5
        )

    def test_add_entities_clears_watermark(self):
        # regression: a hand-extended view no longer matches any changelog
        # position, but the old watermark stamp used to survive the add
        engine = self._engines()
        assert engine.watermark == 5
        engine.add_entities([_entity("e2", {"show_name": "Once"})])
        assert engine.watermark is None
        assert len(engine) == 2

    def test_stream_repairs_hand_extended_engine(self, small_config):
        # the cleared watermark makes the streaming cache notice the
        # hand-mutated view and swap a freshly curated one back in
        from repro import DataTamer
        from repro.workloads import DedupCorpusGenerator

        tamer = DataTamer(small_config)
        corpus = DedupCorpusGenerator(seed=11).generate(n_entities=12)
        tamer.train_dedup_model(corpus.pairs)
        for record in corpus.records[:10]:
            tamer.curated_collection.insert(
                dict(record.as_dict(), _source="seed")
            )
        stream = tamer.start_stream(key_attribute="name")
        engine = stream.query_engine()
        curated = len(engine)
        engine.add_entities([_entity("x", {"name": "handmade"})])
        assert len(stream.query_engine()) == curated
        tamer.close()

    def test_replace_entities_swaps_snapshot_atomically(self):
        engine = self._engines()
        before = engine.snapshot
        engine.replace_entities(
            [_entity("e9", {"show_name": "Wicked"})], watermark=9
        )
        after = engine.snapshot
        assert after.version == before.version + 1
        assert (after.watermark, len(after.entities)) == (9, 1)
        # the old snapshot is untouched — readers holding it stay coherent
        assert (before.watermark, len(before.entities)) == (5, 1)
        assert before.entities[0].entity_id == "e1"

    def test_concurrent_searches_never_observe_torn_swap(self):
        # regression: replace_entities used to mutate _entities and
        # _watermark in two steps while search held enumerate(_entities);
        # a search overlapping a swap could mix generations.  Each
        # generation is self-consistent: N entities all carrying the
        # generation tag and a watermark equal to the generation.
        import threading

        size = 8
        generations = {
            gen: [
                _entity(
                    f"g{gen}e{i}", {"show_name": f"show {i}", "tag": f"gen{gen}"}
                )
                for i in range(size)
            ]
            for gen in (1, 2)
        }
        engine = QueryEngine(generations[1], watermark=1)
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                snapshot = engine.snapshot
                result = engine.search("show")
                tags = {e.attributes["tag"] for e in result}
                if len(result) != size or len(tags) != 1:
                    failures.append(("torn result", len(result), tags))
                if {e.attributes["tag"] for e in snapshot.entities} != {
                    f"gen{snapshot.watermark}"
                }:
                    failures.append(("torn snapshot", snapshot.watermark))

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for swap in range(400):
            gen = 1 + (swap % 2)
            engine.replace_entities(generations[gen], watermark=gen)
        stop.set()
        for thread in threads:
            thread.join()
        assert failures == []
