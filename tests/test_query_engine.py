"""Tests for repro.query.engine."""

import pytest

from repro.entity.consolidation import ConsolidatedEntity
from repro.errors import QueryError
from repro.query.engine import QueryEngine


def _entity(eid, attributes):
    return ConsolidatedEntity(
        entity_id=eid,
        member_record_ids=[eid],
        source_ids=["s"],
        attributes=attributes,
    )


@pytest.fixture
def engine():
    return QueryEngine(
        [
            _entity("e1", {"show_name": "Matilda", "theater": "Shubert",
                           "cheapest_price": "$27"}),
            _entity("e2", {"show_name": "Wicked", "theater": "Gershwin",
                           "cheapest_price": "$89"}),
            _entity("e3", {"show_name": "The Walking Dead",
                           "text_feed": "heavily discussed on the web"}),
        ]
    )


class TestQueryEngine:
    def test_len_and_entities(self, engine):
        assert len(engine) == 3
        assert len(engine.entities) == 3

    def test_find_equal_normalizes(self, engine):
        assert (
            engine.find_equal("show_name", "MATILDA").first.attributes["theater"]
            == "Shubert"
        )
        assert len(engine.find_equal("show_name", "matilda ")) == 1

    def test_find_equal_no_match(self, engine):
        result = engine.find_equal("show_name", "Hamilton")
        assert len(result) == 0
        assert result.first is None

    def test_find_equal_ignores_missing_attribute(self, engine):
        assert len(engine.find_equal("text_feed", "")) == 0

    def test_find_where_predicate(self, engine):
        result = engine.find_where(lambda attrs: "theater" in attrs)
        assert len(result) == 2

    def test_search_requires_all_tokens(self, engine):
        assert len(engine.search("walking dead")) == 1
        assert len(engine.search("walking nonexistent")) == 0

    def test_search_restricted_to_attributes(self, engine):
        assert len(engine.search("discussed", attributes=["show_name"])) == 0
        assert len(engine.search("discussed", attributes=["text_feed"])) == 1

    def test_search_empty_phrase_rejected(self, engine):
        with pytest.raises(QueryError):
            engine.search("!!!")

    def test_lookup_show_exact(self, engine):
        result = engine.lookup_show("Matilda", name_attribute="show_name")
        assert len(result) == 1

    def test_lookup_show_falls_back_to_keyword(self, engine):
        result = engine.lookup_show("Walking Dead", name_attribute="show_name")
        assert len(result) == 1

    def test_project(self, engine):
        rows = engine.find_where(lambda a: True).project(["show_name"])
        assert all(set(r) == {"show_name"} for r in rows)

    def test_as_dicts(self, engine):
        dicts = engine.find_equal("show_name", "Matilda").as_dicts()
        assert dicts[0]["cheapest_price"] == "$27"

    def test_all_attributes_union(self, engine):
        assert "text_feed" in engine.all_attributes()
        assert "theater" in engine.all_attributes()

    def test_add_entities(self, engine):
        engine.add_entities([_entity("e4", {"show_name": "Once"})])
        assert len(engine) == 4

    def test_iteration(self, engine):
        result = engine.find_where(lambda a: True)
        assert len(list(result)) == 3
