"""Tests for repro.ml.naive_bayes."""

import numpy as np
import pytest

from repro.errors import ModelError, NotFittedError
from repro.ml.naive_bayes import BernoulliNaiveBayes


def _binary_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, size=n)
    X = np.zeros((n, 4))
    # feature 0/1 correlate with class 1, features 2/3 with class 0
    for i, label in enumerate(y):
        if label == 1:
            X[i, 0] = rng.random() < 0.9
            X[i, 1] = rng.random() < 0.8
            X[i, 2] = rng.random() < 0.1
        else:
            X[i, 2] = rng.random() < 0.9
            X[i, 3] = rng.random() < 0.8
            X[i, 0] = rng.random() < 0.1
    return X, y


class TestBernoulliNaiveBayes:
    def test_learns_correlated_features(self):
        X, y = _binary_data()
        model = BernoulliNaiveBayes().fit(X, y)
        accuracy = float(np.mean(model.predict(X) == y))
        assert accuracy > 0.85

    def test_probabilities_bounded(self):
        X, y = _binary_data()
        probs = BernoulliNaiveBayes().fit(X, y).predict_proba(X)
        assert np.all(probs >= 0) and np.all(probs <= 1)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            BernoulliNaiveBayes().predict(np.zeros((1, 4)))

    def test_rejects_invalid_alpha(self):
        with pytest.raises(ModelError):
            BernoulliNaiveBayes(alpha=0)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ModelError):
            BernoulliNaiveBayes().fit(np.zeros(5), np.zeros(5))
        with pytest.raises(ModelError):
            BernoulliNaiveBayes().fit(np.zeros((4, 2)), np.zeros(5))

    def test_rejects_non_binary_labels(self):
        with pytest.raises(ModelError):
            BernoulliNaiveBayes().fit(np.zeros((3, 2)), np.array([0, 2, 1]))

    def test_dimension_mismatch_rejected(self):
        X, y = _binary_data()
        model = BernoulliNaiveBayes().fit(X, y)
        with pytest.raises(ModelError):
            model.predict(np.zeros((2, 9)))

    def test_binarize_threshold(self):
        X = np.array([[0.4], [0.6]] * 20)
        y = np.array([0, 1] * 20)
        model = BernoulliNaiveBayes(binarize_threshold=0.5).fit(X, y)
        assert model.predict(np.array([[0.7]]))[0] == 1
        assert model.predict(np.array([[0.2]]))[0] == 0

    def test_single_row_prediction(self):
        X, y = _binary_data()
        model = BernoulliNaiveBayes().fit(X, y)
        assert model.predict_proba(X[0]).shape == (1,)

    def test_handles_single_class_gracefully_with_smoothing(self):
        X = np.ones((10, 3))
        y = np.ones(10, dtype=int)
        model = BernoulliNaiveBayes().fit(X, y)
        assert model.predict(np.ones((1, 3)))[0] == 1
