"""Unit suite for the tracing half of the observability layer.

The tracer's contract in three parts: implicit same-thread parentage via
context vars, explicit ``parent=`` hand-off across threads, and
ship-and-reattach across processes (:meth:`Tracer.attach` grafts a
worker's locally recorded spans under the live fan-out span).
"""

import threading

from repro.obs import NOOP_SPAN, Tracer
from repro.obs.trace import _NoopSpan


class TestSpanBasics:
    def test_span_records_on_exit(self):
        tracer = Tracer()
        with tracer.span("work", tags={"k": 1}):
            pass
        (record,) = tracer.export()
        assert record["name"] == "work"
        assert record["parent_id"] is None
        assert record["tags"] == {"k": 1}
        assert record["duration"] >= 0.0

    def test_nested_spans_share_trace_and_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None
        inner_rec, outer_rec = tracer.export()
        assert inner_rec["name"] == "inner"
        assert inner_rec["trace_id"] == outer_rec["trace_id"]
        assert inner_rec["parent_id"] == outer_rec["span_id"]

    def test_sibling_spans_restore_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, _ = tracer.export()
        assert a["parent_id"] == parent.span_id
        assert b["parent_id"] == parent.span_id

    def test_error_is_captured(self):
        tracer = Tracer()
        try:
            with tracer.span("fail"):
                raise ValueError("boom")
        except ValueError:
            pass
        (record,) = tracer.export()
        assert record["error"] == "ValueError"

    def test_post_hoc_tag_merges(self):
        tracer = Tracer()
        span = tracer.span("req", tags={"op": "?"})
        with span:
            span.tag(op="search", outcome="ok")
        (record,) = tracer.export()
        assert record["tags"] == {"op": "search", "outcome": "ok"}

    def test_disabled_tracer_is_inert(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("x")
        assert isinstance(span, _NoopSpan)
        with span:
            span.tag(anything="goes")
            assert tracer.current() is None
        assert tracer.export() == []
        tracer.attach([{"span_id": "a", "name": "n"}])
        assert tracer.export() == []

    def test_noop_parent_starts_fresh_trace(self):
        tracer = Tracer()
        with tracer.span("root", parent=NOOP_SPAN):
            pass
        (record,) = tracer.export()
        assert record["parent_id"] is None


class TestCrossThread:
    def test_context_does_not_leak_across_threads(self):
        tracer = Tracer()
        seen = []

        def worker():
            seen.append(tracer.current())

        with tracer.span("outer"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen == [None]

    def test_explicit_parent_crosses_threads(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:

            def worker():
                with tracer.span("inner", parent=outer):
                    pass

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        inner_rec = tracer.export()[0]
        assert inner_rec["trace_id"] == outer.trace_id
        assert inner_rec["parent_id"] == outer.span_id


class TestAttach:
    def _shipped(self):
        """Spans recorded by a worker-side throwaway tracer."""
        worker_tracer = Tracer()
        with worker_tracer.span("pool.compute", tags={"slot": 0}):
            with worker_tracer.span("pool.compute.step"):
                pass
        return worker_tracer.export(clear=True)

    def test_attach_grafts_roots_under_parent(self):
        shipped = self._shipped()
        tracer = Tracer()
        with tracer.span("exec.fan_out") as fan_out:
            tracer.attach(shipped)
        by_name = {r["name"]: r for r in tracer.export()}
        root = by_name["pool.compute"]
        child = by_name["pool.compute.step"]
        assert root["trace_id"] == fan_out.trace_id
        assert root["parent_id"] == fan_out.span_id
        # the internal edge survives the graft, on the new trace
        assert child["trace_id"] == fan_out.trace_id
        assert child["parent_id"] == root["span_id"]

    def test_attach_with_explicit_parent(self):
        shipped = self._shipped()
        tracer = Tracer()
        with tracer.span("exec.fan_out") as fan_out:
            pass
        tracer.attach(shipped, parent=fan_out)
        root = [r for r in tracer.export() if r["name"] == "pool.compute"][0]
        assert root["parent_id"] == fan_out.span_id

    def test_attach_without_parent_adopts_verbatim(self):
        shipped = self._shipped()
        original_trace = shipped[0]["trace_id"]
        tracer = Tracer()
        tracer.attach(shipped)
        adopted = tracer.export()
        assert {r["trace_id"] for r in adopted} == {original_trace}


class TestRingAndSummary:
    def test_buffer_bounds_retention(self):
        tracer = Tracer(buffer=3)
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
        names = [r["name"] for r in tracer.export()]
        assert names == ["s7", "s8", "s9"]

    def test_export_clear_drains(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        assert len(tracer.export(clear=True)) == 1
        assert tracer.export() == []

    def test_summary_aggregates_by_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("op"):
                pass
        summary = tracer.summary()
        assert summary["buffered_spans"] == 3
        assert summary["by_name"]["op"]["count"] == 3
        assert summary["by_name"]["op"]["total_seconds"] >= 0.0
