"""Tests for repro.cleaning.transforms."""

import pytest

from repro.cleaning.transforms import (
    TransformEngine,
    convert_currency,
    convert_length,
    format_price_usd,
    normalize_date,
    normalize_phone,
    parse_money,
)
from repro.errors import TransformError


class TestParseMoney:
    def test_dollar_strings(self):
        assert parse_money("$27") == 27.0
        assert parse_money("$1,250.50") == 1250.50
        assert parse_money("960,998") == 960998.0

    def test_numbers_pass_through(self):
        assert parse_money(42) == 42.0
        assert parse_money(42.5) == 42.5

    def test_invalid_input(self):
        with pytest.raises(TransformError):
            parse_money("twenty seven")
        with pytest.raises(TransformError):
            parse_money(True)


class TestConvertCurrency:
    def test_euro_to_dollar_paper_example(self):
        usd = convert_currency(100, "EUR", "USD")
        assert usd == pytest.approx(110.0)

    def test_round_trip(self):
        eur = convert_currency(110, "USD", "EUR")
        assert eur == pytest.approx(100.0)

    def test_same_currency_identity(self):
        assert convert_currency("$50", "USD", "USD") == pytest.approx(50.0)

    def test_unknown_currency(self):
        with pytest.raises(TransformError):
            convert_currency(10, "XYZ")
        with pytest.raises(TransformError):
            convert_currency(10, "USD", "XYZ")

    def test_custom_rates(self):
        assert (
            convert_currency(2, "ABC", "USD", rates_to_usd={"ABC": 3.0, "USD": 1.0})
            == 6.0
        )


class TestConvertLength:
    def test_miles_to_km(self):
        assert convert_length(1, "mi", "km") == pytest.approx(1.609344)

    def test_feet_to_meters(self):
        assert convert_length(10, "ft", "m") == pytest.approx(3.048)

    def test_unknown_unit(self):
        with pytest.raises(TransformError):
            convert_length(1, "furlong", "m")


class TestNormalizeDate:
    def test_slash_format_paper_value(self):
        assert normalize_date("3/4/2013") == "2013-03-04"

    def test_iso_passthrough(self):
        assert normalize_date("2013-03-04") == "2013-03-04"

    def test_two_digit_year(self):
        assert normalize_date("3/4/13") == "2013-03-04"

    def test_textual_month(self):
        assert normalize_date("Mar 4, 2013") == "2013-03-04"
        assert normalize_date("March 4, 2013") == "2013-03-04"

    def test_implausible_date_rejected(self):
        with pytest.raises(TransformError):
            normalize_date("13/45/2013")

    def test_garbage_rejected(self):
        with pytest.raises(TransformError):
            normalize_date("sometime soon")


class TestNormalizePhone:
    def test_formats(self):
        assert normalize_phone("212-555-0123") == "(212) 555-0123"
        assert normalize_phone("(212) 555 0123") == "(212) 555-0123"
        assert normalize_phone("1-212-555-0123") == "(212) 555-0123"

    def test_invalid_length(self):
        with pytest.raises(TransformError):
            normalize_phone("12345")


class TestFormatPrice:
    def test_integer_amount(self):
        assert format_price_usd(27) == "$27"
        assert format_price_usd("27.00") == "$27"

    def test_fractional_amount(self):
        assert format_price_usd(27.5) == "$27.50"


class TestTransformEngine:
    def test_builtin_transforms_registered(self):
        engine = TransformEngine()
        assert {"normalize_date", "eur_to_usd", "format_price_usd"} <= set(
            engine.registered
        )

    def test_bind_and_transform_record(self):
        engine = TransformEngine()
        engine.bind("first_performance", "normalize_date")
        record = engine.transform_record({"first_performance": "3/4/2013", "x": 1})
        assert record["first_performance"] == "2013-03-04"
        assert record["x"] == 1

    def test_unparseable_value_left_unchanged_by_default(self):
        engine = TransformEngine()
        engine.bind("first_performance", "normalize_date")
        record = engine.transform_record({"first_performance": "TBD"})
        assert record["first_performance"] == "TBD"

    def test_strict_mode_raises(self):
        engine = TransformEngine()
        engine.bind("first_performance", "normalize_date")
        with pytest.raises(TransformError):
            engine.transform_record({"first_performance": "TBD"}, strict=True)

    def test_bind_unknown_transform_rejected(self):
        with pytest.raises(TransformError):
            TransformEngine().bind("x", "does_not_exist")

    def test_register_custom_transform(self):
        engine = TransformEngine()
        engine.register("double", lambda v: v * 2)
        engine.bind("n", "double")
        assert engine.transform_record({"n": 4})["n"] == 8

    def test_register_empty_name_rejected(self):
        with pytest.raises(TransformError):
            TransformEngine().register("", lambda v: v)

    def test_null_values_skipped(self):
        engine = TransformEngine()
        engine.bind("d", "normalize_date")
        assert engine.transform_record({"d": None}) == {"d": None}

    def test_transform_value_unknown_name(self):
        with pytest.raises(TransformError):
            TransformEngine().transform_value("nope", 1)

    def test_bindings_exposed(self):
        engine = TransformEngine()
        engine.bind("p", "parse_money")
        assert engine.bindings == {"p": "parse_money"}
