"""Tests for repro.core.pipeline."""

import pytest

from repro.config import ExecConfig
from repro.core.pipeline import CurationPipeline, ParallelStage
from repro.errors import TamerError
from repro.exec import ShardedExecutor


class TestCurationPipeline:
    def test_stages_run_in_order_and_share_context(self):
        pipeline = CurationPipeline()
        pipeline.add_stage("ingest", lambda ctx: 10)
        pipeline.add_stage("integrate", lambda ctx: ctx["ingest"] + 5)
        context = pipeline.run()
        assert context["ingest"] == 10
        assert context["integrate"] == 15

    def test_results_record_timing_and_success(self):
        pipeline = CurationPipeline().add_stage("a", lambda ctx: 1)
        pipeline.run()
        result = pipeline.results[0]
        assert result.ok
        assert result.seconds >= 0
        assert pipeline.succeeded
        assert pipeline.total_seconds >= 0

    def test_stop_on_error_raises_and_records(self):
        pipeline = CurationPipeline()
        pipeline.add_stage("bad", lambda ctx: 1 / 0)
        pipeline.add_stage("never", lambda ctx: 1)
        with pytest.raises(ZeroDivisionError):
            pipeline.run()
        assert not pipeline.succeeded
        assert len(pipeline.results) == 1
        assert pipeline.results[0].error is not None

    def test_continue_on_error(self):
        pipeline = CurationPipeline()
        pipeline.add_stage("bad", lambda ctx: 1 / 0)
        pipeline.add_stage("after", lambda ctx: "ran")
        context = pipeline.run(stop_on_error=False)
        assert context["after"] == "ran"
        assert not pipeline.succeeded
        assert len(pipeline.results) == 2

    def test_initial_context_passed_through(self):
        pipeline = CurationPipeline().add_stage("use", lambda ctx: ctx["n"] * 2)
        context = pipeline.run({"n": 21})
        assert context["use"] == 42

    def test_empty_stage_name_rejected(self):
        with pytest.raises(TamerError):
            CurationPipeline().add_stage("", lambda ctx: 1)

    def test_timing_summary_keys(self):
        pipeline = CurationPipeline()
        pipeline.add_stage("x", lambda ctx: 1)
        pipeline.add_stage("y", lambda ctx: 2)
        pipeline.run()
        assert set(pipeline.timing_summary()) == {"x", "y"}

    def test_chaining_add_stage(self):
        pipeline = (
            CurationPipeline().add_stage("a", lambda c: 1).add_stage("b", lambda c: 2)
        )
        assert [s.name for s in pipeline.stages] == ["a", "b"]

    def test_succeeded_false_before_any_run(self):
        assert not CurationPipeline().succeeded

    def test_failing_stage_does_not_leave_stale_context_entry(self):
        """Regression: a stage failing on run 2 must clear its run-1 output.

        The pipeline used to leave ``context[stage.name]`` from a previous
        run over the same context dictionary when the stage later failed
        with ``stop_on_error=False``; downstream stages then silently
        consumed the stale value.
        """
        flag = {"fail": False}

        def sometimes(ctx):
            if flag["fail"]:
                raise ValueError("boom")
            return "fresh"

        pipeline = CurationPipeline().add_stage("flaky", sometimes)
        context = {}
        pipeline.run(context)
        assert context["flaky"] == "fresh"

        flag["fail"] = True
        pipeline.run(context, stop_on_error=False)
        assert "flaky" not in context
        assert not pipeline.succeeded

    def test_failing_stage_clears_context_with_stop_on_error(self):
        pipeline = CurationPipeline().add_stage("flaky", lambda ctx: 1 / ctx["d"])
        context = {"d": 1}
        pipeline.run(context)
        assert context["flaky"] == 1.0
        context["d"] = 0
        with pytest.raises(ZeroDivisionError):
            pipeline.run(context)
        assert "flaky" not in context


class TestParallelStage:
    def _executor(self, workers=4):
        return ShardedExecutor(ExecConfig(parallelism=workers))

    def test_fan_out_worker_fan_in(self):
        pipeline = CurationPipeline(executor=self._executor())
        pipeline.add_stage("numbers", lambda ctx: list(range(100)))
        pipeline.add_parallel_stage(
            "square_sum",
            fan_out=lambda ctx: pipeline.executor.partition(
                ctx["numbers"], key=lambda n: n
            ),
            worker=lambda part: sum(n * n for n in part),
            fan_in=lambda ctx, results: sum(results),
        )
        context = pipeline.run()
        assert context["square_sum"] == sum(n * n for n in range(100))

    def test_default_fan_in_returns_ordered_results(self):
        pipeline = CurationPipeline(executor=self._executor())
        pipeline.add_parallel_stage(
            "lengths",
            fan_out=lambda ctx: [[1], [2, 2], [3, 3, 3]],
            worker=len,
        )
        context = pipeline.run()
        assert context["lengths"] == [1, 2, 3]

    def test_shard_seconds_captured_in_stage_result(self):
        pipeline = CurationPipeline(executor=self._executor())
        pipeline.add_stage("seq", lambda ctx: 1)
        pipeline.add_parallel_stage(
            "par",
            fan_out=lambda ctx: [[1], [2], [3]],
            worker=sum,
        )
        pipeline.run()
        by_name = {r.name: r for r in pipeline.results}
        assert by_name["seq"].shard_seconds == []
        assert len(by_name["par"].shard_seconds) == 3
        assert all(s >= 0 for s in by_name["par"].shard_seconds)
        assert pipeline.shard_timing_summary()["par"] == by_name["par"].shard_seconds

    def test_parallel_stage_failure_recorded(self):
        pipeline = CurationPipeline(executor=self._executor())
        pipeline.add_parallel_stage(
            "bad",
            fan_out=lambda ctx: [[1], [0]],
            worker=lambda part: 1 // part[0],
        )
        with pytest.raises(ZeroDivisionError):
            pipeline.run()
        assert not pipeline.succeeded
        assert pipeline.results[0].error is not None

    def test_parallel_stage_listed_in_stages(self):
        pipeline = CurationPipeline()
        pipeline.add_parallel_stage(
            "p", fan_out=lambda ctx: [], worker=lambda part: part
        )
        assert isinstance(pipeline.stages[0], ParallelStage)
        with pytest.raises(TamerError):
            pipeline.add_parallel_stage(
                "", fan_out=lambda ctx: [], worker=lambda part: part
            )
