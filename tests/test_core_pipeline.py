"""Tests for repro.core.pipeline."""

import pytest

from repro.core.pipeline import CurationPipeline
from repro.errors import TamerError


class TestCurationPipeline:
    def test_stages_run_in_order_and_share_context(self):
        pipeline = CurationPipeline()
        pipeline.add_stage("ingest", lambda ctx: 10)
        pipeline.add_stage("integrate", lambda ctx: ctx["ingest"] + 5)
        context = pipeline.run()
        assert context["ingest"] == 10
        assert context["integrate"] == 15

    def test_results_record_timing_and_success(self):
        pipeline = CurationPipeline().add_stage("a", lambda ctx: 1)
        pipeline.run()
        result = pipeline.results[0]
        assert result.ok
        assert result.seconds >= 0
        assert pipeline.succeeded
        assert pipeline.total_seconds >= 0

    def test_stop_on_error_raises_and_records(self):
        pipeline = CurationPipeline()
        pipeline.add_stage("bad", lambda ctx: 1 / 0)
        pipeline.add_stage("never", lambda ctx: 1)
        with pytest.raises(ZeroDivisionError):
            pipeline.run()
        assert not pipeline.succeeded
        assert len(pipeline.results) == 1
        assert pipeline.results[0].error is not None

    def test_continue_on_error(self):
        pipeline = CurationPipeline()
        pipeline.add_stage("bad", lambda ctx: 1 / 0)
        pipeline.add_stage("after", lambda ctx: "ran")
        context = pipeline.run(stop_on_error=False)
        assert context["after"] == "ran"
        assert not pipeline.succeeded
        assert len(pipeline.results) == 2

    def test_initial_context_passed_through(self):
        pipeline = CurationPipeline().add_stage("use", lambda ctx: ctx["n"] * 2)
        context = pipeline.run({"n": 21})
        assert context["use"] == 42

    def test_empty_stage_name_rejected(self):
        with pytest.raises(TamerError):
            CurationPipeline().add_stage("", lambda ctx: 1)

    def test_timing_summary_keys(self):
        pipeline = CurationPipeline()
        pipeline.add_stage("x", lambda ctx: 1)
        pipeline.add_stage("y", lambda ctx: 2)
        pipeline.run()
        assert set(pipeline.timing_summary()) == {"x", "y"}

    def test_chaining_add_stage(self):
        pipeline = CurationPipeline().add_stage("a", lambda c: 1).add_stage("b", lambda c: 2)
        assert [s.name for s in pipeline.stages] == ["a", "b"]

    def test_succeeded_false_before_any_run(self):
        assert not CurationPipeline().succeeded
