"""Tests for repro.expert.tasks."""

import pytest

from repro.errors import ExpertError
from repro.expert.tasks import ExpertTask, TaskQueue, TaskStatus


class TestExpertTask:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ExpertError):
            ExpertTask(task_id="t", kind="mystery", payload={})

    def test_record_answer_moves_to_answered(self):
        task = ExpertTask(task_id="t", kind="schema_match", payload={})
        task.record_answer("e1", True, confidence=0.9)
        assert task.status == TaskStatus.ANSWERED
        assert task.answers[0]["expert_id"] == "e1"

    def test_resolve(self):
        task = ExpertTask(task_id="t", kind="duplicate_pair", payload={})
        task.resolve(False)
        assert task.status == TaskStatus.RESOLVED
        assert task.resolution is False


class TestTaskQueue:
    def test_create_task_assigns_unique_ids(self):
        queue = TaskQueue()
        a = queue.create_task("schema_match", {})
        b = queue.create_task("schema_match", {})
        assert a.task_id != b.task_id
        assert len(queue) == 2

    def test_get(self):
        queue = TaskQueue()
        task = queue.create_task("schema_match", {"x": 1})
        assert queue.get(task.task_id).payload == {"x": 1}
        with pytest.raises(ExpertError):
            queue.get("missing")

    def test_pending_filters_by_domain(self):
        queue = TaskQueue()
        queue.create_task("schema_match", {}, domain="schema")
        queue.create_task("duplicate_pair", {}, domain="dedup")
        assert len(queue.pending()) == 2
        assert len(queue.pending("schema")) == 1

    def test_next_pending_marks_assigned(self):
        queue = TaskQueue()
        created = queue.create_task("schema_match", {})
        task = queue.next_pending()
        assert task is created
        assert task.status == TaskStatus.ASSIGNED
        assert queue.next_pending() is None

    def test_by_status(self):
        queue = TaskQueue()
        task = queue.create_task("schema_match", {})
        task.record_answer("e", True)
        assert queue.by_status(TaskStatus.ANSWERED) == [task]
        assert queue.by_status(TaskStatus.PENDING) == []

    def test_stats(self):
        queue = TaskQueue()
        queue.create_task("schema_match", {})
        task = queue.create_task("schema_match", {})
        task.record_answer("e", True)
        stats = queue.stats()
        assert stats["total"] == 2
        assert stats["pending"] == 1
        assert stats["answered"] == 1

    def test_all_tasks_in_creation_order(self):
        queue = TaskQueue()
        ids = [queue.create_task("schema_match", {}).task_id for _ in range(3)]
        assert [t.task_id for t in queue.all_tasks()] == ids
