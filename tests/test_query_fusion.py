"""Tests for repro.query.fusion."""

from repro.query.fusion import fuse_entity_views


class TestFuseEntityViews:
    def test_merges_attributes_from_all_views(self):
        result = fuse_entity_views(
            "Matilda",
            [
                ("webtext", {"show_name": "Matilda", "text_feed": "fragment..."}),
                ("ftable:00", {"show_name": "Matilda", "theater": "Shubert",
                               "cheapest_price": "$27"}),
            ],
        )
        assert set(result.attributes) == {
            "show_name", "text_feed", "theater", "cheapest_price",
        }
        assert result.contributing_sources == ["webtext", "ftable:00"]

    def test_preferred_source_wins_conflicts(self):
        result = fuse_entity_views(
            "Matilda",
            [
                ("webtext", {"theater": "unknown venue"}),
                ("ftable:00", {"theater": "Shubert"}),
            ],
            prefer_sources=["ftable:00"],
        )
        assert result.attributes["theater"] == "Shubert"
        assert result.provenance["theater"] == "ftable:00"

    def test_without_preference_first_view_wins(self):
        result = fuse_entity_views(
            "Matilda",
            [("a", {"theater": "First"}), ("b", {"theater": "Second"})],
        )
        assert result.attributes["theater"] == "First"

    def test_null_values_do_not_overwrite(self):
        result = fuse_entity_views(
            "Matilda",
            [("a", {"theater": "Shubert"}), ("b", {"theater": None, "price": ""})],
        )
        assert result.attributes == {"theater": "Shubert"}

    def test_enrichment_over_baseline_is_table6_delta(self):
        text_only = fuse_entity_views(
            "Matilda", [("webtext", {"show_name": "Matilda", "text_feed": "..."})]
        )
        fused = fuse_entity_views(
            "Matilda",
            [
                ("webtext", {"show_name": "Matilda", "text_feed": "..."}),
                ("ftable", {"theater": "Shubert", "performance_schedule": "Tues 7pm",
                            "cheapest_price": "$27", "first_performance": "3/4/2013"}),
            ],
        )
        added = fused.enrichment_over(text_only)
        assert added == [
            "cheapest_price", "first_performance", "performance_schedule", "theater",
        ]

    def test_attributes_from_source(self):
        result = fuse_entity_views(
            "x",
            [("a", {"p": 1}), ("b", {"q": 2, "r": 3})],
        )
        assert result.attributes_from("b") == ["q", "r"]

    def test_empty_views(self):
        result = fuse_entity_views("x", [])
        assert result.attribute_count() == 0
        assert result.as_dict() == {}

    def test_source_with_only_empty_values_is_not_contributing(self):
        # regression: a source whose every value was empty/None used to be
        # listed in contributing_sources anyway
        result = fuse_entity_views(
            "Matilda",
            [
                ("webtext", {"text_feed": None, "theater": ""}),
                ("ftable:00", {"theater": "Shubert"}),
            ],
        )
        assert result.contributing_sources == ["ftable:00"]
        assert result.provenance == {"theater": "ftable:00"}

    def test_source_losing_every_conflict_is_not_contributing(self):
        result = fuse_entity_views(
            "Matilda",
            [
                ("webtext", {"theater": "unknown venue"}),
                ("ftable:00", {"theater": "Shubert"}),
            ],
            prefer_sources=["ftable:00"],
        )
        assert result.contributing_sources == ["ftable:00"]

    def test_contributing_sources_keep_view_order(self):
        result = fuse_entity_views(
            "x",
            [("b", {"q": 2}), ("empty", {"z": None}), ("a", {"p": 1})],
        )
        assert result.contributing_sources == ["b", "a"]

    def test_preference_ranking_among_unlisted_sources(self):
        result = fuse_entity_views(
            "x",
            [("unlisted1", {"a": 1}), ("unlisted2", {"a": 2})],
            prefer_sources=["preferred-but-absent"],
        )
        assert result.attributes["a"] == 1
