"""Tests for repro.entity.consolidation."""

import pytest

from repro.config import EntityConfig
from repro.entity.consolidation import EntityConsolidator, MergePolicy
from repro.entity.dedup import DedupModel, LabeledPair
from repro.entity.record import Record
from repro.errors import EntityResolutionError


def _record(rid, name, extra=None, source="s"):
    values = {"name": name}
    values.update(extra or {})
    return Record.from_dict(rid, source, values)


@pytest.fixture(scope="module")
def trained_model():
    shows = ["Matilda", "Wicked", "Chicago", "Once", "Pippin", "Annie",
             "Kinky Boots", "Newsies", "Motown", "Cinderella"]
    pairs = []
    for i, show in enumerate(shows):
        base = _record(f"b{i}", show, {"theater": f"T{i}", "price": 20 + i})
        variant = _record(f"v{i}", show.lower(), {"price": 20 + i})
        pairs.append(LabeledPair(base, variant, True))
    for i in range(len(shows) - 1):
        pairs.append(
            LabeledPair(
                _record(f"x{i}", shows[i], {"price": 30}),
                _record(f"y{i}", shows[i + 1], {"price": 95}),
                False,
            )
        )
    return DedupModel().fit(pairs)


@pytest.fixture
def duplicate_records():
    return [
        _record("a1", "Matilda", {"theater": "Shubert", "price": 27}, source="ftable"),
        _record("a2", "matilda", {"price": 27}, source="webtext"),
        _record("b1", "Wicked", {"theater": "Gershwin", "price": 89}, source="ftable"),
        _record("c1", "Once", {"theater": "Jacobs", "price": 45}, source="ftable"),
    ]


class TestConsolidation:
    def test_duplicates_merge_into_one_entity(self, trained_model, duplicate_records):
        consolidator = EntityConsolidator(trained_model, key_attribute="name")
        entities = consolidator.consolidate(duplicate_records)
        matilda = [e for e in entities if "a1" in e.member_record_ids]
        assert matilda and set(matilda[0].member_record_ids) == {"a1", "a2"}

    def test_every_record_in_exactly_one_entity(self, trained_model, duplicate_records):
        consolidator = EntityConsolidator(trained_model, key_attribute="name")
        entities = consolidator.consolidate(duplicate_records)
        members = sorted(m for e in entities for m in e.member_record_ids)
        assert members == sorted(r.record_id for r in duplicate_records)

    def test_merged_entity_combines_attributes(self, trained_model, duplicate_records):
        consolidator = EntityConsolidator(trained_model, key_attribute="name")
        entities = consolidator.consolidate(duplicate_records)
        matilda = next(e for e in entities if "a1" in e.member_record_ids)
        assert matilda.attributes["theater"] == "Shubert"
        assert matilda.attributes["price"] == 27
        assert set(matilda.source_ids) == {"ftable", "webtext"}

    def test_provenance_lists_contributing_records(
        self, trained_model, duplicate_records
    ):
        consolidator = EntityConsolidator(trained_model, key_attribute="name")
        entities = consolidator.consolidate(duplicate_records)
        matilda = next(e for e in entities if "a1" in e.member_record_ids)
        assert set(matilda.provenance["price"]) == {"a1", "a2"}

    def test_report_bookkeeping(self, trained_model, duplicate_records):
        consolidator = EntityConsolidator(trained_model, key_attribute="name")
        consolidator.consolidate(duplicate_records)
        report = consolidator.last_report
        assert report.input_records == 4
        assert report.merged_entities >= 1
        assert 0.0 <= report.blocking_reduction <= 1.0

    def test_empty_input(self, trained_model):
        consolidator = EntityConsolidator(trained_model)
        assert consolidator.consolidate([]) == []
        assert consolidator.last_report.input_records == 0

    def test_duplicate_record_ids_rejected(self, trained_model):
        records = [_record("same", "A"), _record("same", "B")]
        with pytest.raises(EntityResolutionError):
            EntityConsolidator(trained_model).consolidate(records)

    def test_no_blocking_strategy_compares_all_pairs(
        self, trained_model, duplicate_records
    ):
        consolidator = EntityConsolidator(
            trained_model,
            config=EntityConfig(blocking_strategy="none"),
            key_attribute="name",
        )
        consolidator.consolidate(duplicate_records)
        n = len(duplicate_records)
        assert consolidator.last_report.candidate_pairs == n * (n - 1) // 2


class TestMergePolicies:
    def _cluster_records(self):
        return [
            _record("r1", "Matilda", {"venue": "Shubert Theatre"}),
            _record("r2", "Matilda", {"venue": "Shubert"}),
            _record("r3", "Matilda", {"venue": "Shubert"}),
        ]

    def _consolidate_with(self, trained_model, policy):
        consolidator = EntityConsolidator(
            trained_model, key_attribute="name", merge_policy=policy
        )
        entities = consolidator.consolidate(self._cluster_records())
        return next(e for e in entities if e.size == 3)

    def test_majority_policy(self, trained_model):
        entity = self._consolidate_with(trained_model, MergePolicy.MAJORITY)
        assert entity.attributes["venue"] == "Shubert"

    def test_longest_policy(self, trained_model):
        entity = self._consolidate_with(trained_model, MergePolicy.LONGEST)
        assert entity.attributes["venue"] == "Shubert Theatre"

    def test_first_policy(self, trained_model):
        entity = self._consolidate_with(trained_model, MergePolicy.FIRST)
        assert entity.attributes["venue"] == "Shubert Theatre"
