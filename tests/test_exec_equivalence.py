"""Parallel/sequential equivalence properties of the execution engine.

Every parallel code path in the system is designed to be *bit-identical* to
its sequential counterpart: deterministic shard routing, order-preserving
fan-out, and stable merges.  These tests enforce that property over seeded
random corpora for 1, 2 and 8 workers — blocking, pairwise scoring,
consolidation and keyword search all produce exactly the sequential result.
"""

import random

import pytest

from repro import DataTamer, TamerConfig
from repro.config import ExecConfig
from repro.entity.blocking import (
    NGramBlocker,
    SortedNeighborhoodBlocker,
    TokenBlocker,
)
from repro.entity.consolidation import EntityConsolidator
from repro.entity.dedup import DedupModel
from repro.entity.record import Record
from repro.exec import BatchScorer, ShardedExecutor
from repro.query.engine import QueryEngine
from repro.workloads import DedupCorpusGenerator

WORKER_COUNTS = (1, 2, 8)
SEEDS = (0, 1, 2)

_WORDS = (
    "matilda", "chicago", "wicked", "pippin", "cinderella", "annie",
    "broadway", "theater", "musical", "tickets", "show", "evening",
    "matinee", "orchestra", "balcony", "premiere",
)


def random_records(seed: int, n: int = 80):
    """A seeded random corpus with overlapping tokens and sparse attributes."""
    rng = random.Random(seed)
    records = []
    for i in range(n):
        fields = {
            "show_name": " ".join(rng.sample(_WORDS, rng.randint(1, 3))),
            "city": rng.choice(["new york", "boston", "chicago", "london"]),
            "price": rng.randint(20, 200),
            "venue": rng.choice(_WORDS),
        }
        # sparse records: drop attributes at random so attribute-overlap
        # features and blocking keys vary across the corpus
        for attr in ("city", "price", "venue"):
            if rng.random() < 0.35:
                del fields[attr]
        records.append(Record.from_dict(f"r{i}", f"src{i % 4}", fields))
    return records


def executor_for(workers: int, batch_size: int = 17) -> ShardedExecutor:
    """A thread-pool executor with a deliberately odd batch size."""
    return ShardedExecutor(
        ExecConfig(parallelism=workers, batch_size=batch_size)
    )


@pytest.fixture(scope="module")
def corpus():
    return DedupCorpusGenerator(seed=29).generate(
        n_entities=50, variants_per_entity=2
    )


@pytest.fixture(scope="module")
def model(corpus):
    return DedupModel(seed=0).fit(corpus.pairs)


class TestBlockingEquivalence:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_token_blocker(self, workers, seed):
        records = random_records(seed)
        blocker = TokenBlocker(max_block_size=40)
        sequential = blocker.block(records)
        parallel = blocker.block(records, executor=executor_for(workers))
        assert parallel.pairs == sequential.pairs
        assert parallel.blocks == sequential.blocks
        assert parallel.total_records == sequential.total_records

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_ngram_blocker(self, workers, seed):
        records = random_records(seed)
        blocker = NGramBlocker(key_attribute="show_name", n=3, max_block_size=40)
        sequential = blocker.block(records)
        parallel = blocker.block(records, executor=executor_for(workers))
        assert parallel.pairs == sequential.pairs
        assert parallel.blocks == sequential.blocks

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_sorted_neighborhood_blocker(self, workers, seed):
        records = random_records(seed)
        blocker = SortedNeighborhoodBlocker(key_attribute="show_name", window=4)
        sequential = blocker.block(records)
        parallel = blocker.block(records, executor=executor_for(workers))
        assert parallel.pairs == sequential.pairs
        # the sorted order itself must be reproduced exactly, ties included
        assert parallel.blocks == sequential.blocks


class TestScoringEquivalence:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_batch_scorer_matches_sequential_scores(self, corpus, model, workers):
        records = corpus.records
        by_id = {r.record_id: r for r in records}
        candidates = sorted(TokenBlocker(max_block_size=60).block(records).pairs)
        assert candidates, "corpus must produce candidate pairs"

        sequential = model.score_pairs(by_id, candidates)
        scorer = BatchScorer(model, executor=executor_for(workers))
        parallel = scorer.score_pairs(by_id, candidates)

        # exact float equality: the batched path must reassemble the very
        # same feature matrix before the classifier sees it
        assert parallel == sequential

    def test_compare_attributes_restriction_is_inherited(self, corpus):
        """Regression: a model's compare_attributes must flow into BatchScorer.

        BatchScorer used to default to no attribute restriction, silently
        scoring (and consolidating) differently from the sequential path for
        models built with ``compare_attributes``.
        """
        restricted = DedupModel(compare_attributes=["name"], seed=0).fit(
            corpus.pairs
        )
        records = corpus.records
        by_id = {r.record_id: r for r in records}
        candidates = sorted(TokenBlocker(max_block_size=60).block(records).pairs)

        sequential = restricted.score_pairs(by_id, candidates)
        scorer = BatchScorer(restricted, executor=executor_for(4))
        assert scorer.score_pairs(by_id, candidates) == sequential

        seq_entities = EntityConsolidator(model=restricted).consolidate(records)
        par_entities = EntityConsolidator(
            model=restricted, executor=executor_for(4)
        ).consolidate(records)
        assert par_entities == seq_entities

    def test_batch_size_one_still_identical(self, corpus, model):
        records = corpus.records[:20]
        by_id = {r.record_id: r for r in records}
        candidates = sorted(TokenBlocker(max_block_size=60).block(records).pairs)
        sequential = model.score_pairs(by_id, candidates)
        scorer = BatchScorer(model, executor=executor_for(4), batch_size=1)
        assert scorer.score_pairs(by_id, candidates) == sequential


class TestConsolidationEquivalence:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_entities_identical(self, corpus, model, workers):
        records = corpus.records
        sequential = EntityConsolidator(model=model).consolidate(records)
        parallel = EntityConsolidator(
            model=model, executor=executor_for(workers)
        ).consolidate(records)
        assert parallel == sequential

    @pytest.mark.parametrize("seed", SEEDS)
    def test_entities_identical_on_random_corpora(self, model, seed):
        records = random_records(seed, n=60)
        sequential = EntityConsolidator(model=model).consolidate(records)
        parallel = EntityConsolidator(
            model=model, executor=executor_for(8)
        ).consolidate(records)
        assert parallel == sequential

    def test_reports_identical(self, corpus, model):
        records = corpus.records
        seq = EntityConsolidator(model=model)
        seq.consolidate(records)
        par = EntityConsolidator(model=model, executor=executor_for(8))
        par.consolidate(records)
        assert par.last_report.as_dict() == seq.last_report.as_dict()

    def test_serial_backend_runs_fan_out_inline_identically(self, corpus, model):
        """backend='serial' must execute the shard functions (inline) and
        still match the sequential path — the documented debugging mode."""
        records = corpus.records[:40]
        sequential = EntityConsolidator(model=model).consolidate(records)
        executor = ShardedExecutor(
            ExecConfig(parallelism=4, batch_size=32, backend="serial")
        )
        assert executor.fans_out and not executor.is_parallel
        parallel = EntityConsolidator(
            model=model, executor=executor
        ).consolidate(records)
        assert parallel == sequential
        # the fan-out really ran: per-shard timings were recorded
        assert executor.last_shard_timings

    def test_process_backend_identical(self, corpus, model):
        records = corpus.records[:40]
        sequential = EntityConsolidator(model=model).consolidate(records)
        executor = ShardedExecutor(
            ExecConfig(parallelism=2, batch_size=64, backend="process")
        )
        try:
            parallel = EntityConsolidator(
                model=model, executor=executor
            ).consolidate(records)
            assert parallel == sequential
        finally:
            executor.close()

    @pytest.mark.parametrize("pool", ("persistent", "ephemeral"))
    def test_process_pool_flavours_identical(self, corpus, model, pool):
        """Pool on/off must not change a single bit of the output.

        The persistent flavour routes every fan-out (blocking, warm-state
        scoring, cluster merging) through long-lived workers; the ephemeral
        flavour spawns a pool per fan-out.  Both must equal the sequential
        path exactly — the deeper lifecycle suite lives in
        tests/test_exec_pool.py.
        """
        records = corpus.records
        sequential = EntityConsolidator(model=model).consolidate(records)
        executor = ShardedExecutor(
            ExecConfig(parallelism=2, batch_size=64, backend="process", pool=pool)
        )
        try:
            parallel = EntityConsolidator(
                model=model, executor=executor
            ).consolidate(records)
            assert parallel == sequential
            # run again on the same executor: a warm pool must stay identical
            assert (
                EntityConsolidator(model=model, executor=executor).consolidate(
                    records
                )
                == sequential
            )
        finally:
            executor.close()


class TestWarmShardBlocking:
    """Blocking-key extraction in warm workers ships shard ids, not records.

    After the first warm sync mirrors the record set into the pool, repeat
    blocking runs over the same records must ship *zero* record payloads —
    fan-outs carry only shard indices and the workers derive their partition
    from mirrored state.  And of course the keys must be bit-identical to
    the sequential extraction.
    """

    def _warm_executor(self):
        return ShardedExecutor(
            ExecConfig(
                parallelism=2,
                batch_size=64,
                backend="process",
                pool="persistent",
                warm_state=True,
            )
        )

    @pytest.mark.parametrize(
        "make_blocker",
        [
            lambda: TokenBlocker(max_block_size=40),
            lambda: NGramBlocker(key_attribute="show_name", n=3, max_block_size=40),
            lambda: SortedNeighborhoodBlocker(key_attribute="show_name", window=4),
        ],
        ids=["token", "ngram", "sorted-neighborhood"],
    )
    def test_warm_blocking_identical_and_ships_no_records_when_warm(
        self, make_blocker
    ):
        records = random_records(3)
        blocker = make_blocker()
        sequential = blocker.block(records)
        executor = self._warm_executor()
        try:
            first = blocker.block(records, executor=executor)
            assert first.pairs == sequential.pairs
            assert first.blocks == sequential.blocks

            pool = executor.ensure_pool()
            shipped_after_warm = pool.records_shipped
            tasks_after_warm = pool.tasks_completed
            second = blocker.block(records, executor=executor)
            assert second.pairs == sequential.pairs
            assert second.blocks == sequential.blocks
            # the rerun fanned out (tasks ran) but shipped no record payloads
            assert pool.tasks_completed > tasks_after_warm
            assert pool.records_shipped == shipped_after_warm
        finally:
            executor.close()

    def test_warm_scope_shared_across_blockers(self):
        """A second blocker over the same records reuses the mirrored state."""
        records = random_records(4)
        executor = self._warm_executor()
        try:
            token = TokenBlocker(max_block_size=40)
            sorted_b = SortedNeighborhoodBlocker(key_attribute="show_name", window=4)
            token_parallel = token.block(records, executor=executor)
            pool = executor.ensure_pool()
            shipped = pool.records_shipped
            sorted_parallel = sorted_b.block(records, executor=executor)
            assert pool.records_shipped == shipped
            assert token_parallel.pairs == token.block(records).pairs
            assert sorted_parallel.pairs == sorted_b.block(records).pairs
        finally:
            executor.close()


class TestInWorkerAssembly:
    """Chunk workers featurize *and* classify; parents get scores + decisions.

    The shipped probabilities must be bit-identical to
    :meth:`DedupModel.score_pairs` on every backend and worker count, and
    the shipped decisions must be exactly ``probability >= threshold`` under
    those same floats — the consolidator trusts them without re-deriving.
    """

    def _candidates(self, corpus):
        records = corpus.records
        by_id = {r.record_id: r for r in records}
        return by_id, sorted(TokenBlocker(max_block_size=60).block(records).pairs)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_thread_backend_scores_and_decisions(self, corpus, model, workers):
        by_id, candidates = self._candidates(corpus)
        sequential = model.score_pairs(by_id, candidates)
        scorer = BatchScorer(model, executor=executor_for(workers))
        scores, decided = scorer.score_and_decide(by_id, candidates)
        assert scores == sequential
        assert decided == {
            pair for pair, prob in sequential.items() if prob >= model.threshold
        }

    @pytest.mark.parametrize("pool", ("persistent", "ephemeral"))
    def test_process_backends_scores_and_decisions(self, corpus, model, pool):
        by_id, candidates = self._candidates(corpus)
        sequential = model.score_pairs(by_id, candidates)
        executor = ShardedExecutor(
            ExecConfig(parallelism=2, batch_size=64, backend="process", pool=pool)
        )
        try:
            scorer = BatchScorer(model, executor=executor)
            scores, decided = scorer.score_and_decide(by_id, candidates)
            assert scores == sequential
            assert decided == {
                pair for pair, prob in sequential.items() if prob >= model.threshold
            }
            # a second pass over a warm pool must not drift
            scores2, decided2 = scorer.score_and_decide(by_id, candidates)
            assert scores2 == sequential and decided2 == decided
        finally:
            executor.close()

    def test_non_linear_model_falls_back_to_parent_classification(self, corpus):
        from repro.config import EntityConfig

        bayes = DedupModel(config=EntityConfig(classifier="naive_bayes"), seed=0)
        bayes.fit(corpus.pairs)
        assert bayes.linear_decision() is None
        by_id, candidates = self._candidates(corpus)
        sequential = bayes.score_pairs(by_id, candidates)
        scorer = BatchScorer(bayes, executor=executor_for(4))
        scores, decided = scorer.score_and_decide(by_id, candidates)
        assert scores == sequential
        assert decided == {
            pair for pair, prob in sequential.items() if prob >= bayes.threshold
        }

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_consolidation_entities_identical_with_in_worker_decisions(
        self, corpus, model, workers
    ):
        records = corpus.records
        sequential = EntityConsolidator(model=model).consolidate(records)
        parallel = EntityConsolidator(
            model=model, executor=executor_for(workers)
        ).consolidate(records)
        assert parallel == sequential


class TestFacadeEquivalence:
    def test_datatamer_parallel_knobs_do_not_change_results(self, model):
        """The facade's parallelism knob must not change consolidation."""
        rows = [
            {"name": "Matilda", "theater": "Shubert", "price": 87},
            {"name": "Matilda the Musical", "theater": "Shubert"},
            {"name": "Chicago", "theater": "Ambassador", "price": 75},
            {"name": "Wicked", "theater": "Gershwin"},
            {"name": "Wicked ", "price": 99},
        ]

        def consolidate(parallelism):
            tamer = DataTamer(TamerConfig.small(), parallelism=parallelism)
            tamer.ingest_structured_records("playbill", rows[:3])
            tamer.ingest_structured_records("ticketmaster", rows[3:])
            tamer.set_dedup_model(model)
            return tamer.consolidate_curated(key_attribute="name")

        sequential = consolidate(1)
        parallel = consolidate(4)
        assert parallel == sequential

    def test_set_parallelism_rebuilds_executor(self):
        tamer = DataTamer(TamerConfig.small())
        assert tamer.parallelism == 1
        tamer.set_parallelism(4, batch_size=64)
        assert tamer.parallelism == 4
        assert tamer.batch_size == 64
        assert tamer.executor.is_parallel


class TestQueryEquivalence:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_search_results_identical(self, corpus, model, workers):
        entities = EntityConsolidator(model=model).consolidate(corpus.records)
        sequential = QueryEngine(entities)
        parallel = QueryEngine(entities, executor=executor_for(workers))
        # phrases drawn from the data (some hits) plus a guaranteed miss
        names = [str(e.attributes.get("name", "")) for e in entities[:5]]
        phrases = [n.split()[0] for n in names if n] + ["zzz no match"]
        for phrase in phrases:
            seq_result = sequential.search(phrase)
            par_result = parallel.search(phrase)
            assert [e.entity_id for e in par_result] == [
                e.entity_id for e in seq_result
            ]
            assert par_result.as_dicts() == seq_result.as_dicts()
