"""Bit-identity corpus for the batch string-edit engine.

:mod:`repro.entity.stredit` promises that every similarity it produces is
bit-for-bit the scalar oracle's
``max(levenshtein_ratio(a, b), jaro_winkler(a, b))`` from
:mod:`repro.schema.matchers` — no tolerances, ever, because the scoring
kernel's memo mixes engine-computed and scalar-computed entries freely.
These tests enforce that with hypothesis-generated pairs across the regimes
the engine switches between (empty, trimmed-to-nothing, Myers bit-parallel,
banded DP, vectorized Jaro-Winkler buckets, scalar fallbacks), plus exact
component oracles for each building block.
"""

import random
import string
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.entity.stredit import (
    _VEC_MAX_LEN,
    _VEC_MIN_GROUP,
    banded_levenshtein,
    batch_jaro_winkler,
    batch_string_sim,
    myers_distance,
    string_sim,
    trim_common_affixes,
)
from repro.schema.matchers import (
    jaro_winkler,
    levenshtein_distance,
    levenshtein_ratio,
)


def _bits(value: float) -> bytes:
    return struct.pack("<d", value)


def _oracle(a: str, b: str) -> float:
    return max(levenshtein_ratio(a, b), jaro_winkler(a, b))


# Alphabets chosen to hit every engine regime: tiny alphabets force dense
# matches and transpositions, unicode exercises the codepoint path, and the
# shared-prefix strategy stresses trimming plus the Winkler prefix bonus.
_SMALL = st.text(alphabet="ab", max_size=12)
_ASCII = st.text(alphabet=string.ascii_lowercase + " .,'-", max_size=40)
_UNICODE = st.text(max_size=24)
_LONG = st.text(alphabet=string.ascii_lowercase + " ", min_size=50, max_size=180)


@st.composite
def _prefix_heavy(draw):
    prefix = draw(st.text(alphabet=string.ascii_lowercase, min_size=0, max_size=30))
    suffix = draw(st.text(alphabet=string.ascii_lowercase, min_size=0, max_size=30))
    a = draw(st.text(alphabet=string.ascii_lowercase + "0123456789", max_size=12))
    b = draw(st.text(alphabet=string.ascii_lowercase + "0123456789", max_size=12))
    return prefix + a + suffix, prefix + b + suffix


class TestSinglePairBitIdentity:
    @settings(max_examples=300, deadline=None)
    @given(_SMALL, _SMALL)
    def test_small_alphabet(self, a, b):
        assert _bits(string_sim(a, b)) == _bits(_oracle(a, b))

    @settings(max_examples=300, deadline=None)
    @given(_ASCII, _ASCII)
    def test_ascii(self, a, b):
        assert _bits(string_sim(a, b)) == _bits(_oracle(a, b))

    @settings(max_examples=200, deadline=None)
    @given(_UNICODE, _UNICODE)
    def test_unicode(self, a, b):
        assert _bits(string_sim(a, b)) == _bits(_oracle(a, b))

    @settings(max_examples=60, deadline=None)
    @given(_LONG, _LONG)
    def test_long_strings(self, a, b):
        assert _bits(string_sim(a, b)) == _bits(_oracle(a, b))

    @settings(max_examples=200, deadline=None)
    @given(_prefix_heavy())
    def test_prefix_heavy(self, pair):
        a, b = pair
        assert _bits(string_sim(a, b)) == _bits(_oracle(a, b))

    @pytest.mark.parametrize(
        ("a", "b"),
        [
            ("", ""),
            ("", "x"),
            ("x", ""),
            ("same", "same"),
            ("a", "b"),
            ("ab", "ba"),
            ("martha", "marhta"),
            ("dixon", "dicksonx"),
            ("jellyfish", "smellyfish"),
            ("x" * 64, "x" * 63 + "y"),
            ("x" * 65, "y" * 65),
            ("\ud800", "𐏿"),  # lone surrogates: utf-32 fallback
            ("café", "cafe"),
            ("Ābc", "abc"),
        ],
    )
    def test_edge_cases(self, a, b):
        assert _bits(string_sim(a, b)) == _bits(_oracle(a, b))


class TestBatchBitIdentity:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.one_of(_SMALL, _ASCII, _UNICODE), st.one_of(_SMALL, _ASCII)),
            min_size=0,
            max_size=60,
        )
    )
    def test_batches_match_oracle_pairwise(self, pairs):
        got = batch_string_sim(pairs)
        assert len(got) == len(pairs)
        for (a, b), value in zip(pairs, got):
            assert _bits(value) == _bits(_oracle(a, b))

    def test_batch_order_and_duplicates(self):
        # the same value pair repeated must yield the same bits each time,
        # and results must line up positionally with the input
        pairs = [("alpha", "alphq"), ("beta", "betta"), ("alpha", "alphq")] * 7
        got = batch_string_sim(pairs)
        for (a, b), value in zip(pairs, got):
            assert _bits(value) == _bits(_oracle(a, b))
        assert _bits(got[0]) == _bits(got[2])

    def test_large_homogeneous_batch_forces_vector_path(self):
        # >= _VEC_MIN_GROUP same-bucket pairs run through the vectorized
        # Jaro-Winkler kernel; the floats must still be the scalar oracle's
        rng = random.Random(5)
        names = [
            "".join(rng.choice(string.ascii_lowercase + " ") for _ in range(12))
            for _ in range(4 * _VEC_MIN_GROUP)
        ]
        pairs = [(names[i], names[i + 1]) for i in range(len(names) - 1)]
        got = batch_string_sim(pairs)
        for (a, b), value in zip(pairs, got):
            assert _bits(value) == _bits(_oracle(a, b))


class TestVectorJaroWinkler:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.text(alphabet="abcde é", min_size=1, max_size=14),
                st.text(alphabet="abcde é", min_size=1, max_size=14),
            ),
            min_size=_VEC_MIN_GROUP,
            max_size=3 * _VEC_MIN_GROUP,
        )
    )
    def test_bucketed_jw_matches_scalar(self, pairs):
        got = batch_jaro_winkler(pairs)
        for (a, b), value in zip(pairs, got):
            assert _bits(value) == _bits(jaro_winkler(a, b))

    def test_over_length_pairs_fall_back_to_scalar(self):
        long_pair = ("q" * (_VEC_MAX_LEN + 5), "q" * (_VEC_MAX_LEN + 3) + "zz")
        pairs = [long_pair] * (_VEC_MIN_GROUP + 1)
        got = batch_jaro_winkler(pairs)
        for value in got:
            assert _bits(value) == _bits(jaro_winkler(*long_pair))


class TestComponentOracles:
    @settings(max_examples=200, deadline=None)
    @given(_ASCII, _ASCII)
    def test_myers_equals_levenshtein(self, a, b):
        # myers_distance requires a non-empty pattern of <= 64 chars; the
        # engine guarantees that by construction, so mirror it here
        if 0 < len(a) <= 64:
            assert myers_distance(a, b) == levenshtein_distance(a, b)

    @settings(max_examples=200, deadline=None)
    @given(_ASCII, _ASCII, st.integers(min_value=-1, max_value=50))
    def test_banded_cutoff_semantics(self, a, b, cutoff):
        true_distance = levenshtein_distance(a, b)
        got = banded_levenshtein(a, b, cutoff)
        if true_distance <= cutoff:
            assert got == true_distance
        else:
            assert got == cutoff + 1

    @settings(max_examples=200, deadline=None)
    @given(st.one_of(_ASCII, _UNICODE), st.one_of(_ASCII, _UNICODE))
    def test_trim_preserves_distance(self, a, b):
        trimmed_a, trimmed_b = trim_common_affixes(a, b)
        assert levenshtein_distance(trimmed_a, trimmed_b) == levenshtein_distance(a, b)
        # trimming never invents characters
        assert len(trimmed_a) <= len(a) and len(trimmed_b) <= len(b)


class TestKernelMemoIntegration:
    def test_prefilled_memo_matches_scalar_kernel(self):
        # same kernel workload with the engine on and off: identical bits
        from repro.entity.kernel import ScoringKernel
        from repro.entity.record import Record

        rng = random.Random(17)
        records = [
            Record.from_dict(
                f"r{i}",
                "s",
                {
                    "name": "".join(
                        rng.choice(string.ascii_lowercase + " ") for _ in range(14)
                    ),
                    "city": rng.choice(["springfield", "spring field", "shelbyville"]),
                },
            )
            for i in range(24)
        ]
        by_id = {r.record_id: r for r in records}
        ids = sorted(by_id)
        pairs = [(a, b) for i, a in enumerate(ids) for b in ids[i + 1 :]]
        fast = ScoringKernel().features_for_pairs(by_id, pairs)
        slow = ScoringKernel(use_stredit=False).features_for_pairs(by_id, pairs)
        assert fast.tobytes() == slow.tobytes()
