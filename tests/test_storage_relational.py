"""Tests for repro.storage.relational."""

import pytest

from repro.errors import TableError
from repro.storage.relational import Column, RelationalStore, Table


@pytest.fixture
def shows_table() -> Table:
    table = Table(
        "shows",
        [
            Column("name", "string", nullable=False),
            Column("price", "float"),
            Column("seats", "integer"),
            Column("open", "boolean"),
        ],
    )
    table.insert_many(
        [
            {"name": "Matilda", "price": 27.0, "seats": 1460, "open": True},
            {"name": "Wicked", "price": 89.0, "seats": 1900, "open": True},
            {"name": "Once", "price": 45.5, "seats": 1100, "open": False},
        ]
    )
    return table


class TestColumn:
    def test_rejects_empty_name(self):
        with pytest.raises(TableError):
            Column("", "string")

    def test_rejects_unknown_type(self):
        with pytest.raises(TableError):
            Column("x", "blob")

    def test_accepts_by_type(self):
        assert Column("x", "integer").accepts(5)
        assert not Column("x", "integer").accepts(5.5)
        assert not Column("x", "integer").accepts(True)
        assert Column("x", "float").accepts(5)
        assert Column("x", "boolean").accepts(False)
        assert Column("x", "string").accepts("text")
        assert not Column("x", "string").accepts(3)

    def test_nullability(self):
        assert Column("x", "string", nullable=True).accepts(None)
        assert not Column("x", "string", nullable=False).accepts(None)


class TestTableBasics:
    def test_requires_columns(self):
        with pytest.raises(TableError):
            Table("t", [])

    def test_rejects_duplicate_column_names(self):
        with pytest.raises(TableError):
            Table("t", [Column("a"), Column("a")])

    def test_insert_unknown_column_rejected(self, shows_table):
        with pytest.raises(TableError):
            shows_table.insert({"name": "X", "bogus": 1})

    def test_insert_missing_not_nullable_rejected(self, shows_table):
        with pytest.raises(TableError):
            shows_table.insert({"price": 10.0})

    def test_insert_type_mismatch_rejected(self, shows_table):
        with pytest.raises(TableError):
            shows_table.insert({"name": "X", "seats": "many"})

    def test_missing_nullable_defaults_to_none(self, shows_table):
        shows_table.insert({"name": "Pippin"})
        row = shows_table.select(where=lambda r: r["name"] == "Pippin")[0]
        assert row["price"] is None

    def test_len_counts_rows(self, shows_table):
        assert len(shows_table) == 3

    def test_add_column_backfills_none(self, shows_table):
        shows_table.add_column(Column("genre", "string"))
        assert all(row["genre"] is None for row in shows_table.scan())

    def test_add_column_duplicate_rejected(self, shows_table):
        with pytest.raises(TableError):
            shows_table.add_column(Column("name", "string"))

    def test_add_column_not_nullable_rejected(self, shows_table):
        with pytest.raises(TableError):
            shows_table.add_column(Column("genre", "string", nullable=False))


class TestSelect:
    def test_select_all(self, shows_table):
        assert len(shows_table.select()) == 3

    def test_select_where(self, shows_table):
        cheap = shows_table.select(where=lambda r: r["price"] < 50)
        assert {r["name"] for r in cheap} == {"Matilda", "Once"}

    def test_select_projection(self, shows_table):
        rows = shows_table.select(columns=["name"])
        assert all(set(r) == {"name"} for r in rows)

    def test_select_projection_unknown_column(self, shows_table):
        with pytest.raises(TableError):
            shows_table.select(columns=["bogus"])

    def test_select_order_by(self, shows_table):
        rows = shows_table.select(order_by="price")
        assert [r["name"] for r in rows] == ["Matilda", "Once", "Wicked"]

    def test_select_order_by_descending(self, shows_table):
        rows = shows_table.select(order_by="price", descending=True)
        assert rows[0]["name"] == "Wicked"

    def test_select_order_by_unknown_column(self, shows_table):
        with pytest.raises(TableError):
            shows_table.select(order_by="bogus")

    def test_select_limit(self, shows_table):
        assert len(shows_table.select(limit=2)) == 2

    def test_select_returns_copies(self, shows_table):
        row = shows_table.select()[0]
        row["name"] = "tampered"
        assert "tampered" not in {r["name"] for r in shows_table.scan()}

    def test_order_by_pushes_nulls_last(self, shows_table):
        shows_table.insert({"name": "NoPrice"})
        rows = shows_table.select(order_by="price")
        assert rows[-1]["name"] == "NoPrice"


class TestMutations:
    def test_update_where(self, shows_table):
        changed = shows_table.update_where(
            lambda r: r["name"] == "Matilda", {"price": 30.0}
        )
        assert changed == 1
        assert (
            shows_table.select(where=lambda r: r["name"] == "Matilda")[0]["price"]
            == 30.0
        )

    def test_update_unknown_column_rejected(self, shows_table):
        with pytest.raises(TableError):
            shows_table.update_where(lambda r: True, {"bogus": 1})

    def test_update_type_mismatch_rejected(self, shows_table):
        with pytest.raises(TableError):
            shows_table.update_where(lambda r: True, {"seats": "lots"})

    def test_delete_where(self, shows_table):
        removed = shows_table.delete_where(lambda r: not r["open"])
        assert removed == 1
        assert len(shows_table) == 2


class TestAggregation:
    def test_count_with_predicate(self, shows_table):
        assert shows_table.count(lambda r: r["open"]) == 2

    def test_distinct_preserves_first_seen_order(self, shows_table):
        shows_table.insert({"name": "Matilda", "price": 99.0})
        assert shows_table.distinct("name") == ["Matilda", "Wicked", "Once"]

    def test_distinct_unknown_column(self, shows_table):
        with pytest.raises(TableError):
            shows_table.distinct("bogus")

    def test_aggregate(self, shows_table):
        assert shows_table.aggregate("seats", sum) == 1460 + 1900 + 1100
        assert shows_table.aggregate("price", min) == 27.0


class TestRelationalStore:
    def test_create_and_get(self):
        store = RelationalStore()
        table = store.create_table("t", [Column("a")])
        assert store.table("t") is table
        assert store.has_table("t")

    def test_duplicate_table_rejected(self):
        store = RelationalStore()
        store.create_table("t", [Column("a")])
        with pytest.raises(TableError):
            store.create_table("t", [Column("a")])

    def test_missing_table_raises(self):
        with pytest.raises(TableError):
            RelationalStore().table("none")

    def test_drop_table(self):
        store = RelationalStore()
        store.create_table("t", [Column("a")])
        store.drop_table("t")
        assert not store.has_table("t")

    def test_list_tables_and_total_rows(self):
        store = RelationalStore()
        store.create_table("b", [Column("x", "integer")]).insert({"x": 1})
        store.create_table("a", [Column("x", "integer")]).insert_many(
            [{"x": 1}, {"x": 2}]
        )
        assert store.list_tables() == ["a", "b"]
        assert store.total_rows() == 3


class TestDistinctAndAggregateOrdering:
    def test_distinct_ordered_sorts_values(self, shows_table):
        shows_table.insert({"name": "Annie", "price": 30.0})
        assert shows_table.distinct("name", ordered=True) == [
            "Annie", "Matilda", "Once", "Wicked",
        ]

    def test_distinct_include_null_keeps_one_null(self, shows_table):
        shows_table.insert({"name": "Annie"})  # price defaults to None
        shows_table.insert({"name": "Cats"})
        values = shows_table.distinct("price", include_null=True)
        assert values.count(None) == 1
        assert set(values) == {27.0, 89.0, 45.5, None}

    def test_distinct_ordered_puts_null_last(self, shows_table):
        shows_table.insert({"name": "Annie"})
        values = shows_table.distinct("price", ordered=True, include_null=True)
        assert values == [27.0, 45.5, 89.0, None]

    def test_distinct_survives_unhashable_values(self):
        table = Table("t", [Column("tags", "unknown")])
        table.insert_many(
            [{"tags": ["a", "b"]}, {"tags": ["a", "b"]}, {"tags": ["c"]}]
        )
        assert table.distinct("tags") == [["a", "b"], ["c"]]

    def test_distinct_mixed_types_do_not_collide_or_crash(self):
        table = Table("t", [Column("v", "unknown")])
        table.insert_many([{"v": 1}, {"v": "1"}, {"v": 1}, {"v": [1]}])
        assert table.distinct("v") == [1, "1", [1]]

    def test_aggregate_ordered_is_insertion_independent(self):
        def first(values):
            return values[0] if values else None

        a = Table("a", [Column("v", "integer")])
        a.insert_many([{"v": 3}, {"v": 1}, {"v": 2}])
        b = Table("b", [Column("v", "integer")])
        b.insert_many([{"v": 2}, {"v": 3}, {"v": 1}])
        assert a.aggregate("v", first, ordered=True) == 1
        assert a.aggregate("v", first, ordered=True) == b.aggregate(
            "v", first, ordered=True
        )
        # default stays row-order for backwards compatibility
        assert a.aggregate("v", first) == 3


class TestRelationalEdgeCases:
    def test_update_where_is_all_or_nothing(self, shows_table):
        # the bad boolean arrives *after* a valid price in the changes
        # dict; re-validation must reject before any row is half-updated
        before = shows_table.select()
        with pytest.raises(TableError):
            shows_table.update_where(
                lambda r: r["open"], {"price": 1.0, "open": "yes"}
            )
        assert shows_table.select() == before

    def test_update_where_rejects_bad_type_even_with_no_matches(
        self, shows_table
    ):
        with pytest.raises(TableError):
            shows_table.update_where(lambda r: False, {"seats": "many"})

    def test_add_column_on_populated_table_roundtrips(self, shows_table):
        shows_table.add_column(Column("genre", "string"))
        # existing rows backfill to None, new inserts carry the column
        assert [r["genre"] for r in shows_table.select()] == [None] * 3
        shows_table.insert({"name": "Annie", "genre": "musical"})
        rows = shows_table.select(
            where=lambda r: r["genre"] is not None, columns=["name", "genre"]
        )
        assert rows == [{"name": "Annie", "genre": "musical"}]
        # the new column participates in typed validation immediately
        with pytest.raises(TableError):
            shows_table.insert({"name": "Cats", "genre": 7})

    def test_select_projection_order_limit_combined(self, shows_table):
        # ordering happens on the full row, then projection drops the
        # order key: the limit must apply to the ordered sequence
        rows = shows_table.select(
            columns=["name"], order_by="price", descending=True, limit=2
        )
        assert rows == [{"name": "Wicked"}, {"name": "Once"}]

    def test_select_order_by_mixed_types_does_not_crash(self):
        table = Table("t", [Column("v", "unknown"), Column("tag", "string")])
        table.insert_many(
            [
                {"v": "b", "tag": "s1"},
                {"v": 2, "tag": "n1"},
                {"v": None, "tag": "null"},
                {"v": "a", "tag": "s2"},
                {"v": 1, "tag": "n2"},
            ]
        )
        ordered = [r["tag"] for r in table.select(order_by="v")]
        # numbers before strings, nulls last — the SQL total order
        assert ordered == ["n2", "n1", "s2", "s1", "null"]
