"""Tests for repro.core.catalog."""

import pytest

from repro.core.catalog import SourceCatalog
from repro.errors import UnknownSource


class TestSourceCatalog:
    def test_register_and_entry(self):
        catalog = SourceCatalog()
        catalog.register("s1", kind="structured", records_loaded=10)
        entry = catalog.entry("s1")
        assert entry.records_loaded == 10
        assert "s1" in catalog
        assert len(catalog) == 1

    def test_unknown_source_raises(self):
        with pytest.raises(UnknownSource):
            SourceCatalog().entry("missing")

    def test_reregistration_accumulates(self):
        catalog = SourceCatalog()
        catalog.register("s1", kind="structured", records_loaded=5, attributes=["a"])
        catalog.register(
            "s1", kind="structured", records_loaded=7, attributes=["a", "b"]
        )
        entry = catalog.entry("s1")
        assert entry.records_loaded == 12
        assert entry.attributes == ["a", "b"]
        assert len(catalog) == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SourceCatalog().register("s", kind="mystery")

    def test_entries_in_ingestion_order(self):
        catalog = SourceCatalog()
        for name in ("c", "a", "b"):
            catalog.register(name, kind="structured")
        assert catalog.source_ids() == ["c", "a", "b"]

    def test_entries_filtered_by_kind(self):
        catalog = SourceCatalog()
        catalog.register("s1", kind="structured")
        catalog.register("t1", kind="unstructured")
        assert [e.source_id for e in catalog.entries(kind="unstructured")] == ["t1"]

    def test_total_records(self):
        catalog = SourceCatalog()
        catalog.register("a", kind="structured", records_loaded=3)
        catalog.register("b", kind="unstructured", records_loaded=4)
        assert catalog.total_records() == 7

    def test_as_dict(self):
        catalog = SourceCatalog()
        catalog.register("a", kind="structured", description="d", collection="c")
        entry_dict = catalog.entry("a").as_dict()
        assert entry_dict["description"] == "d"
        assert entry_dict["collection"] == "c"
