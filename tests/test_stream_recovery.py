"""Changelog persistence and crash recovery.

The streaming engine can mirror its change-data-capture log to an
append-only JSONL file (``StreamConfig.changelog_path``).  These tests
cover the format round-trip (snapshot + live events, truncated trailing
lines, position semantics of delete + re-insert) and the headline
guarantee: a process killed mid-session is recovered by replaying the
file into a fresh collection, and re-bootstrapping a stream over it lands
on the **bit-identical** pre-crash entity *and* schema state.
"""

import json
import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro import DataTamer, StreamConfig, TamerConfig
from repro.config import EntityConfig
from repro.storage.persistence import (
    ChangelogWriter,
    read_changelog,
    recover_collection,
)
from repro.stream import tail_collection
from repro.workloads import DedupCorpusGenerator

_REPO_ROOT = Path(__file__).resolve().parent.parent


def _build_tamer(changelog_path=None, **stream_kwargs) -> DataTamer:
    config = TamerConfig.small()
    config.entity = EntityConfig(blocking_strategy="token")
    options = dict(
        max_batch_size=7,
        rebuild_threshold=0,
        schema_integration=True,
        changelog_path=str(changelog_path) if changelog_path else None,
    )
    options.update(stream_kwargs)
    config.stream = StreamConfig(**options)
    tamer = DataTamer(config.validate())
    corpus = DedupCorpusGenerator(seed=13).generate(
        n_entities=50, variants_per_entity=2
    )
    tamer.train_dedup_model(corpus.pairs)
    return tamer


def _drive_writes(tamer: DataTamer, rng: random.Random, steps: int) -> None:
    """A deterministic insert/update/delete/reinsert workload."""
    corpus = DedupCorpusGenerator(seed=29).generate(
        n_entities=40, variants_per_entity=2
    )
    pool = [dict(r.as_dict()) for r in corpus.records]
    collection = tamer.curated_collection
    for step in range(steps):
        live = [doc["_id"] for doc in collection.scan()]
        op = rng.random()
        if op < 0.5 or len(live) < 8:
            doc = dict(pool[step % len(pool)])
            doc["_source"] = rng.choice(("alpha", "beta", "gamma"))
            collection.insert(doc)
        elif op < 0.7:
            doc_id = rng.choice(live)
            changes = {"name": f"renamed {step}", "price": rng.randint(1, 99)}
            collection.update(doc_id, changes)
        elif op < 0.85:
            # delete + re-insert under the SAME id: position moves to the end
            victim = rng.choice(live)
            doc = collection.get(victim)
            collection.delete(victim)
            collection.insert(doc)
        else:
            collection.delete(rng.choice(live))


def _entity_dicts(entities) -> list:
    return [
        {
            "entity_id": e.entity_id,
            "members": e.member_record_ids,
            "sources": e.source_ids,
            "attributes": e.attributes,
            "provenance": e.provenance,
        }
        for e in entities
    ]


def _state(stream) -> dict:
    return {
        "entities": _entity_dicts(stream.refresh()),
        "schema": stream.integrator.snapshot(),
    }


def _canonical(state: dict) -> str:
    return json.dumps(state, default=str, sort_keys=True)


def _child_main(workdir: str) -> None:
    """Run inside the to-be-killed subprocess: stream, snapshot, die."""
    workdir = Path(workdir)
    tamer = _build_tamer(changelog_path=workdir / "changelog.jsonl")
    rng = random.Random(5)
    # pre-stream population: covered by the writer's bootstrap snapshot
    _drive_writes(tamer, rng, steps=15)
    stream = tamer.start_stream()
    # live writes: mirrored event by event
    _drive_writes(tamer, rng, steps=25)
    (workdir / "expected.json").write_text(_canonical(_state(stream)))
    os._exit(9)  # crash: no close(), no writer shutdown


# -- format round-trip ------------------------------------------------------


def test_writer_snapshot_and_events_round_trip(document_store, tmp_path):
    collection = document_store.create_collection("log")
    collection.insert({"_id": "a", "v": 1})
    path = tmp_path / "log.jsonl"
    writer = ChangelogWriter(path)
    writer.write_snapshot(collection.scan())
    from repro.stream.changelog import Changelog

    tail_collection(collection, changelog=Changelog(sink=writer.append))
    collection.insert({"_id": "b", "v": 2})
    collection.update("a", {"v": 3})
    collection.delete("b")
    entries = read_changelog(path)
    assert [(e["op"], e["doc_id"]) for e in entries] == [
        ("insert", "a"),  # snapshot
        ("insert", "b"),
        ("update", "a"),
        ("delete", "b"),
    ]
    assert entries[0]["seq"] == 0 and entries[1]["seq"] == 1
    assert entries[2]["document"]["v"] == 3


def test_recover_collection_replays_positions(document_store, tmp_path):
    source = document_store.create_collection("src")
    path = tmp_path / "log.jsonl"
    writer = ChangelogWriter(path)
    from repro.stream.changelog import Changelog

    tail_collection(source, changelog=Changelog(sink=writer.append))
    source.insert({"_id": "x", "v": 1})
    source.insert({"_id": "y", "v": 2})
    source.insert({"_id": "z", "v": 3})
    # delete + re-insert moves x to the end; update keeps y in place
    doc = source.get("x")
    source.delete("x")
    source.insert(doc)
    source.update("y", {"v": 20})

    target = document_store.create_collection("dst")
    applied = recover_collection(target, path)
    assert applied == 6
    assert [d["_id"] for d in target.scan()] == [d["_id"] for d in source.scan()]
    assert list(target.scan()) == list(source.scan())


def test_read_changelog_tolerates_truncated_tail(tmp_path):
    path = tmp_path / "log.jsonl"
    good = json.dumps({"seq": 1, "op": "insert", "doc_id": "a", "document": {}})
    path.write_text(good + "\n" + '{"seq": 2, "op": "ins')  # crash mid-write
    entries = read_changelog(path)
    assert len(entries) == 1 and entries[0]["doc_id"] == "a"


def test_read_changelog_rejects_mid_file_corruption(tmp_path):
    from repro.errors import StorageError

    path = tmp_path / "log.jsonl"
    good = json.dumps({"seq": 3, "op": "delete", "doc_id": "a", "document": None})
    path.write_text("CORRUPT\n" + good + "\n" + good + "\n")
    with pytest.raises(StorageError):
        read_changelog(path)


def test_stream_without_changelog_path_writes_nothing(tmp_path):
    tamer = _build_tamer(changelog_path=None)
    tamer.curated_collection.insert({"name": "x", "_source": "s"})
    stream = tamer.start_stream()
    assert stream.changelog_writer is None
    assert list(tmp_path.iterdir()) == []


# -- kill and recover -------------------------------------------------------


def test_kill_and_recover_reproduces_state_bit_identically(tmp_path):
    """SIGKILL-grade crash (os._exit: no atexit, no flush-on-close), then
    replay: the recovered stream's entities AND schema state are
    bit-identical to the pre-crash snapshot."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--child", str(tmp_path)],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 9, result.stderr
    expected = (tmp_path / "expected.json").read_text()

    recovered = _build_tamer(changelog_path=None)
    applied = recover_collection(
        recovered.curated_collection, tmp_path / "changelog.jsonl"
    )
    assert applied > 15
    stream = recovered.start_stream()
    assert _canonical(_state(stream)) == expected
    # and the recovered stream keeps curating incrementally
    recovered.curated_collection.insert({"name": "post recovery", "_source": "s"})
    assert stream.refresh() == stream.batch_reference()
    assert stream.integrator.snapshot() == stream.integrator.batch_reference()


if __name__ == "__main__":
    if len(sys.argv) == 3 and sys.argv[1] == "--child":
        _child_main(sys.argv[2])
    else:  # pragma: no cover - manual invocation guard
        raise SystemExit("usage: test_stream_recovery.py --child <workdir>")


def test_recovery_preserves_document_key_order(document_store, tmp_path):
    """Document *key order* is semantic (it drives first-seen column order
    in schema integration), so the changelog must never sort keys — a
    regression here silently breaks bit-identical schema recovery."""
    source = document_store.create_collection("src")
    path = tmp_path / "log.jsonl"
    writer = ChangelogWriter(path)
    from repro.stream.changelog import Changelog

    tail_collection(source, changelog=Changelog(sink=writer.append))
    source.insert(
        {"_id": "k", "zeta_field": "z", "alpha_field": "a", "_source": "s1"}
    )
    writer2 = ChangelogWriter(tmp_path / "snap.jsonl")
    writer2.write_snapshot(source.scan())

    expected_keys = list(source.get("k"))
    assert expected_keys.index("zeta_field") < expected_keys.index("alpha_field")
    for log_path in (path, tmp_path / "snap.jsonl"):
        target = document_store.create_collection(f"dst_{log_path.stem}")
        recover_collection(target, log_path)
        assert list(target.get("k")) == expected_keys


# -- changelog compaction ---------------------------------------------------


def test_rebuild_compacts_changelog_and_recovery_stays_exact(tmp_path):
    """A full rebuild snapshots + truncates the log: recovery cost is then
    bounded by collection size, and replaying the compacted log (plus any
    events appended after it) still reproduces the state bit-identically."""
    path = tmp_path / "cdc.jsonl"
    tamer = _build_tamer(changelog_path=path, rebuild_threshold=10)
    rng = random.Random(3)
    _drive_writes(tamer, rng, steps=12)
    stream = tamer.start_stream()
    _drive_writes(tamer, rng, steps=30)
    stream.refresh()  # drains, crosses the threshold, rebuilds, compacts
    assert stream.compaction_count >= 1
    live = {doc["_id"] for doc in tamer.curated_collection.scan()}
    entries = read_changelog(path)
    # the log is now one bootstrap snapshot of the live documents — the
    # 40+ events of replayed history are gone
    assert len(entries) == len(live)
    assert all(e["seq"] == 0 and e["op"] == "insert" for e in entries)

    # events appended after compaction replay on top of the snapshot
    _drive_writes(tamer, rng, steps=4)
    expected = _canonical(_state(stream))
    assert len(read_changelog(path)) > len(live)

    recovered = _build_tamer(changelog_path=None)
    recover_collection(recovered.curated_collection, path)
    stream2 = recovered.start_stream()
    assert _canonical(_state(stream2)) == expected


def test_compact_on_rebuild_can_be_disabled(tmp_path):
    path = tmp_path / "cdc.jsonl"
    tamer = _build_tamer(
        changelog_path=path, rebuild_threshold=10, compact_on_rebuild=False
    )
    rng = random.Random(3)
    stream = tamer.start_stream()
    _drive_writes(tamer, rng, steps=30)
    stream.refresh()
    assert stream.rebuild_count >= 1
    assert stream.compaction_count == 0
    entries = read_changelog(path)
    live = [doc["_id"] for doc in tamer.curated_collection.scan()]
    assert len(entries) > len(live)  # full history retained


def test_explicit_compaction_is_crash_atomic(document_store, tmp_path):
    """``rewrite_snapshot`` swaps via a temp file + rename; afterwards the
    log replays to the same collection and keeps accepting appends."""
    source = document_store.create_collection("src")
    path = tmp_path / "log.jsonl"
    writer = ChangelogWriter(path)
    from repro.stream.changelog import Changelog

    tail_collection(source, changelog=Changelog(sink=writer.append))
    for i in range(6):
        source.insert({"_id": f"r{i}", "v": i})
    source.delete("r3")
    source.update("r1", {"v": 10})
    assert len(read_changelog(path)) == 8

    count = writer.rewrite_snapshot(source.scan())
    assert count == 5
    assert writer.snapshot_rewrites == 1
    assert not path.with_name(path.name + ".compact").exists()
    assert len(read_changelog(path)) == 5

    source.insert({"_id": "after", "v": 99})  # appends continue post-swap
    target = document_store.create_collection("dst")
    recover_collection(target, path)
    assert list(target.scan()) == list(source.scan())


def test_kill_and_recover_with_non_alphabetical_keys(tmp_path):
    """End to end: streamed documents whose keys are not alphabetical
    recover to the bit-identical schema snapshot."""
    tamer = _build_tamer(changelog_path=tmp_path / "cdc.jsonl")
    tamer.curated_collection.insert(
        {"zeta_field": "one", "alpha_field": "x", "_source": "s1"}
    )
    stream = tamer.start_stream()
    tamer.curated_collection.insert(
        {"zeta_field": "two", "middle": 5, "_source": "s1"}
    )
    expected = _canonical(_state(stream))
    assert [a[0] for a in stream.integrator.snapshot()["attributes"]] == [
        "zeta_field",
        "alpha_field",
        "middle",
    ]
    tamer.stop_stream()

    recovered = _build_tamer(changelog_path=None)
    recover_collection(recovered.curated_collection, tmp_path / "cdc.jsonl")
    stream2 = recovered.start_stream()
    assert _canonical(_state(stream2)) == expected
