"""Tests for repro.ingest.loader."""

import pytest

from repro.ingest.connectors import DictSource, JsonLinesSource
from repro.ingest.loader import BatchLoader


@pytest.fixture
def collection(document_store):
    return document_store.create_collection("landing")


class TestBatchLoader:
    def test_loads_all_records(self, collection):
        source = DictSource("s", [{"a": i} for i in range(5)])
        report = BatchLoader().load(source, collection)
        assert report.records_read == 5
        assert report.records_loaded == 5
        assert len(collection) == 5

    def test_stamps_provenance(self, collection):
        source = DictSource("mysource", [{"a": 1}])
        BatchLoader().load(source, collection)
        doc = collection.find_one()
        assert doc["_source"] == "mysource"

    def test_flattens_nested_records(self, collection):
        source = JsonLinesSource("j", text='{"entity": {"name": "Matilda"}}\n')
        BatchLoader().load(source, collection)
        doc = collection.find_one()
        assert doc["entity.name"] == "Matilda"

    def test_transform_applied(self, collection):
        source = DictSource("s", [{"a": 1}])
        report = BatchLoader().load(
            source, collection, transform=lambda r: {**r, "b": r["a"] * 2}
        )
        assert report.records_loaded == 1
        assert collection.find_one()["b"] == 2

    def test_transform_returning_none_skips_record(self, collection):
        source = DictSource("s", [{"a": 1}, {"a": 2}])
        report = BatchLoader().load(
            source, collection, transform=lambda r: r if r["a"] == 2 else None
        )
        assert report.records_loaded == 1
        assert report.records_failed == 1

    def test_failing_records_do_not_abort_load(self, collection):
        def explode_on_two(record):
            if record["a"] == 2:
                raise ValueError("boom")
            return record

        source = DictSource("s", [{"a": 1}, {"a": 2}, {"a": 3}])
        report = BatchLoader().load(source, collection, transform=explode_on_two)
        assert report.records_loaded == 2
        assert report.records_failed == 1
        assert report.errors and "boom" in report.errors[0]

    def test_limit(self, collection):
        source = DictSource("s", [{"a": i} for i in range(10)])
        report = BatchLoader().load(source, collection, limit=3)
        assert report.records_read == 3
        assert len(collection) == 3

    def test_attributes_seen_excludes_provenance(self, collection):
        source = DictSource("s", [{"a": 1, "b": 2}])
        report = BatchLoader().load(source, collection)
        assert set(report.attributes_seen) == {"a", "b"}

    def test_success_rate(self, collection):
        source = DictSource("s", [{"a": 1}, {"a": 2}])
        report = BatchLoader().load(
            source, collection, transform=lambda r: r if r["a"] == 1 else None
        )
        assert report.success_rate == 0.5

    def test_empty_source_success_rate_is_one(self, collection):
        report = BatchLoader().load(DictSource("s", []), collection)
        assert report.success_rate == 1.0

    def test_load_many(self, collection):
        sources = [DictSource(f"s{i}", [{"a": i}]) for i in range(3)]
        reports = BatchLoader().load_many(sources, collection)
        assert len(reports) == 3
        assert len(collection) == 3

    def test_max_errors_caps_error_list(self, collection):
        def always_fail(record):
            raise ValueError("nope")

        source = DictSource("s", [{"a": i} for i in range(10)])
        loader = BatchLoader(max_errors=3)
        report = loader.load(source, collection, transform=always_fail)
        assert report.records_failed == 10
        assert len(report.errors) == 3
