"""Tests for repro.text.gazetteer."""

import pytest

from repro.text.gazetteer import ENTITY_TYPES, Gazetteer, broadway_gazetteer


class TestGazetteer:
    def test_add_and_lookup(self):
        gaz = Gazetteer()
        gaz.add("Matilda", entity_type="Movie")
        entry = gaz.lookup("Matilda")
        assert entry is not None
        assert entry.canonical == "Matilda"
        assert entry.entity_type == "Movie"

    def test_lookup_is_normalization_insensitive(self):
        gaz = Gazetteer()
        gaz.add("Shubert Theatre", entity_type="Facility")
        assert gaz.lookup("SHUBERT THEATER.") is not None
        assert gaz.lookup("  shubert   theatre ") is not None

    def test_unknown_entity_type_rejected(self):
        gaz = Gazetteer()
        with pytest.raises(ValueError):
            gaz.add("x", entity_type="Dinosaur")

    def test_empty_surface_rejected(self):
        gaz = Gazetteer()
        with pytest.raises(ValueError):
            gaz.add("...", entity_type="Movie")

    def test_canonical_defaults_to_surface(self):
        gaz = Gazetteer()
        entry = gaz.add("Wicked", entity_type="Movie")
        assert entry.canonical == "Wicked"

    def test_custom_canonical(self):
        gaz = Gazetteer()
        entry = gaz.add("NYC", canonical="New York", entity_type="City")
        assert gaz.lookup("nyc").canonical == "New York"
        assert entry.entity_type == "City"

    def test_attributes_roundtrip(self):
        gaz = Gazetteer()
        gaz.add("Shubert", entity_type="Facility", attributes={"city": "New York"})
        assert gaz.lookup("Shubert").attribute_dict() == {"city": "New York"}

    def test_last_writer_wins(self):
        gaz = Gazetteer()
        gaz.add("Chicago", entity_type="Movie")
        gaz.add("Chicago", entity_type="City")
        assert gaz.lookup("Chicago").entity_type == "City"

    def test_add_many(self):
        gaz = Gazetteer()
        gaz.add_many(["A Show", "B Show"], "Movie")
        assert len(gaz) == 2

    def test_contains(self):
        gaz = Gazetteer()
        gaz.add("Matilda", entity_type="Movie")
        assert gaz.contains("matilda")
        assert not gaz.contains("unknown")

    def test_max_surface_words_tracks_longest(self):
        gaz = Gazetteer()
        gaz.add("Matilda", entity_type="Movie")
        assert gaz.max_surface_words == 1
        gaz.add("The Phantom of the Opera", entity_type="Movie")
        assert gaz.max_surface_words == 5

    def test_entries_of_type(self):
        gaz = Gazetteer()
        gaz.add("Matilda", entity_type="Movie")
        gaz.add("Shubert", entity_type="Facility")
        assert len(gaz.entries_of_type("Movie")) == 1
        assert gaz.entries_of_type("Person") == []

    def test_types_lists_populated_types(self):
        gaz = Gazetteer()
        gaz.add("Matilda", entity_type="Movie")
        assert gaz.types() == ["Movie"]

    def test_merge(self):
        base = Gazetteer()
        base.add("Matilda", entity_type="Movie")
        other = Gazetteer()
        other.add("Wicked", entity_type="Movie")
        base.merge(other)
        assert base.contains("Wicked") and base.contains("Matilda")


class TestBroadwayGazetteer:
    def test_covers_table4_shows(self):
        gaz = broadway_gazetteer()
        for show in ("Matilda", "The Walking Dead", "Goodfellas", "Raging Bull"):
            entry = gaz.lookup(show)
            assert entry is not None and entry.entity_type == "Movie"

    def test_covers_multiple_entity_types(self):
        gaz = broadway_gazetteer()
        assert {"Movie", "Facility", "Person", "Company", "City"} <= set(gaz.types())

    def test_all_types_are_valid(self):
        gaz = broadway_gazetteer()
        assert set(gaz.types()) <= set(ENTITY_TYPES)

    def test_theater_lookup(self):
        gaz = broadway_gazetteer()
        assert gaz.lookup("Shubert Theatre").entity_type == "Facility"
