"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import DataTamer, TamerConfig
from repro.config import StorageConfig
from repro.ingest import DictSource
from repro.storage import DocumentStore
from repro.text import DomainParser
from repro.text.gazetteer import broadway_gazetteer
from repro.workloads import (
    DedupCorpusGenerator,
    FTablesGenerator,
    WebInstanceGenerator,
)


@pytest.fixture
def small_config() -> TamerConfig:
    """A validated test-sized configuration (tiny extents, two shards)."""
    return TamerConfig.small()


@pytest.fixture
def storage_config() -> StorageConfig:
    """A small storage configuration for direct store tests."""
    return StorageConfig(extent_size_bytes=16 * 1024, num_shards=2)


@pytest.fixture
def document_store(storage_config) -> DocumentStore:
    """An empty document store."""
    return DocumentStore("dt", storage_config)


@pytest.fixture
def gazetteer():
    """The Broadway-domain gazetteer used by the demo scenario."""
    return broadway_gazetteer()


@pytest.fixture
def parser(gazetteer) -> DomainParser:
    """A domain parser backed by the Broadway gazetteer."""
    return DomainParser(gazetteer)


@pytest.fixture
def ftables() -> FTablesGenerator:
    """A deterministic FTABLES generator (20 sources)."""
    return FTablesGenerator(seed=7, n_sources=20)


@pytest.fixture
def ftables_sources(ftables):
    """The generated FTABLES sources."""
    return ftables.generate()


@pytest.fixture
def web_corpus():
    """A small deterministic web-text corpus (150 documents)."""
    return WebInstanceGenerator(seed=11).generate(150)


@pytest.fixture
def dedup_corpus():
    """A small labeled dedup corpus (fast to featurize)."""
    return DedupCorpusGenerator(seed=13).generate(
        n_entities=60, variants_per_entity=2
    )


@pytest.fixture
def tamer(small_config, parser) -> DataTamer:
    """A DataTamer instance with the text parser registered."""
    instance = DataTamer(small_config)
    instance.register_text_parser(parser)
    return instance


@pytest.fixture
def populated_tamer(tamer, ftables, web_corpus) -> DataTamer:
    """A DataTamer loaded with seed records, 6 structured sources and web text."""
    tamer.ingest_structured_records("global_seed", tamer_seed_records(ftables))
    for source in ftables.generate()[:6]:
        tamer.ingest_structured_source(
            DictSource(source.source_id, source.records())
        )
    tamer.ingest_text_documents(doc.as_pair() for doc in web_corpus)
    return tamer


def tamer_seed_records(ftables: FTablesGenerator):
    """Helper: canonical seed records from the FTABLES generator."""
    return ftables.seed_records()
