"""Tests for repro.ml.linear (logistic regression)."""

import numpy as np
import pytest

from repro.errors import ModelError, NotFittedError
from repro.ml.linear import LogisticRegression, _sigmoid


def _separable_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X0 = rng.normal(loc=-1.0, scale=0.5, size=(n // 2, 2))
    X1 = rng.normal(loc=+1.0, scale=0.5, size=(n // 2, 2))
    X = np.vstack([X0, X1])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    return X, y


class TestSigmoid:
    def test_bounds(self):
        z = np.array([-1000.0, -1.0, 0.0, 1.0, 1000.0])
        out = _sigmoid(z)
        assert np.all(out >= 0.0) and np.all(out <= 1.0)
        assert out[2] == pytest.approx(0.5)

    def test_no_overflow_warning(self):
        with np.errstate(over="raise"):
            _sigmoid(np.array([-1e6, 1e6]))


class TestFit:
    def test_learns_separable_data(self):
        X, y = _separable_data()
        model = LogisticRegression(n_epochs=30, seed=0).fit(X, y)
        accuracy = float(np.mean(model.predict(X) == y))
        assert accuracy > 0.95

    def test_deterministic_given_seed(self):
        X, y = _separable_data()
        m1 = LogisticRegression(seed=7).fit(X, y)
        m2 = LogisticRegression(seed=7).fit(X, y)
        assert np.allclose(m1.weights, m2.weights)
        assert m1.bias == pytest.approx(m2.bias)

    def test_different_seed_different_weights(self):
        X, y = _separable_data()
        m1 = LogisticRegression(seed=1).fit(X, y)
        m2 = LogisticRegression(seed=2).fit(X, y)
        assert not np.allclose(m1.weights, m2.weights)

    def test_rejects_bad_shapes(self):
        model = LogisticRegression()
        with pytest.raises(ModelError):
            model.fit(np.zeros(5), np.zeros(5))
        with pytest.raises(ModelError):
            model.fit(np.zeros((5, 2)), np.zeros(4))

    def test_rejects_non_binary_labels(self):
        with pytest.raises(ModelError):
            LogisticRegression().fit(np.zeros((3, 2)), np.array([0, 1, 2]))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ModelError):
            LogisticRegression(learning_rate=0)
        with pytest.raises(ModelError):
            LogisticRegression(n_epochs=0)
        with pytest.raises(ModelError):
            LogisticRegression(batch_size=0)
        with pytest.raises(ModelError):
            LogisticRegression(l2=-1)
        with pytest.raises(ModelError):
            LogisticRegression(decay=0)


class TestPredict:
    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            LogisticRegression().predict(np.zeros((1, 2)))
        with pytest.raises(NotFittedError):
            _ = LogisticRegression().weights

    def test_probabilities_in_unit_interval(self):
        X, y = _separable_data()
        model = LogisticRegression(n_epochs=10).fit(X, y)
        probs = model.predict_proba(X)
        assert np.all(probs >= 0) and np.all(probs <= 1)

    def test_threshold_changes_predictions(self):
        X, y = _separable_data()
        model = LogisticRegression(n_epochs=10).fit(X, y)
        low = model.predict(X, threshold=0.01).sum()
        high = model.predict(X, threshold=0.99).sum()
        assert low >= high

    def test_single_row_input(self):
        X, y = _separable_data()
        model = LogisticRegression(n_epochs=10).fit(X, y)
        assert model.predict_proba(X[0]).shape == (1,)

    def test_dimension_mismatch_rejected(self):
        X, y = _separable_data()
        model = LogisticRegression(n_epochs=5).fit(X, y)
        with pytest.raises(ModelError):
            model.predict_proba(np.zeros((2, 5)))

    def test_decision_function_sign_matches_prediction(self):
        X, y = _separable_data()
        model = LogisticRegression(n_epochs=20).fit(X, y)
        scores = model.decision_function(X)
        preds = model.predict(X)
        assert np.all((scores >= 0) == (preds == 1))

    def test_l2_regularization_shrinks_weights(self):
        X, y = _separable_data()
        loose = LogisticRegression(l2=0.0, n_epochs=50, seed=0).fit(X, y)
        tight = LogisticRegression(l2=1.0, n_epochs=50, seed=0).fit(X, y)
        assert np.linalg.norm(tight.weights) < np.linalg.norm(loose.weights)
