"""Property-based tests for the document store and extent accounting."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import StorageConfig
from repro.storage.document_store import DocumentStore
from repro.storage.sharding import ExtentAllocator, ShardRouter

_field_names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)
_values = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.text(alphabet=string.ascii_letters + " ", max_size=30),
    st.booleans(),
)
_documents = st.lists(
    st.dictionaries(_field_names, _values, max_size=5), min_size=1, max_size=30
)


def _store():
    return DocumentStore(
        "dt", StorageConfig(extent_size_bytes=4 * 1024, num_shards=3)
    )


@given(_documents)
@settings(max_examples=60, deadline=None)
def test_count_matches_inserted_documents(documents):
    collection = _store().create_collection("c")
    collection.insert_many(documents)
    stats = collection.stats()
    assert stats.count == len(documents)
    assert len(list(collection.scan())) == len(documents)


@given(_documents)
@settings(max_examples=60, deadline=None)
def test_shard_distribution_sums_to_count(documents):
    collection = _store().create_collection("c")
    collection.insert_many(documents)
    assert sum(collection.shard_distribution()) == len(documents)
    assert sum(collection.extents_per_shard()) == collection.stats().num_extents


@given(_documents)
@settings(max_examples=60, deadline=None)
def test_every_inserted_document_is_retrievable(documents):
    collection = _store().create_collection("c")
    ids = collection.insert_many(documents)
    for doc_id, original in zip(ids, documents):
        stored = collection.get(doc_id)
        for key, value in original.items():
            assert stored[key] == value


@given(
    st.lists(st.integers(min_value=0, max_value=2000), min_size=1, max_size=200),
    st.integers(min_value=100, max_value=5000),
)
@settings(max_examples=60, deadline=None)
def test_extent_accounting_conserves_bytes(sizes, extent_size):
    allocator = ExtentAllocator(extent_size_bytes=extent_size, num_shards=2)
    for i, size in enumerate(sizes):
        allocator.allocate(i % 2, size)
    assert allocator.total_used_bytes == sum(sizes)
    assert allocator.num_extents >= 1


@given(st.lists(st.text(min_size=1, max_size=12), min_size=1, max_size=100),
       st.integers(min_value=1, max_value=8))
@settings(max_examples=60, deadline=None)
def test_shard_router_is_total_and_stable(ids, num_shards):
    router = ShardRouter(num_shards)
    first = [router.shard_for(i) for i in ids]
    second = [router.shard_for(i) for i in ids]
    assert first == second
    assert all(0 <= shard < num_shards for shard in first)
