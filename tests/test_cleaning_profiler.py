"""Tests for repro.cleaning.profiler."""

import pytest

from repro.cleaning.profiler import ColumnProfiler


class TestColumnProfiler:
    def test_profile_column_counts(self):
        profiler = ColumnProfiler()
        profile = profiler.profile_column("price", ["$27", "$89", None, ""])
        assert profile.total == 4
        assert profile.nulls == 2
        assert profile.null_fraction == 0.5
        assert profile.distinct == 2

    def test_numeric_summaries(self):
        profiler = ColumnProfiler()
        profile = profiler.profile_column("seats", [100, 200, 300])
        assert profile.numeric_min == 100
        assert profile.numeric_max == 300
        assert profile.numeric_mean == pytest.approx(200)
        assert profile.numeric_std > 0

    def test_money_strings_are_numeric(self):
        profile = ColumnProfiler().profile_column("p", ["$10", "$30"])
        assert profile.numeric_mean == pytest.approx(20)

    def test_non_numeric_column_has_no_numeric_stats(self):
        profile = ColumnProfiler().profile_column("name", ["Matilda", "Wicked"])
        assert profile.numeric_mean is None

    def test_top_values_ordering_and_cap(self):
        values = ["a"] * 5 + ["b"] * 3 + ["c"]
        profile = ColumnProfiler(top_k=2).profile_column("x", values)
        assert profile.top_values == [("a", 5), ("b", 3)]

    def test_candidate_key_detection(self):
        unique = ColumnProfiler().profile_column("id", [f"id{i}" for i in range(100)])
        repeated = ColumnProfiler().profile_column("genre", ["Musical"] * 100)
        assert unique.is_candidate_key
        assert not repeated.is_candidate_key

    def test_all_null_column_not_key(self):
        profile = ColumnProfiler().profile_column("x", [None, None])
        assert not profile.is_candidate_key
        assert profile.inferred_type == "unknown"

    def test_profile_records_covers_sparse_columns(self):
        profiler = ColumnProfiler()
        profiles = profiler.profile_records(
            [{"a": 1, "b": "x"}, {"a": 2}, {"a": 3, "c": "y"}]
        )
        assert set(profiles) == {"a", "b", "c"}
        assert profiles["b"].total == 3
        assert profiles["b"].nulls == 2

    def test_invalid_top_k(self):
        with pytest.raises(ValueError):
            ColumnProfiler(top_k=0)

    def test_as_dict_keys(self):
        profile = ColumnProfiler().profile_column("x", [1, 2])
        keys = set(profile.as_dict())
        assert {"name", "total", "nulls", "type", "distinct"} <= keys
