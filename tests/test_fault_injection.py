"""Unit tests for the deterministic fault-injection core."""

import json
import time

import pytest

from repro.config import ExecConfig, ServeConfig, StreamConfig
from repro.errors import ConfigError, InjectedFault
from repro.fault import (
    ENV_VAR,
    KNOWN_POINTS,
    NO_FAULTS,
    FaultInjector,
    FaultPlan,
    FaultRule,
    injector_for,
    resolve_plan,
)


def _plan(*rules, seed=7):
    return FaultPlan(seed=seed, rules=tuple(rules))


class TestPlanValidation:
    def test_valid_plan_round_trips_json(self):
        plan = _plan(
            FaultRule("pool.worker_hang", "hang", seconds=0.5, keys=((3, 1),)),
            FaultRule("serve.evaluate", "error", p=0.25),
            FaultRule("changelog.write", "torn", start=4, times=1),
        )
        plan.validate()
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan
        again.validate()

    def test_unknown_point_rejected(self):
        with pytest.raises(ConfigError):
            _plan(FaultRule("no.such.point", "error")).validate()

    def test_unknown_action_rejected(self):
        with pytest.raises(ConfigError):
            _plan(FaultRule("serve.evaluate", "explode")).validate()

    def test_bad_probability_rejected(self):
        with pytest.raises(ConfigError):
            _plan(FaultRule("serve.evaluate", "error", p=1.5)).validate()

    def test_negative_counters_rejected(self):
        with pytest.raises(ConfigError):
            _plan(FaultRule("serve.evaluate", "error", start=-1)).validate()
        with pytest.raises(ConfigError):
            _plan(FaultRule("serve.evaluate", "error", times=0)).validate()

    def test_known_points_cover_every_layer(self):
        layers = {point.split(".")[0] for point in KNOWN_POINTS}
        assert {"pool", "changelog", "scheduler", "serve"} <= layers


class TestInjectorSemantics:
    def test_no_faults_is_inert_and_shared(self):
        assert injector_for(None) is NO_FAULTS
        assert injector_for(FaultPlan()) is NO_FAULTS
        assert NO_FAULTS.active is False
        assert NO_FAULTS.fire("pool.worker_hang", key=(0, 1)) is None
        assert NO_FAULTS.fired() == 0

    def test_keyed_rule_fires_exactly_once_per_key(self):
        plan = _plan(
            FaultRule("serve.evaluate", "error", keys=((2, 1),), times=1)
        )
        inj = FaultInjector(plan)
        inj.fire("serve.evaluate", key=(1, 1))  # different key: no fire
        with pytest.raises(InjectedFault):
            inj.fire("serve.evaluate", key=(2, 1))
        inj.fire("serve.evaluate", key=(2, 1))  # times=1 budget spent
        assert inj.fired() == 1

    def test_probability_draws_are_deterministic_per_key(self):
        plan = _plan(FaultRule("serve.evaluate", "error", p=0.5), seed=13)
        keys = [(i, 1) for i in range(40)]

        def fired_set(injector):
            fired = set()
            for key in keys:
                try:
                    injector.fire("serve.evaluate", key=key)
                except InjectedFault:
                    fired.add(key)
            return fired

        first = fired_set(FaultInjector(plan))
        second = fired_set(FaultInjector(plan))
        assert first == second
        assert 0 < len(first) < len(keys)  # p=0.5 over 40 keys: both sides hit

    def test_different_seeds_give_different_schedules(self):
        keys = [(i, 1) for i in range(40)]

        def fired_set(seed):
            inj = FaultInjector(
                _plan(FaultRule("serve.evaluate", "error", p=0.5), seed=seed)
            )
            fired = set()
            for key in keys:
                try:
                    inj.fire("serve.evaluate", key=key)
                except InjectedFault:
                    fired.add(key)
            return fired

        assert fired_set(1) != fired_set(2)

    def test_counter_window_rule(self):
        plan = _plan(FaultRule("scheduler.drain", "error", start=2, times=2))
        inj = FaultInjector(plan)
        inj.fire("scheduler.drain")  # hit 0
        inj.fire("scheduler.drain")  # hit 1
        with pytest.raises(InjectedFault):
            inj.fire("scheduler.drain")  # hit 2: window opens
        with pytest.raises(InjectedFault):
            inj.fire("scheduler.drain")
        inj.fire("scheduler.drain")  # times=2 exhausted
        assert inj.fired() == 2

    def test_delay_action_sleeps(self):
        plan = _plan(FaultRule("serve.evaluate", "delay", seconds=0.05, times=1))
        inj = FaultInjector(plan)
        start = time.perf_counter()
        inj.fire("serve.evaluate")
        assert time.perf_counter() - start >= 0.04

    def test_torn_action_returns_rule_for_caller_handling(self):
        plan = _plan(FaultRule("changelog.write", "torn", times=1))
        inj = FaultInjector(plan)
        action = inj.fire("changelog.write", key=("insert", 1))
        assert action is not None and action.action == "torn"
        assert inj.fire("changelog.write", key=("insert", 2)) is None

    def test_history_records_fires(self):
        plan = _plan(FaultRule("serve.evaluate", "error", times=1))
        inj = FaultInjector(plan)
        with pytest.raises(InjectedFault):
            inj.fire("serve.evaluate", key=(9, 1))
        dump = inj.schedule_dump()
        assert len(dump["history"]) == 1
        assert dump["history"][0]["point"] == "serve.evaluate"
        assert dump["plan"]["seed"] == 7


class TestEnvActivation:
    def test_resolve_plan_prefers_config(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        plan = _plan(FaultRule("serve.evaluate", "error"))
        assert resolve_plan(plan) is plan
        assert resolve_plan(None) is None

    def test_resolve_plan_reads_env_inline_json(self, monkeypatch):
        plan = _plan(FaultRule("serve.evaluate", "error", p=0.1))
        monkeypatch.setenv(ENV_VAR, plan.to_json())
        assert resolve_plan(None) == plan

    def test_resolve_plan_reads_env_file(self, tmp_path, monkeypatch):
        plan = _plan(FaultRule("pool.worker_hang", "hang", seconds=1.0))
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json(), encoding="utf-8")
        monkeypatch.setenv(ENV_VAR, f"@{path}")
        assert resolve_plan(None) == plan

    def test_malformed_env_plan_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "{not json")
        with pytest.raises(ConfigError):
            resolve_plan(None)


class TestConfigThreading:
    def test_exec_config_validates_plan(self):
        plan = _plan(FaultRule("pool.worker_hang", "hang", seconds=0.1))
        ExecConfig(fault_plan=plan).validate()
        bad = _plan(FaultRule("bogus.point", "error"))
        with pytest.raises(ConfigError):
            ExecConfig(fault_plan=bad).validate()

    def test_stream_and_serve_configs_validate_plan(self):
        bad = _plan(FaultRule("serve.evaluate", "explode"))
        with pytest.raises(ConfigError):
            StreamConfig(fault_plan=bad).validate()
        with pytest.raises(ConfigError):
            ServeConfig(fault_plan=bad).validate()

    def test_plan_json_is_plain_data(self):
        plan = _plan(FaultRule("serve.evaluate", "error", keys=((1, 2),)))
        decoded = json.loads(plan.to_json())
        assert decoded["seed"] == 7
        assert decoded["rules"][0]["point"] == "serve.evaluate"
