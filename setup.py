"""Setup shim for environments without the `wheel` package.

The project is configured in pyproject.toml; this file only exists so that
``pip install -e . --no-build-isolation`` (and legacy ``--no-use-pep517``
editable installs) work in fully offline environments where the PEP 517
editable-wheel path is unavailable.
"""

from setuptools import setup

setup()
